"""The Alloy workflow of the paper's Section 3, end to end.

Parses the Figure 1 specification with the built-in Alloy-subset front end,
compiles the `E4: run Equivalence for exactly 4 S` command to CNF with
partial symmetry breaking, enumerates all solutions with the CDCL solver
(reproducing Figure 2's five equivalence relations), and estimates /
computes the model count with both counting back-ends — the §3 ApproxMC /
ProjMC walk-through at a laptop-sized scope.

Run:  python examples/alloy_workflow.py
"""

from repro.counting import ApproxMCCounter, ExactCounter
from repro.experiments.render import render_matrix
from repro.sat import enumerate_models
from repro.spec import SymmetryBreaking, translate
from repro.spec.parser import parse

SPEC = """
sig S { r: set S } // r is a binary relation of type SxS
pred Reflexive() { all s: S | s->s in r }
pred Symmetric() {
  all s, t: S | s->t in r implies t->s in r }
pred Transitive() { all s, t, u: S |
  s->t in r and t->u in r implies s->u in r }
pred Equivalence() {
  Reflexive and Symmetric and Transitive }
E4: run Equivalence for exactly 4 S
"""


def main() -> None:
    spec = parse(SPEC)
    command = spec.runs[0]
    print(f"parsed sig {spec.sig_name!r} with predicates: {', '.join(spec.predicates)}")
    print(f"executing command {command.label}: run {command.predicate} "
          f"for exactly {command.scope} {spec.sig_name}")

    problem = translate(
        spec.formula(command.predicate),
        command.scope,
        symmetry=SymmetryBreaking("adjacent"),
    )
    stats = problem.stats()
    print(
        f"compiled to CNF: {stats['primary_vars']} primary vars, "
        f"{stats['total_vars']} total vars, {stats['clauses']} clauses"
    )

    print("\nenumerating all solutions (Figure 2):")
    order = problem.primary_vars
    for index, model in enumerate(enumerate_models(problem.cnf), start=1):
        bits = [1 if model[v] else 0 for v in order]
        print(f"\nsolution {index}:")
        print(render_matrix(bits, command.scope))

    exact = ExactCounter().count(problem.cnf)
    estimate = ApproxMCCounter(seed=0).count(problem.cnf)
    print(f"\nexact model count (ProjMC stand-in):     {exact}")
    print(f"approximate count (ApproxMC stand-in):   {estimate}")


if __name__ == "__main__":
    main()
