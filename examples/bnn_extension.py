"""Beyond decision trees: MCML metrics for a binarized neural network.

The paper's related-work section notes that the MCML metrics generalise to
any model with a propositional translation, naming binarized neural
networks.  This example exercises that extension: train a BNN on the
Irreflexive property, compile it to a formula, quantify it against the
ground truth over the whole input space, and diff it against a decision
tree trained on the same data — a cross-model-family comparison no test set
can provide.

Run:  python examples/bnn_extension.py
"""

from repro.core.bnnmc import diff_bnn
from repro.core.session import MCMLSession
from repro.core.tree2cnf import tree_paths_formula
from repro.data import generate_dataset
from repro.logic.formula import dag_size
from repro.ml import DecisionTreeClassifier
from repro.ml.bnn import BinarizedMLP
from repro.spec import get_property

SCOPE = 3
PROPERTY = get_property("Irreflexive")


def main() -> None:
    dataset = generate_dataset(PROPERTY, SCOPE, rng=0)
    X, y = dataset.X.astype(float), dataset.y

    bnn = BinarizedMLP(hidden_units=12, epochs=200, random_state=0).fit(X, y)
    tree = DecisionTreeClassifier().fit(X, y)
    print(f"BNN training accuracy:  {bnn.score(X, y):.3f}")
    print(f"tree training accuracy: {tree.score(X, y):.3f}")

    region = bnn.to_formula()
    print(f"\ncompiled BNN region: {dag_size(region)} distinct formula nodes")

    with MCMLSession() as session:
        result = session.bnnmc(bnn, PROPERTY, SCOPE)
    print(f"\nBNN whole-space metrics (all 2^{SCOPE * SCOPE} inputs):")
    print(
        f"  accuracy {result.accuracy:.4f}  precision {result.precision:.4f}  "
        f"recall {result.recall:.4f}"
    )

    diff = diff_bnn(bnn, tree_paths_formula(tree, 1), num_inputs=SCOPE * SCOPE)
    print("\nBNN vs decision tree (DiffMC, no ground truth needed):")
    print(
        f"  TT={diff.tt}  TF={diff.tf}  FT={diff.ft}  FF={diff.ff}  "
        f"diff={100 * diff.diff:.2f}%"
    )
    print(
        "\nsame training data, different model families — and model counting "
        "tells you exactly how far apart they ended up."
    )


if __name__ == "__main__":
    main()
