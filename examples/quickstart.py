"""Quickstart: learn a relational property, then measure what you learned.

Trains a decision tree to recognise partial orders over a 4-atom universe,
scores it the traditional way (held-out test set) and the MCML way (exact
model counting over all 2^16 inputs) — reproducing the paper's headline
observation that the two disagree wildly.

Run:  python examples/quickstart.py
"""

from repro.core import AccMC
from repro.core.accmc import GroundTruth
from repro.data import generate_dataset
from repro.ml import DecisionTreeClassifier
from repro.ml.metrics import confusion_counts
from repro.spec import get_property

SCOPE = 4
PROPERTY = get_property("PartialOrder")


def main() -> None:
    # 1. Bounded-exhaustive positives + rejection-sampled negatives.
    dataset = generate_dataset(PROPERTY, SCOPE, rng=0)
    train, test = dataset.split(train_fraction=0.10, rng=1)
    print(
        f"dataset: {len(dataset)} samples ({dataset.num_positive} positive), "
        f"training on {len(train)}"
    )

    # 2. Train an out-of-the-box decision tree.
    tree = DecisionTreeClassifier().fit(train.X.astype(float), train.y)
    print(f"tree: {tree.n_leaves()} leaves, depth {tree.depth()}")

    # 3. Traditional evaluation: looks excellent.
    test_counts = confusion_counts(test.y, tree.predict(test.X.astype(float)))
    print("\ntraditional metrics (held-out test set):")
    for name, value in test_counts.as_dict().items():
        print(f"  {name:9s} {value:.4f}")

    # 4. MCML evaluation: the entire 2^16 input space, by model counting.
    result = AccMC().evaluate(tree, GroundTruth(PROPERTY, SCOPE))
    print(f"\nMCML metrics (all 2^{SCOPE * SCOPE} inputs, {result.counter} counter):")
    for name, value in result.as_row().items():
        if name != "time":
            print(f"  {name:9s} {value:.4f}")
    counts = result.counts
    print(f"  counts    tp={counts.tp} fp={counts.fp} tn={counts.tn} fn={counts.fn}")
    print(
        "\nthe gap between test precision "
        f"({test_counts.precision:.4f}) and whole-space precision "
        f"({result.precision:.4f}) is the paper's point: test sets flatter."
    )


if __name__ == "__main__":
    main()
