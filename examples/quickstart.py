"""Quickstart: learn a relational property, then measure what you learned.

Trains a decision tree to recognise partial orders over a 4-atom universe,
scores it the traditional way (held-out test set) and the MCML way (exact
model counting over all 2^16 inputs) — reproducing the paper's headline
observation that the two disagree wildly.

Everything runs through one :class:`repro.core.session.MCMLSession`: the
session owns the counting engine (backend by registered name, caches,
optional worker fan-out / disk persistence) and fronts dataset generation,
training and the whole-space metrics.

Run:  python examples/quickstart.py
"""

from repro.core.session import MCMLSession

SCOPE = 4
PROPERTY = "PartialOrder"


def main() -> None:
    with MCMLSession(backend="exact", seed=0) as session:
        # 1. Bounded-exhaustive positives + rejection-sampled negatives.
        dataset = session.pipeline.make_dataset(PROPERTY, SCOPE)
        train, test = dataset.split(train_fraction=0.10, rng=1)
        print(
            f"dataset: {len(dataset)} samples ({dataset.num_positive} positive), "
            f"training on {len(train)}"
        )

        # 2. Train an out-of-the-box decision tree.
        tree = session.pipeline.train("DT", train)
        print(f"tree: {tree.n_leaves()} leaves, depth {tree.depth()}")

        # 3. Traditional evaluation: looks excellent.
        from repro.ml.metrics import confusion_counts

        test_counts = confusion_counts(test.y, tree.predict(test.X.astype(float)))
        print("\ntraditional metrics (held-out test set):")
        for name, value in test_counts.as_dict().items():
            print(f"  {name:9s} {value:.4f}")

        # 4. MCML evaluation: the entire 2^16 input space, by model counting.
        result = session.accmc(tree, PROPERTY, SCOPE)
        print(f"\nMCML metrics (all 2^{SCOPE * SCOPE} inputs, {result.counter} counter):")
        for name, value in result.as_row().items():
            if name != "time":
                print(f"  {name:9s} {value:.4f}")
        counts = result.counts
        print(f"  counts    tp={counts.tp} fp={counts.fp} tn={counts.tn} fn={counts.fn}")
        print(
            "\nthe gap between test precision "
            f"({test_counts.precision:.4f}) and whole-space precision "
            f"({result.precision:.4f}) is the paper's point: test sets flatter."
        )
        print(f"\nsession telemetry: {session.engine!r}")


if __name__ == "__main__":
    main()
