"""Auditing a learned runtime check before deployment.

The paper's introduction motivates learned classifiers as executable runtime
checks (assertions validating that program states conform to a property).
This example plays that scenario for the `Function` property — "is this
dispatch table a total function?" — and shows why the MCML audit matters:

* the traditional test-set audit approves the model;
* the whole-space audit reveals that almost everything the check *accepts*
  is actually invalid (precision ≈ 0), i.e. the assertion would wave
  corrupted states through.

Run:  python examples/runtime_check_audit.py
"""

import numpy as np

from repro.core.session import MCMLSession
from repro.data import generate_dataset
from repro.ml import DecisionTreeClassifier
from repro.ml.metrics import confusion_counts
from repro.spec import get_property
from repro.spec.evaluate import evaluate_bits

SCOPE = 4
PROPERTY = get_property("Function")


def main() -> None:
    dataset = generate_dataset(PROPERTY, SCOPE, rng=0)
    train, test = dataset.split(0.25, rng=2)
    check = DecisionTreeClassifier().fit(train.X.astype(float), train.y)

    test_counts = confusion_counts(test.y, check.predict(test.X.astype(float)))
    print("pre-deployment audit, the usual way (test set):")
    print(f"  accuracy {test_counts.accuracy:.3f}, precision {test_counts.precision:.3f}")
    print("  -> looks deployable.\n")

    with MCMLSession() as session:
        audit = session.accmc(check, PROPERTY, SCOPE)
    print("pre-deployment audit, the MCML way (entire input space):")
    print(f"  accuracy {audit.accuracy:.3f}, precision {audit.precision:.4f}")
    print(
        f"  -> of the {audit.counts.tp + audit.counts.fp} states the check accepts, "
        f"{audit.counts.fp} violate the property.\n"
    )

    # Make it concrete: sample states the deployed assertion would accept
    # and evaluate them against the real property definition.
    rng = np.random.default_rng(7)
    accepted_bad = 0
    accepted = 0
    while accepted < 200:
        state = rng.integers(0, 2, size=SCOPE * SCOPE)
        if check.predict(state.reshape(1, -1).astype(float))[0] == 1:
            accepted += 1
            if not evaluate_bits(PROPERTY.formula, state.tolist(), SCOPE):
                accepted_bad += 1
    print(
        f"simulated production traffic: of 200 states the assertion accepted, "
        f"{accepted_bad} were invalid ({100 * accepted_bad / 200:.0f}%) — "
        "the false sense of confidence MCML quantifies in advance."
    )


if __name__ == "__main__":
    main()
