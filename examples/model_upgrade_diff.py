"""Should a deployed model be replaced by a compressed one?

The paper's closing discussion: "if a trained model in a deployed system is
to be upgraded... model counting could be a metric that informs the
decision."  DiffMC answers it rigorously, with no test set and no ground
truth: count, over the entire input space, the states on which the two
models disagree.

Here a full decision tree for `PreOrder` is compared against two candidate
replacements — a moderately pruned tree and an aggressively pruned stump —
and the semantic diff makes the call obvious.

Run:  python examples/model_upgrade_diff.py
"""

from repro.core.session import MCMLSession
from repro.data import generate_dataset
from repro.ml import DecisionTreeClassifier
from repro.spec import get_property

SCOPE = 4
PROPERTY = get_property("PreOrder")


def main() -> None:
    dataset = generate_dataset(PROPERTY, SCOPE, rng=0)
    train, _ = dataset.split(0.75, rng=0)
    X, y = train.X.astype(float), train.y

    deployed = DecisionTreeClassifier().fit(X, y)
    pruned = DecisionTreeClassifier(max_depth=8, min_samples_leaf=3).fit(X, y)
    stump = DecisionTreeClassifier(max_depth=2).fit(X, y)

    print(f"deployed model: {deployed.n_leaves()} leaves")
    # One session fronts the substrate: both candidate diffs share its
    # engine, so the deployed tree's regions are compiled and counted once.
    with MCMLSession() as session:
        for name, candidate in [("pruned (depth<=8)", pruned), ("stump (depth<=2)", stump)]:
            result = session.diffmc(deployed, candidate)
            print(f"\ncandidate {name}: {candidate.n_leaves()} leaves")
            print(
                f"  TT={result.tt}  TF={result.tf}  FT={result.ft}  FF={result.ff}"
                f"  (of 2^{result.num_inputs} inputs)"
            )
            print(f"  semantic diff: {100 * result.diff:.3f}%  similarity: {100 * result.sim:.3f}%")
            verdict = "safe swap" if result.diff < 0.01 else "behavioural change - audit first"
            print(f"  verdict: {verdict}")


if __name__ == "__main__":
    main()
