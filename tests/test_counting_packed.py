"""Differential suite for the packed counting engine.

Pins the bitmask-packed :class:`ExactCounter` rewrite to three independent
oracles:

* vectorised brute force over the full ``2^{n²}`` space (the pre-Tseitin
  formula swept with numpy) on every registered property at scopes 2-4,
  with and without symmetry breaking;
* the original tuple-based algorithm (:class:`LegacyExactCounter`);
* :func:`brute_force_count` on randomized aux-free CNFs.

Plus regression tests that :class:`CountingEngine` cache hits return
bit-identical counts to cold calls, and unit tests for the packed clause
representation itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.counting import (
    CountingEngine,
    ExactCounter,
    LegacyExactCounter,
    brute_force_count,
    shared_engine,
)
from repro.counting.vector import FormulaBruteCounter
from repro.logic import CNF, Var, tseitin_cnf
from repro.logic.cnf import pack_clauses
from repro.spec import SymmetryBreaking, get_property, translate
from repro.spec.properties import PROPERTIES

from tests.test_sat_solver import random_cnf

SCOPES = (2, 3, 4)
SYMMETRY = (None, SymmetryBreaking())


def _case_id(case) -> str:
    prop, scope, symmetry = case
    return f"{prop.name}-{scope}-{'symbr' if symmetry else 'plain'}"


ALL_CASES = [
    (prop, scope, symmetry)
    for prop in PROPERTIES
    for scope in SCOPES
    for symmetry in SYMMETRY
]


class TestPackedAgainstBruteForce:
    """Packed counter vs the exhaustive sweep, every property × scope × symmetry."""

    @pytest.mark.parametrize("case", ALL_CASES, ids=_case_id)
    def test_matches_full_space_sweep(self, case):
        prop, scope, symmetry = case
        problem = translate(prop, scope, symmetry=symmetry)
        packed = ExactCounter().count(problem.cnf)
        swept = FormulaBruteCounter().count_formula(problem.formula, scope * scope)
        assert packed == swept

    @pytest.mark.parametrize("scope", SCOPES)
    def test_negated_problems_partition_the_space(self, scope):
        # φ and ¬φ counts must sum to 2^{n²} — exercises the negated
        # translation (used for the fp/tn counting problems) end to end.
        prop = get_property("Antisymmetric")
        counter = ExactCounter()
        positive = counter.count(translate(prop, scope).cnf)
        negative = counter.count(translate(prop, scope, negate=True).cnf)
        assert positive + negative == 1 << (scope * scope)


class TestPackedAgainstLegacy:
    """Packed counter vs the seed's tuple-based algorithm, bit for bit."""

    @pytest.mark.parametrize(
        "case",
        [c for c in ALL_CASES if c[1] <= 3],
        ids=_case_id,
    )
    def test_matches_legacy_at_small_scopes(self, case):
        prop, scope, symmetry = case
        cnf = translate(prop, scope, symmetry=symmetry).cnf
        assert ExactCounter().count(cnf) == LegacyExactCounter().count(cnf)

    def test_matches_legacy_on_the_ablation_instance(self):
        cnf = translate(
            get_property("PartialOrder"), 4, symmetry=SymmetryBreaking()
        ).cnf
        assert ExactCounter().count(cnf) == LegacyExactCounter().count(cnf)

    @given(random_cnf(max_vars=8, max_clauses=16))
    @settings(max_examples=60, deadline=None)
    def test_matches_legacy_on_random_cnfs(self, instance):
        num_vars, clauses = instance
        cnf = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
        assert ExactCounter().count(cnf) == LegacyExactCounter().count(cnf)

    @given(random_cnf(max_vars=10, max_clauses=24))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_on_random_cnfs(self, instance):
        num_vars, clauses = instance
        cnf = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
        assert ExactCounter().count(cnf) == brute_force_count(cnf)

    @given(random_cnf(max_vars=6, max_clauses=12))
    @settings(max_examples=40, deadline=None)
    def test_random_projection_subsets(self, instance):
        # Project onto the odd variables only: the packed counter's
        # projected search vs brute-force projection by model enumeration.
        num_vars, clauses = instance
        projection = [v for v in range(1, num_vars + 1) if v % 2 == 1]
        cnf = CNF(clauses, num_vars=num_vars, projection=projection)
        full = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
        from repro.counting import brute_force_models

        models = brute_force_models(full)
        columns = [v - 1 for v in projection]
        distinct = (
            len(np.unique(models[:, columns], axis=0)) if len(models) else 0
        )
        assert ExactCounter().count(cnf) == distinct


class TestCountingEngine:
    def test_cache_hit_is_bit_identical(self):
        prop = get_property("PartialOrder")
        cnf = translate(prop, 3, symmetry=SymmetryBreaking()).cnf
        engine = CountingEngine()
        cold = engine.count(cnf)
        assert engine.stats.count_hits == 0
        # A structurally equal but distinct CNF object must hit the memo.
        clone = translate(prop, 3, symmetry=SymmetryBreaking()).cnf
        warm = engine.count(clone)
        assert engine.stats.count_hits == 1
        assert warm == cold == ExactCounter().count(cnf)

    def test_count_many_deduplicates(self):
        cnf = translate(get_property("Reflexive"), 3).cnf
        engine = CountingEngine()
        first, second = engine.count_many([cnf, cnf.copy()])
        assert first == second
        assert engine.stats.count_calls == 2
        assert engine.stats.count_hits == 1

    def test_signature_distinguishes_projections(self):
        # Same clauses, different projection → different counts, no false hit.
        engine = CountingEngine()
        narrow = CNF([[1]], num_vars=1, projection=[1])
        wide = CNF([[1]], num_vars=3, projection=[1, 2, 3])
        assert engine.count(narrow) == 1
        assert engine.count(wide) == 4
        assert engine.stats.count_hits == 0

    def test_translate_memo(self):
        engine = CountingEngine()
        prop = get_property("Transitive")
        a = engine.translate(prop, 3, symmetry=SymmetryBreaking())
        b = engine.translate(prop, 3, symmetry=SymmetryBreaking())
        c = engine.translate(prop, 3)
        assert a is b
        assert c is not a
        assert engine.stats.translate_hits == 1

    def test_ground_truth_memo_and_counts(self):
        engine = CountingEngine()
        gt1 = engine.ground_truth(get_property("Reflexive"), 3)
        gt2 = engine.ground_truth(get_property("Reflexive"), 3)
        assert gt1 is gt2
        assert engine.count(gt1.positive().cnf) == 1 << 6  # free off-diagonal bits

    def test_backend_delegation(self):
        engine = shared_engine(None)
        assert engine.name == "exact"
        assert shared_engine(engine) is engine
        # Wrapping an engine in a fresh engine unwraps to the same backend.
        rewrapped = CountingEngine(engine)
        assert rewrapped.counter is engine.counter

    def test_region_memo(self):
        from repro.ml.decision_tree import TreePath

        paths = (
            TreePath(conditions=((0, True),), label=1),
            TreePath(conditions=((0, False),), label=0),
        )
        engine = CountingEngine()
        first = engine.region(paths, 1, 4)
        second = engine.region(paths, 1, 4)
        assert first is second
        assert engine.stats.region_hits == 1
        assert engine.count(first) == 8  # x1 true, three free bits


class TestPackedRepresentation:
    def test_pack_clauses_masks(self):
        packed = pack_clauses([(1, -3), (3, 7)])
        assert packed.variables == (1, 3, 7)
        assert packed.num_vars == 3
        assert packed.clauses == [(0b001, 0b010), (0b110, 0)]
        assert packed.var_mask() == 0b111

    def test_literal_of_roundtrip(self):
        packed = pack_clauses([(2, -5)])
        assert packed.literal_of(0b01, True) == 2
        assert packed.literal_of(0b10, False) == -5

    def test_signature_is_order_insensitive(self):
        a = pack_clauses([(1, 2), (-1, 3)]).signature()
        b = pack_clauses([(-1, 3), (1, 2)]).signature()
        assert a == b

    def test_cnf_signature_ignores_clause_order(self):
        first = CNF([[1, 2], [2, 3]], projection=[1, 2, 3])
        second = CNF([[2, 3], [1, 2]], projection=[1, 2, 3])
        assert first.signature() == second.signature()

    def test_projected_count_survives_aux_flag_removal(self):
        # The projection-aware search no longer needs the unique-extension
        # flag: flagged and unflagged CNFs agree bit for bit.
        x1, x2, x3, x4 = (Var(i) for i in range(1, 5))
        cnf = tseitin_cnf((x1 & x2) | (x3 & x4), num_input_vars=4)
        flagged = ExactCounter().count(cnf)
        cnf.aux_unique = False
        assert ExactCounter().count(cnf) == flagged == 7
