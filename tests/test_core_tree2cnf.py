"""Tree2CNF tests: the Section 4 construction, checked semantically."""

import itertools

import numpy as np
import pytest

from repro.core.tree2cnf import label_region_cnf, path_count, tree_paths_formula
from repro.counting import brute_force_count, exact_count
from repro.ml.decision_tree import DecisionTreeClassifier, TreePath


def _fit_tree(num_features: int, label_fn, seed=0, n=400):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, num_features)).astype(float)
    y = np.array([label_fn(row) for row in X.astype(int)], dtype=int)
    return DecisionTreeClassifier().fit(X, y), X, y


class TestFigure3Example:
    """The paper's Figure 3: 2 inputs x, y; tree computes x ↔ y."""

    PATHS = [
        TreePath(((0, True), (1, True)), 1),
        TreePath(((0, True), (1, False)), 0),
        TreePath(((0, False), (1, True)), 0),
        TreePath(((0, False), (1, False)), 1),
    ]

    def test_true_region_cnf(self):
        # Section 4 derives CNF(true) = (!x ∨ !y') form... concretely:
        # false paths are [x,!y] and [!x,y]; negations are the clauses.
        cnf = label_region_cnf(self.PATHS, 1, 2)
        assert sorted(cnf.clauses) == [(-1, 2), (1, -2)]

    def test_false_region_cnf(self):
        # (!x∨!y) ∧ (x∨y), as printed in the paper.
        cnf = label_region_cnf(self.PATHS, 0, 2)
        assert sorted(cnf.clauses) == [(-1, -2), (1, 2)]

    def test_counts(self):
        assert exact_count(label_region_cnf(self.PATHS, 1, 2)) == 2
        assert exact_count(label_region_cnf(self.PATHS, 0, 2)) == 2


class TestConstructionProperties:
    def test_no_aux_vars_and_linear_size(self):
        tree, _, _ = _fit_tree(4, lambda x: int(x.sum() % 2 == 0))
        for label in (0, 1):
            cnf = label_region_cnf(tree, label, 4)
            assert cnf.variables() <= set(range(1, 5))
            # One clause per opposite-label leaf (Section 4's analysis).
            assert len(cnf.clauses) == path_count(tree, 1 - label)

    def test_regions_partition_space(self):
        tree, _, _ = _fit_tree(5, lambda x: int(x[0] and (x[1] or not x[3])))
        true_cnf = label_region_cnf(tree, 1, 5)
        false_cnf = label_region_cnf(tree, 0, 5)
        assert exact_count(true_cnf) + exact_count(false_cnf) == 2**5

    def test_cnf_matches_predict_pointwise(self):
        tree, _, _ = _fit_tree(4, lambda x: int((x[0] ^ x[2]) or x[3]))
        true_cnf = label_region_cnf(tree, 1, 4)
        for bits in itertools.product([0, 1], repeat=4):
            predicted = tree.predict(np.array([bits], dtype=float))[0]
            satisfied = true_cnf.evaluate({k + 1: bool(bits[k]) for k in range(4)})
            assert satisfied == (predicted == 1)

    def test_dnf_formula_equals_cnf_region(self):
        tree, _, _ = _fit_tree(4, lambda x: int(x[1] and not x[2]))
        for label in (0, 1):
            dnf = tree_paths_formula(tree, label)
            cnf = label_region_cnf(tree, label, 4)
            for bits in itertools.product([False, True], repeat=4):
                assignment = {k + 1: bits[k] for k in range(4)}
                assert dnf.evaluate(assignment) == cnf.evaluate(assignment)

    def test_single_leaf_tree(self):
        # A constant tree: one region is everything, the other empty.
        X = np.zeros((10, 3))
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert exact_count(label_region_cnf(tree, 1, 3)) == 8
        assert exact_count(label_region_cnf(tree, 0, 3)) == 0

    def test_label_validation(self):
        with pytest.raises(ValueError):
            label_region_cnf([], 2, 3)

    def test_feature_range_validation(self):
        paths = [TreePath(((7, True),), 0), TreePath(((7, False),), 1)]
        with pytest.raises(ValueError):
            label_region_cnf(paths, 1, 3)

    def test_counts_match_brute_force_on_random_trees(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            tree, _, _ = _fit_tree(
                6,
                lambda x: int(rng.random() < 0.5),  # noisy labels → bushy tree
                seed=seed,
                n=150,
            )
            cnf = label_region_cnf(tree, 1, 6)
            assert exact_count(cnf) == brute_force_count(cnf)
