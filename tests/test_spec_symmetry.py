"""Symmetry-breaking tests, anchored to the paper's published counts."""

import numpy as np
import pytest

from repro.counting import exact_count
from repro.counting.brute import iter_assignment_blocks
from repro.counting.oracles import fibonacci
from repro.logic.formula import TRUE, Var, iter_assignments
from repro.spec import SymmetryBreaking, get_property, lex_leq, translate
from repro.spec.matrices import bits_to_matrices, property_mask
from repro.spec.symmetry import (
    adjacent_transpositions,
    all_permutations,
    iter_orbit,
    permuted_positions,
)


class TestGenerators:
    def test_adjacent_transpositions(self):
        assert adjacent_transpositions(3) == [(1, 0, 2), (0, 2, 1)]
        assert len(adjacent_transpositions(6)) == 5

    def test_all_permutations_excludes_identity(self):
        perms = all_permutations(3)
        assert len(perms) == 5
        assert (0, 1, 2) not in perms

    def test_permuted_positions_is_permutation(self):
        for perm in all_permutations(3):
            positions = permuted_positions(perm)
            assert sorted(positions) == list(range(9))

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            SymmetryBreaking("sideways")


class TestLexLeq:
    def test_semantics_exhaustive(self):
        a = [Var(1), Var(2)]
        b = [Var(3), Var(4)]
        formula = lex_leq(a, b)
        for assignment in iter_assignments(range(1, 5)):
            va = (assignment[1], assignment[2])
            vb = (assignment[3], assignment[4])
            assert formula.evaluate(assignment) == (va <= vb)

    def test_same_variable_folds(self):
        a = [Var(1), Var(2)]
        assert lex_leq(a, a) == TRUE

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            lex_leq([Var(1)], [Var(1), Var(2)])


class TestMaskVsFormula:
    """The vectorised filter and the CNF constraint must agree pointwise."""

    @pytest.mark.parametrize("kind", ["adjacent", "all"])
    @pytest.mark.parametrize("n", [2, 3])
    def test_agreement(self, kind, n):
        sb = SymmetryBreaking(kind)
        formula = sb.formula(n)
        m = n * n
        for block in iter_assignment_blocks(m):
            mask = sb.mask(block, n)
            for row, keep in zip(block, mask):
                assignment = {k + 1: bool(row[k]) for k in range(m)}
                assert formula.evaluate(assignment) == bool(keep)


class TestFibonacciAnchor:
    """DESIGN.md §2: equivalence under adjacent lex-leader counts F(n+1)."""

    @pytest.mark.parametrize("n,expected", [(3, 3), (4, 5), (5, 8)])
    def test_equivalence_counts(self, n, expected):
        assert expected == fibonacci(n + 1)
        sb = SymmetryBreaking("adjacent")
        mask_fn = property_mask("equivalence")
        total = 0
        for block in iter_assignment_blocks(n * n):
            keep = mask_fn(bits_to_matrices(block, n))
            keep &= sb.mask(block, n)
            total += int(keep.sum())
        assert total == expected

    def test_figure2_via_cnf(self):
        """Figure 2 of the paper: exactly 5 equivalence relations at scope 4."""
        problem = translate(get_property("Equivalence"), 4, symmetry=SymmetryBreaking())
        assert exact_count(problem.cnf) == 5

    def test_paper_scope_20_would_be_10946(self):
        """The scope-20 Alloy count in Table 1 equals F(21) — the anchor that
        justifies the adjacent-transposition reconstruction."""
        assert fibonacci(21) == 10946


class TestFullSymmetryBreaking:
    def test_full_lex_leader_gives_orbit_representatives(self):
        """With all permutations, equivalence relations at scope 4 reduce to
        the 5 integer partitions of 4 (full isomorph elimination)."""
        sb = SymmetryBreaking("all")
        mask_fn = property_mask("equivalence")
        total = 0
        for block in iter_assignment_blocks(16):
            keep = mask_fn(bits_to_matrices(block, 4))
            keep &= sb.mask(block, 4)
            total += int(keep.sum())
        assert total == 5

    def test_every_orbit_keeps_at_least_one_member(self):
        """Lex-leader never removes an orbit entirely."""
        sb = SymmetryBreaking("adjacent")
        rng = np.random.default_rng(11)
        for _ in range(25):
            matrix = rng.random((4, 4)) < 0.4
            orbit = [m for m in iter_orbit(matrix)]
            flat = np.stack([m.reshape(-1) for m in orbit])
            assert sb.mask(flat, 4).any()

    def test_full_breaking_keeps_exactly_lex_min_of_orbit(self):
        sb = SymmetryBreaking("all")
        rng = np.random.default_rng(13)
        for _ in range(25):
            matrix = rng.random((3, 3)) < 0.5
            orbit = np.stack([m.reshape(-1) for m in iter_orbit(matrix)])
            keep = sb.mask(orbit, 3)
            # Kept rows are exactly those equal to the orbit's lex-min row.
            as_tuples = [tuple(int(x) for x in row) for row in orbit]
            minimum = min(as_tuples)
            for row, kept in zip(as_tuples, keep):
                assert kept == (row == minimum)


class TestSingleMatrixHelpers:
    def test_is_minimal(self):
        sb = SymmetryBreaking("adjacent")
        # The empty and full relations are fixed points — always minimal.
        assert sb.is_minimal([[False] * 3 for _ in range(3)])
        assert sb.is_minimal([[True] * 3 for _ in range(3)])
