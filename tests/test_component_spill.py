"""Tests for the component-cache disk spill and the per-path AccMC route (PR 5).

Covers:

* :class:`ComponentStore` — round-trips of every value shape the component
  cache holds (counts, elimination tuples, the ``"unsat"`` marker), digest
  separation of plain vs ``("elim", …)``-tagged keys, write buffering, and
  the degrade-don't-fail contract (bit-flipped/truncated ``components.sqlite``
  rotates aside and reads as misses — engine construction never crashes);
* the :class:`ComponentCache` spill tier — evict→spill→promote round trips,
  ``spill_all`` at engine close, warm-restart promotions surfacing as
  ``EngineStats.component_spill_hits``, ``component_spill=0`` opt-out, and
  pickled caches/counters detaching the store (worker clones);
* the per-path route — ``CountRequest(strategy="per-path")`` validation and
  expansion, engine-level sum correctness and sub-problem dedup, rejection
  on approximate backends, the worker-pool guard, and AccMC bit-identity of
  the per-path vs conjunction routes over the 16-property × scope 2–4
  matrix (both construction modes);
* the knob plumbing — ``EngineConfig``/``MCMLSession``/CLI defaults.
"""

import os
import pickle

import pytest

from repro.core.accmc import AccMC
from repro.core.pipeline import MCMLPipeline
from repro.core.session import MCMLSession
from repro.core.tree2cnf import label_cubes, label_region_cnf
from repro.counting import (
    ComponentCache,
    ComponentStore,
    CountingEngine,
    CountRequest,
    EngineConfig,
    make_backend,
)
from repro.counting.store import COMPONENT_STORE_FILENAME, component_key_digest
from repro.logic import CNF
from repro.spec import SymmetryBreaking, get_property, translate
from repro.spec.properties import PROPERTIES


def _key(*clauses, proj=1):
    return (frozenset(clauses), proj)


def _phi(scope=3, name="PartialOrder", negate=False):
    return translate(
        get_property(name), scope, symmetry=SymmetryBreaking(), negate=negate
    ).cnf


# -- ComponentStore -----------------------------------------------------------------


class TestComponentStore:
    def test_round_trip_of_every_value_shape(self, tmp_path):
        store = ComponentStore(tmp_path)
        count_key = _key((1, 2), (4, 0))
        elim_key = ("elim", frozenset({(1, 2), (4, 0)}), 3)
        store.put(count_key, 42)
        store.put(elim_key, ((5, 2), (1, 0)))
        store.put(_key((8, 1)), "unsat")
        store.put(_key((2, 4), proj=6), 0)  # 0 is a count, not a miss
        store.flush()
        store.close()
        fresh = ComponentStore(tmp_path)
        assert fresh.get(count_key) == 42
        assert fresh.get(elim_key) == ((5, 2), (1, 0))
        assert fresh.get(_key((8, 1))) == "unsat"
        assert fresh.get(_key((2, 4), proj=6)) == 0
        assert fresh.get(_key((9, 0))) is None
        assert len(fresh) == 4
        fresh.close()

    def test_tagged_and_plain_keys_do_not_collide(self):
        clauses = frozenset({(1, 2), (4, 0)})
        assert component_key_digest((clauses, 3)) != component_key_digest(
            ("elim", clauses, 3)
        )

    def test_buffered_puts_visible_before_flush(self, tmp_path):
        store = ComponentStore(tmp_path)
        store.put(_key((1, 0)), 7)
        assert store.get(_key((1, 0))) == 7  # served from the buffer
        store.close()

    def test_put_of_known_key_is_dropped(self, tmp_path):
        store = ComponentStore(tmp_path)
        store.put(_key((1, 0)), 7)
        store.put(_key((1, 0)), 7)
        store.flush()
        assert len(store) == 1
        store.close()

    def test_closed_store_accepts_and_drops(self, tmp_path):
        store = ComponentStore(tmp_path)
        store.close()
        store.put(_key((1, 0)), 7)  # must not raise
        assert store.get(_key((1, 0))) is None
        store.close()  # idempotent

    def test_bit_flipped_file_degrades_to_misses(self, tmp_path):
        store = ComponentStore(tmp_path)
        store.put(_key((1, 0)), 7)
        store.flush()
        store.close()
        path = tmp_path / COMPONENT_STORE_FILENAME
        blob = bytearray(path.read_bytes())
        for i in range(0, min(len(blob), 64)):  # wreck the sqlite header
            blob[i] ^= 0xFF
        path.write_bytes(bytes(blob))
        reopened = ComponentStore(tmp_path)  # must not raise
        assert reopened.get(_key((1, 0))) is None
        reopened.put(_key((2, 0)), 9)  # and must be writable again
        reopened.flush()
        assert reopened.get(_key((2, 0))) == 9
        reopened.close()
        assert path.with_suffix(".sqlite.corrupt").exists()

    def test_truncated_file_never_crashes_engine_construction(self, tmp_path):
        (tmp_path / COMPONENT_STORE_FILENAME).write_bytes(b"SQLite format 3\x00tru")
        engine = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        assert engine.component_store is not None
        assert engine.solve(_phi()).value == 42
        engine.close()


# -- the spill tier on ComponentCache ------------------------------------------------


class TestSpillTier:
    def test_evict_spill_promote_round_trip(self, tmp_path):
        store = ComponentStore(tmp_path)
        cache = ComponentCache(max_bytes=None, max_entries=2)
        cache.attach_spill(store)
        keys = [_key((1 << i, 0)) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        # keys[0] was evicted — to disk, not dropped.
        assert keys[0] not in cache
        assert cache.spills == 1 and cache.evictions == 1
        assert store.get(keys[0]) == 0
        # A miss consults the store and promotes the entry back to memory …
        assert cache.get(keys[0]) == 0
        assert cache.spill_hits == 1
        assert keys[0] in cache
        # … which evicted (and spilled) the then-LRU keys[1].
        assert keys[1] not in cache
        assert cache.get(keys[1]) == 1  # promoted back in turn
        store.close()

    def test_spill_all_persists_live_entries(self, tmp_path):
        store = ComponentStore(tmp_path)
        cache = ComponentCache()
        cache.attach_spill(store)
        for i in range(5):
            cache.put(_key((1 << i, 0)), i)
        assert cache.spill_all() == 5
        store.close()
        fresh = ComponentStore(tmp_path)
        assert all(fresh.get(_key((1 << i, 0))) == i for i in range(5))
        fresh.close()

    def test_absent_key_costs_no_query_when_store_empty(self, tmp_path):
        store = ComponentStore(tmp_path)
        cache = ComponentCache()
        cache.attach_spill(store)
        assert cache.get(_key((1, 0))) is None
        assert cache.misses == 1 and cache.spill_hits == 0
        store.close()

    def test_pickled_cache_detaches_spill(self, tmp_path):
        store = ComponentStore(tmp_path)
        cache = ComponentCache()
        cache.attach_spill(store)
        cache.put(_key((1, 0)), 3)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.spill is None
        assert clone.get(_key((1, 0))) == 3  # entries themselves travel
        assert cache.spill is store  # the original keeps its tier
        store.close()

    def test_counter_with_spill_attached_pickles(self, tmp_path):
        engine = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        engine.solve(_phi())
        clone = pickle.loads(pickle.dumps(engine.counter))
        assert clone.component_cache.spill is None
        assert clone.count(_phi()) == 42
        engine.close()


# -- engine-level spill semantics ----------------------------------------------------


class TestEngineSpill:
    def test_warm_restart_promotes_components(self, tmp_path):
        phi = _phi()
        cold = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        expected = cold.solve(phi).value
        cold.close()  # spills the live entries
        assert len(ComponentStore(tmp_path)) > 0
        # Remove the whole-count store so the warm engine must genuinely
        # recount — through promoted components, not memoized answers.
        os.remove(tmp_path / "counts.sqlite")
        warm = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        result = warm.solve(phi)
        assert result.value == expected
        assert result.source == "backend"
        assert warm.stats.component_spill_hits > 0
        assert warm.stats.component_spill_hits == warm.component_cache.spill_hits
        warm.close()

    def test_spill_serves_new_regions_of_a_known_phi(self, tmp_path):
        """The workload the tier exists for: same φ, *different* regions."""
        prop = get_property("PartialOrder")
        sym = SymmetryBreaking()
        pipeline = MCMLPipeline(seed=0)
        dataset = pipeline.make_dataset(prop, 3, symmetry=sym)
        phi = _phi()

        def problems(fraction):
            train, _ = dataset.split(fraction, rng=0)
            tree = pipeline.train("DT", train)
            paths = tree.decision_paths()
            return [
                phi.conjoin(label_region_cnf(paths, label, 9)) for label in (1, 0)
            ]

        first = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        first.solve_many(problems(0.75))
        first.close()
        warm = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        batch = problems(0.3)  # a different tree: whole counts are cold
        results = warm.solve_many(batch)
        assert [r.source for r in results] == ["backend", "backend"]
        assert warm.stats.component_spill_hits > 0
        fresh = CountingEngine()
        assert [r.value for r in results] == [
            r.value for r in fresh.solve_many(batch)
        ]
        warm.close()

    def test_component_spill_zero_opts_out(self, tmp_path):
        engine = CountingEngine(
            config=EngineConfig(cache_dir=tmp_path, component_spill=0)
        )
        assert engine.component_store is None
        assert engine.component_cache is not None  # the memory tier stays
        engine.solve(_phi())
        engine.close()
        assert not (tmp_path / COMPONENT_STORE_FILENAME).exists()

    def test_no_cache_dir_means_no_spill(self):
        engine = CountingEngine()
        assert engine.component_store is None
        engine.close()

    def test_no_component_cache_means_no_spill(self, tmp_path):
        engine = CountingEngine(
            config=EngineConfig(cache_dir=tmp_path, component_cache_mb=0)
        )
        assert engine.component_store is None
        engine.close()

    def test_clear_rebaselines_spill_hits(self, tmp_path):
        phi = _phi()
        engine = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        engine.solve(phi)
        engine.component_cache.spill_all()
        # Empty the *whole-count* store and memos so the re-solve genuinely
        # recounts (through promoted components) instead of replaying.
        engine.store.clear()
        engine.clear()
        engine.solve(phi)
        assert engine.stats.component_spill_hits > 0
        delta_base = engine.stats.component_spill_hits
        engine.store.clear()
        engine.clear()
        assert engine.stats.component_spill_hits == 0  # re-baselined
        engine.solve(phi)
        assert engine.stats.component_spill_hits > 0
        assert engine.component_cache.spill_hits >= delta_base
        engine.close()

    def test_session_exposes_component_store(self, tmp_path):
        with MCMLSession(cache_dir=tmp_path) as session:
            assert session.component_store is not None
        with MCMLSession(cache_dir=tmp_path, component_spill=False) as session:
            assert session.component_store is None


# -- the per-path route --------------------------------------------------------------


class TestPerPathRequests:
    def test_request_validation(self):
        phi = _phi()
        with pytest.raises(ValueError, match="requires cubes"):
            CountRequest.from_cnf(phi, strategy="per-path")
        with pytest.raises(ValueError, match="only meaningful"):
            CountRequest.from_cnf(phi, cubes=((1,),))
        with pytest.raises(ValueError, match="strategy"):
            CountRequest.from_cnf(phi, strategy="per-leaf")

    def test_expand_adds_unit_clauses(self):
        cnf = CNF([(1, 2), (-1, 3)], num_vars=3)
        request = CountRequest.from_cnf(
            cnf, strategy="per-path", cubes=((1, -2), (-1,))
        )
        subs = request.expand()
        assert len(subs) == 2
        assert subs[0].clauses == [(1, 2), (-1, 3), (1,), (-2,)]
        assert subs[1].clauses == [(1, 2), (-1, 3), (-1,)]

    def test_split_on_one_variable_sums_to_plain_count(self):
        phi = _phi()
        engine = CountingEngine()
        split = engine.solve(
            CountRequest.from_cnf(phi, strategy="per-path", cubes=((1,), (-1,)))
        )
        assert split.value == engine.solve(phi).value

    def test_empty_cube_set_counts_zero(self):
        result = CountingEngine().solve(
            CountRequest.from_cnf(_phi(), strategy="per-path", cubes=())
        )
        assert result.value == 0
        assert result.cached  # no backend work was done

    def test_signature_includes_cubes(self):
        phi = _phi()
        plain = CountRequest.from_cnf(phi)
        split = CountRequest.from_cnf(phi, strategy="per-path", cubes=((1,),))
        other = CountRequest.from_cnf(phi, strategy="per-path", cubes=((-1,),))
        assert split.signature() != plain.signature()
        assert split.signature() != other.signature()

    def test_shared_paths_dedup_across_requests(self):
        phi = _phi()
        engine = CountingEngine()
        cubes = ((1, 2), (1, -2), (-1,))
        engine.solve(CountRequest.from_cnf(phi, strategy="per-path", cubes=cubes))
        before = engine.stats.copy()
        engine.solve(CountRequest.from_cnf(phi, strategy="per-path", cubes=cubes))
        delta = engine.stats.delta_since(before)
        assert delta.backend_calls == 0  # every sub-problem was a memo hit
        assert delta.count_hits == len(cubes)

    def test_per_path_rejected_on_approximate_backend(self):
        engine = CountingEngine(make_backend("approxmc", seed=7))
        request = CountRequest.from_cnf(_phi(), strategy="per-path", cubes=((1,),))
        with pytest.raises(ValueError, match="per-path"):
            engine.solve(request)

    def test_worker_pool_refuses_unexpanded_per_path(self):
        from repro.counting.parallel import WorkerPool

        request = CountRequest.from_cnf(_phi(), strategy="per-path", cubes=((1,),))
        pool = WorkerPool(pickle.dumps(None), workers=1)
        try:
            with pytest.raises(ValueError, match="expand"):
                pool.run([request])
        finally:
            pool.close()

    def test_request_pickles(self):
        request = CountRequest.from_cnf(
            _phi(), strategy="per-path", cubes=((1, -2), (3,))
        )
        clone = pickle.loads(pickle.dumps(request))
        assert clone == request


class TestPerPathAccMC:
    def _tree(self, prop, scope, fraction=0.5):
        pipeline = MCMLPipeline(seed=0)
        dataset = pipeline.make_dataset(
            prop, scope, symmetry=SymmetryBreaking(), max_positives=500
        )
        train, _ = dataset.split(fraction, rng=0)
        return pipeline.train("DT", train)

    @pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.name)
    @pytest.mark.parametrize("scope", (2, 3, 4))
    def test_per_path_bit_identical_to_conjunction(self, prop, scope):
        """The conformance matrix: both routes, identical confusion counts."""
        tree = self._tree(prop, scope)
        sym = SymmetryBreaking()
        conjunction = AccMC(mode="product")
        per_path = AccMC(mode="product", region_strategy="per-path")
        expected = conjunction.evaluate(
            tree, conjunction.ground_truth(prop, scope, symmetry=sym)
        )
        actual = per_path.evaluate(
            tree, per_path.ground_truth(prop, scope, symmetry=sym)
        )
        assert actual.counts == expected.counts

    def test_derived_mode_matches_product_under_per_path(self):
        prop = get_property("Antisymmetric")
        tree = self._tree(prop, 3)
        sym = SymmetryBreaking()
        results = [
            AccMC(mode=mode, region_strategy="per-path")
            .evaluate(
                tree,
                AccMC(mode=mode).ground_truth(prop, 3, symmetry=sym),
            )
            .counts
            for mode in ("product", "derived")
        ]
        assert results[0] == results[1]

    def test_label_cubes_partition_matches_region(self):
        prop = get_property("PartialOrder")
        tree = self._tree(prop, 3)
        paths = tree.decision_paths()
        engine = CountingEngine()
        for label in (0, 1):
            region = label_region_cnf(paths, label, 9)
            cubes = label_cubes(paths, label)
            split = engine.solve(
                CountRequest.from_cnf(
                    CNF(num_vars=9, projection=range(1, 10)),
                    strategy="per-path",
                    cubes=cubes,
                )
            )
            assert split.value == engine.solve(region).value

    def test_approximate_backend_falls_back_to_conjunction(self):
        accmc = AccMC(
            counter=make_backend("approxmc", seed=3), region_strategy="per-path"
        )
        prop = get_property("Reflexive")
        tree = self._tree(prop, 2)
        # Must not raise: the route negotiation falls back before the
        # engine ever sees a per-path request.
        result = accmc.evaluate(tree, accmc.ground_truth(prop, 2))
        assert result.counts.total > 0

    def test_session_region_strategy_threads_through(self, tmp_path):
        with MCMLSession(region_strategy="per-path", cache_dir=tmp_path) as s:
            data = s.pipeline.make_dataset("Reflexive", 2)
            train, _ = data.split(0.5, rng=0)
            tree = s.pipeline.train("DT", train)
            result = s.accmc(tree, "Reflexive", 2)
            assert s.pipeline.accmc.region_strategy == "per-path"
        with MCMLSession() as plain:
            data = plain.pipeline.make_dataset("Reflexive", 2)
            train, _ = data.split(0.5, rng=0)
            tree = plain.pipeline.train("DT", train)
            assert plain.accmc(tree, "Reflexive", 2).counts == result.counts
