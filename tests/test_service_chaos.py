"""Chaos suite for the counting service: network faults and drain semantics.

In-process, via :mod:`repro.counting.faults` network injection points:

* ``service-accept-drop`` — the client's capped-backoff retry rides out a
  server that resets fresh connections;
* ``service-reset-mid-response`` — a mid-response RST surfaces as a typed
  :class:`ServiceUnavailable` after the retry budget, and the post-fault
  retry is a memo hit, not a recount (idempotence under retry);
* ``service-slow-loris`` — a client dribbling bytes is dropped by the
  server's read deadline; the daemon stays healthy;
* ``service-oversize-payload`` — an oversized request line gets the typed
  ``oversized`` rejection, never an unbounded buffer;
* an overload storm — more clients than queue slots, every request either
  served or typed-rejected-then-retried, final counts bit-identical to a
  fault-free serial run.

As subprocesses, the drain guarantees of ``mcml serve``:

* SIGTERM mid-batch finishes the in-flight work, answers the client, and
  exits 0 with a clean ``drained`` event;
* the drain leaves ``components.sqlite`` warm — a restarted daemon
  re-counts a spilled workload with ``component_spill_hits > 0``;
* the drain leaves ``circuits.sqlite`` warm — a restarted daemon answers
  the same per-path workload with ``circuit_store_hits > 0``, zero
  recompilations and zero backend calls.

Every test disarms the fault registry on the way out, and anything that
could hang carries a SIGALRM hard timeout.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.session import MCMLSession
from repro.counting import faults
from repro.counting.api import CountRequest
from repro.counting.engine import CountingEngine, EngineConfig
from repro.counting.exact import ExactCounter
from repro.counting.service import ServiceClient, ServiceError
from repro.counting.service.client import ServiceUnavailable
from repro.logic import CNF
from repro.spec import SymmetryBreaking, get_property, translate

from test_service import DelayCounter, running_server, wait_until

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@contextmanager
def hard_timeout(seconds: int):
    def _alarm(signum, frame):
        raise TimeoutError(f"service chaos test exceeded its {seconds}s hard timeout")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _phi(scope=3, name="PartialOrder"):
    return translate(get_property(name), scope, symmetry=SymmetryBreaking()).cnf


# -- network faults, in-process ------------------------------------------------------


class TestNetworkFaults:
    def test_accept_drop_is_ridden_out_by_backoff(self):
        cnf = _phi()
        with hard_timeout(60):
            with MCMLSession(backend="exact") as session:
                expected = CountingEngine(ExactCounter()).solve(cnf).value
                with running_server(session) as (_, host, port):
                    faults.inject("service-accept-drop", 2)
                    client = ServiceClient(
                        host, port, retries=5, backoff_base=0.01, backoff_cap=0.1
                    )
                    assert client.count(cnf) == expected
                    assert client.retry_count >= 1
                    client.close()

    def test_reset_mid_response_retries_are_memo_hits(self):
        cnf = _phi()
        with hard_timeout(60):
            with MCMLSession(backend="exact") as session:
                with running_server(session) as (_, host, port):
                    with faults.injected("service-reset-mid-response"):
                        client = ServiceClient(
                            host, port, retries=2, backoff_base=0.01, backoff_cap=0.1
                        )
                        with pytest.raises(ServiceUnavailable):
                            client.solve(cnf)
                        client.close()
                    # The aborted responses still computed (and memoized)
                    # the answer; a clean retry is a lookup, not a recount.
                    clean = ServiceClient(host, port, retries=2)
                    result = clean.solve(cnf)
                    clean.close()
                    assert result.cached
                    assert session.engine.stats.backend_calls == 1

    def test_slow_loris_is_dropped_by_the_read_deadline(self):
        tiny = CNF(num_vars=2, clauses=[(1,), (2,)])
        with hard_timeout(60):
            with MCMLSession(backend="exact") as session:
                with running_server(session, read_timeout=0.4) as (server, host, port):
                    with faults.injected("service-slow-loris"):
                        loris = ServiceClient(host, port, retries=0, request_timeout=10)
                        with pytest.raises(ServiceUnavailable):
                            loris.solve(tiny)
                        loris.close()
                    # The daemon shrugged the loris off; honest clients work.
                    clean = ServiceClient(host, port, retries=0)
                    assert clean.count(tiny) == 1
                    clean.close()
                    assert server._counters["internal_errors"] == 0

    def test_oversize_payload_gets_typed_rejection(self):
        tiny = CNF(num_vars=2, clauses=[(1,)])
        with hard_timeout(60):
            with MCMLSession(backend="exact") as session:
                with running_server(session, max_line_bytes=32768) as (server, host, port):
                    with faults.injected("service-oversize-payload"):
                        client = ServiceClient(
                            host, port, retries=0, max_line_bytes=65536
                        )
                        with pytest.raises(ServiceError) as excinfo:
                            client.solve(tiny)
                        client.close()
                    assert excinfo.value.code == "oversized"
                    assert server._counters["oversized"] == 1
                    clean = ServiceClient(host, port, retries=0)
                    assert clean.count(tiny) == 2
                    clean.close()

    def test_overload_storm_stays_typed_and_bit_identical(self):
        problems = [CNF(num_vars=4, clauses=[(i + 1,)]) for i in range(4)]
        with CountingEngine(ExactCounter()) as reference:
            expected = [r.value for r in reference.solve_many(problems)]
        engine = CountingEngine(DelayCounter(0.1), EngineConfig(workers=1))
        with hard_timeout(120):
            with MCMLSession(engine=engine) as session:
                with running_server(
                    session, max_queue=2, max_inflight_per_client=1
                ) as (server, host, port):
                    values: dict[int, int] = {}
                    errors: list[Exception] = []

                    def hammer(i):
                        try:
                            with ServiceClient(
                                host,
                                port,
                                retries=10,
                                backoff_base=0.05,
                                backoff_cap=0.5,
                            ) as client:
                                values[i] = client.count(problems[i % len(problems)])
                        except Exception as exc:  # any escape fails the test
                            errors.append(exc)

                    workers = [
                        threading.Thread(target=hammer, args=(i,)) for i in range(8)
                    ]
                    for w in workers:
                        w.start()
                    for w in workers:
                        w.join(timeout=90)
                    assert not errors
                    assert len(values) == 8
                    for i, value in values.items():
                        assert value == expected[i % len(problems)]
                    assert server._counters["internal_errors"] == 0

    def test_drain_rejects_new_work_with_shutting_down(self):
        with hard_timeout(60):
            with MCMLSession(backend="exact") as session:
                server, host, port = None, None, None
                with running_server(session) as (server, host, port):
                    client = ServiceClient(host, port, retries=0)
                    assert client.count(CNF(num_vars=1, clauses=[(1,)])) == 1
                    server.initiate_drain("test")
                    with pytest.raises((ServiceError, ServiceUnavailable)) as excinfo:
                        client.count(CNF(num_vars=1, clauses=[(-1,)]))
                    client.close()
                    if isinstance(excinfo.value, ServiceError) and not isinstance(
                        excinfo.value, ServiceUnavailable
                    ):
                        assert excinfo.value.code in ("overloaded", "shutting-down")


# -- drain semantics, as subprocesses ------------------------------------------------


def _spawn_daemon(cache_dir, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--cache-dir",
            str(cache_dir),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["event"] == "listening"
    return proc, ready["host"], ready["port"]


def _terminate(proc):
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0, f"daemon exited {proc.returncode}:\n{err}"
    events = [json.loads(line) for line in out.splitlines() if line.strip()]
    assert events and events[-1]["event"] == "drained"
    assert events[-1]["clean"] is True
    return err


class TestDrainSemantics:
    def test_sigterm_mid_batch_finishes_in_flight_work(self, tmp_path):
        cnfs = [_phi(3, name) for name in ("PartialOrder", "Reflexive", "Transitive")]
        with hard_timeout(120):
            proc, host, port = _spawn_daemon(tmp_path, "--backend", "exact")
            try:
                outcome = {}

                def batch():
                    with ServiceClient(host, port, request_timeout=60) as client:
                        outcome["values"] = [
                            r.value for r in client.solve_many(cnfs)
                        ]

                worker = threading.Thread(target=batch)
                worker.start()
                time.sleep(0.3)  # let the batch reach the solver
                err = _terminate(proc)
                worker.join(timeout=60)
                assert not worker.is_alive()
                # The drain finished the in-flight batch before exiting.
                reference = CountingEngine(ExactCounter())
                assert outcome["values"] == [
                    reference.solve(cnf).value for cnf in cnfs
                ]
                assert "Traceback" not in err
            finally:
                if proc.poll() is None:
                    proc.kill()

    def test_drain_leaves_component_store_warm(self, tmp_path):
        phi = _phi()
        with hard_timeout(120):
            proc, host, port = _spawn_daemon(tmp_path, "--backend", "exact")
            try:
                with ServiceClient(host, port, request_timeout=60) as client:
                    expected = client.solve(phi).value
                _terminate(proc)
            finally:
                if proc.poll() is None:
                    proc.kill()
            assert (tmp_path / "components.sqlite").exists()
            # Remove the whole-count store so the restarted daemon must
            # genuinely recount — through spilled components.
            os.remove(tmp_path / "counts.sqlite")
            proc, host, port = _spawn_daemon(tmp_path, "--backend", "exact")
            try:
                with ServiceClient(host, port, request_timeout=60) as client:
                    result = client.solve(phi)
                    stats = client.stats()
                _terminate(proc)
            finally:
                if proc.poll() is None:
                    proc.kill()
            assert result.value == expected
            assert result.source == "backend"
            assert stats["engine"]["component_spill_hits"] > 0

    def test_drain_leaves_circuit_store_warm(self, tmp_path):
        import numpy as np

        from repro.core.tree2cnf import label_cubes, label_region_cnf
        from repro.ml.decision_tree import DecisionTreeClassifier

        rng = np.random.default_rng(19)
        X = rng.integers(0, 2, size=(120, 8))
        first = DecisionTreeClassifier(max_depth=4, random_state=0).fit(
            X, ((X[:, 0] & X[:, 1]) | X[:, 2]).astype(int)
        )
        second = DecisionTreeClassifier(max_depth=4, random_state=0).fit(
            X, (X[:, 0] | (X[:, 3] & X[:, 4])).astype(int)
        )
        base = label_region_cnf(first.decision_paths(), 1, 8)
        cubes = label_cubes(second.decision_paths(), 1, 8)
        request = CountRequest.from_cnf(base, strategy="per-path", cubes=cubes)
        with hard_timeout(180):
            proc, host, port = _spawn_daemon(tmp_path, "--backend", "compiled")
            try:
                with ServiceClient(host, port, request_timeout=120) as client:
                    expected = client.solve(request).value
                    stats = client.stats()
                    assert stats["engine"]["circuit_compilations"] == 1
                _terminate(proc)
            finally:
                if proc.poll() is None:
                    proc.kill()
            assert (tmp_path / "circuits.sqlite").exists()
            proc, host, port = _spawn_daemon(tmp_path, "--backend", "compiled")
            try:
                with ServiceClient(host, port, request_timeout=120) as client:
                    result = client.solve(request)
                    stats = client.stats()
                _terminate(proc)
            finally:
                if proc.poll() is None:
                    proc.kill()
            assert result.value == expected
            # Warm restart: the circuit came off disk — no recompilation,
            # no backend call, for a previously-answered signature.
            assert stats["engine"]["circuit_store_hits"] >= 1
            assert stats["engine"]["circuit_compilations"] == 0
            assert stats["engine"]["backend_calls"] == 0
