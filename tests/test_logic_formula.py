"""Unit tests for the propositional formula AST."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import (
    And,
    FALSE,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    all_of,
    any_of,
    at_most_one,
    exactly_one,
)
from repro.logic.formula import (
    Formula,
    iter_assignments,
    models,
    semantically_equal,
)


def test_var_requires_positive_id():
    with pytest.raises(ValueError):
        Var(0)
    with pytest.raises(ValueError):
        Var(-3)


def test_constant_folding_not():
    assert Not(TRUE) == FALSE
    assert Not(FALSE) == TRUE
    x = Var(1)
    assert Not(Not(x)) == x


def test_and_flattening_and_identity():
    x, y, z = Var(1), Var(2), Var(3)
    assert And(x, And(y, z)) == And(x, y, z)
    assert And(x, TRUE) == x
    assert And(x, FALSE) == FALSE
    assert And() == TRUE
    assert And(x, x) == x


def test_or_flattening_and_identity():
    x, y, z = Var(1), Var(2), Var(3)
    assert Or(x, Or(y, z)) == Or(x, y, z)
    assert Or(x, FALSE) == x
    assert Or(x, TRUE) == TRUE
    assert Or() == FALSE
    assert Or(x, x) == x


def test_implies_folding():
    x = Var(1)
    assert Implies(TRUE, x) == x
    assert Implies(FALSE, x) == TRUE
    assert Implies(x, TRUE) == TRUE
    assert Implies(x, FALSE) == Not(x)


def test_iff_folding():
    x, y = Var(1), Var(2)
    assert Iff(x, x) == TRUE
    assert Iff(TRUE, x) == x
    assert Iff(x, FALSE) == Not(x)
    assert Iff(x, y) == Iff(x, y)


def test_operator_overloads():
    x, y = Var(1), Var(2)
    assert (x & y) == And(x, y)
    assert (x | y) == Or(x, y)
    assert (~x) == Not(x)
    assert (x >> y) == Implies(x, y)
    assert x.iff(y) == Iff(x, y)


def test_evaluate_basic():
    x, y = Var(1), Var(2)
    f = (x & ~y) | (~x & y)  # xor
    assert f.evaluate({1: True, 2: False})
    assert f.evaluate({1: False, 2: True})
    assert not f.evaluate({1: True, 2: True})
    assert not f.evaluate({1: False, 2: False})


def test_variables():
    x, y, z = Var(1), Var(2), Var(7)
    f = Implies(And(x, y), Or(z, Not(x)))
    assert f.variables() == {1, 2, 7}


def test_substitute():
    x, y, z = Var(1), Var(2), Var(3)
    f = x & y
    g = f.substitute({1: z})
    assert g == (z & y)


def test_models_enumeration():
    x, y = Var(1), Var(2)
    assert len(models(x & y)) == 1
    assert len(models(x | y)) == 3
    assert len(models(Iff(x, y))) == 2


def test_exactly_one():
    vs = [Var(i) for i in range(1, 5)]
    f = exactly_one(vs)
    sols = models(f, range(1, 5))
    assert len(sols) == 4
    for sol in sols:
        assert sum(sol.values()) == 1


def test_at_most_one():
    vs = [Var(i) for i in range(1, 4)]
    f = at_most_one(vs)
    sols = models(f, range(1, 4))
    assert len(sols) == 4  # none, or exactly one of three


def test_all_of_any_of_empty():
    assert all_of([]) == TRUE
    assert any_of([]) == FALSE


# -- property-based tests -----------------------------------------------------

_MAX_VARS = 4


def formula_strategy(max_depth: int = 4) -> st.SearchStrategy[Formula]:
    base = st.one_of(
        st.integers(min_value=1, max_value=_MAX_VARS).map(Var),
        st.just(TRUE),
        st.just(FALSE),
    )

    def extend(children: st.SearchStrategy[Formula]) -> st.SearchStrategy[Formula]:
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda t: And(*t)),
            st.tuples(children, children).map(lambda t: Or(*t)),
            st.tuples(children, children).map(lambda t: Implies(*t)),
            st.tuples(children, children).map(lambda t: Iff(*t)),
        )

    return st.recursive(base, extend, max_leaves=12)


@given(formula_strategy())
def test_nnf_preserves_semantics(f: Formula):
    nnf = f.to_nnf()
    for assignment in iter_assignments(range(1, _MAX_VARS + 1)):
        assert f.evaluate(assignment) == nnf.evaluate(assignment)


@given(formula_strategy())
def test_nnf_negate_is_negation(f: Formula):
    neg = f.to_nnf(negate=True)
    for assignment in iter_assignments(range(1, _MAX_VARS + 1)):
        assert f.evaluate(assignment) == (not neg.evaluate(assignment))


@given(formula_strategy())
def test_nnf_has_no_compound_negation(f: Formula):
    for node in f.to_nnf().walk():
        if isinstance(node, Not):
            assert isinstance(node.operand, Var)
        assert not isinstance(node, (Implies, Iff))


@given(formula_strategy(), formula_strategy())
def test_de_morgan(f: Formula, g: Formula):
    assert semantically_equal(Not(And(f, g)), Or(Not(f), Not(g)))
    assert semantically_equal(Not(Or(f, g)), And(Not(f), Not(g)))
