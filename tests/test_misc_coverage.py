"""Residual-coverage tests: flag propagation, helper paths, edge behaviours
not exercised elsewhere."""

import numpy as np
import pytest

from repro.counting import exact_count
from repro.logic import CNF, Var, tseitin_cnf
from repro.logic.formula import dag_size, fold, semantically_equal
from repro.sat.enumerate import enumerate_as_bits
from repro.spec import SymmetryBreaking, get_property, translate
from repro.spec.ast import Iden, ReflClosure, RelRef
from repro.spec.evaluate import evaluate_concrete


class TestCnfFlagPropagation:
    def test_conjoin_preserves_aux_unique_when_both_safe(self):
        x, y = Var(1), Var(2)
        a = tseitin_cnf(x | y, num_input_vars=2)
        b = CNF([[1, -2]], projection=[1, 2])
        combined = a.conjoin(b)
        assert combined.counts_without_projection()
        assert exact_count(combined) == 2  # (x|y) & (x|!y) -> x

    def test_conjoin_drops_flag_when_unsafe(self):
        a = tseitin_cnf(Var(1) | Var(2), num_input_vars=2)
        unsafe = CNF([[3, 4]], projection=[3])  # aux var 4, no guarantee
        assert not unsafe.counts_without_projection()
        assert not a.conjoin(unsafe).counts_without_projection()

    def test_copy_preserves_everything(self):
        cnf = tseitin_cnf(Var(1) & Var(2), num_input_vars=2)
        clone = cnf.copy()
        assert clone.aux_unique == cnf.aux_unique
        assert clone.projection == cnf.projection
        clone.add_clause([1])
        assert len(clone) == len(cnf) + 1  # copy is independent

    def test_repr_mentions_shape(self):
        cnf = CNF([[1, 2]], projection=[1])
        assert "clauses=1" in repr(cnf)


class TestFormulaHelpers:
    def test_fold_memoises_shared_nodes(self):
        x = Var(1)
        shared = x & Var(2)
        formula = shared | ~shared  # same node twice
        calls = []

        def count_node(node, child_results):
            calls.append(node)
            return 1 + sum(child_results)

        fold(formula, count_node)
        # The shared conjunction is folded once, not twice.
        assert sum(1 for node in calls if node == shared) == 1

    def test_dag_size_counts_distinct_nodes(self):
        x, y = Var(1), Var(2)
        shared = x & y
        formula = shared | shared  # Or() dedupes -> collapses to shared
        assert dag_size(formula) == 3  # And node + two vars

    def test_semantically_equal_negative_case(self):
        assert not semantically_equal(Var(1), Var(2))


class TestEnumerateAsBits:
    def test_order_respected(self):
        cnf = CNF([[1], [-2]], projection=[1, 2])
        rows = list(enumerate_as_bits(cnf, [2, 1]))
        assert rows == [(0, 1)]  # order [var2, var1]

    def test_limit(self):
        cnf = CNF(num_vars=3, projection=[1, 2, 3])
        rows = list(enumerate_as_bits(cnf, [1, 2, 3], limit=4))
        assert len(rows) == 4


class TestSpecOddsAndEnds:
    def test_refl_closure_grounds_correctly(self):
        # *r contains iden even for the empty relation.
        formula = translate(
            __import__("repro.spec.ast", fromlist=["In"]).In(Iden(), ReflClosure(RelRef("r"))),
            3,
        )
        assert exact_count(formula.cnf) == 2**9  # tautology: all relations

    def test_closure_semantics_on_concrete_matrix(self):
        from repro.spec.ast import Closure, In

        reaches = In(Iden(), Closure(RelRef("r")))
        cycle = [[False, True], [True, False]]
        chain = [[False, True], [False, False]]
        assert evaluate_concrete(reaches, cycle)
        assert not evaluate_concrete(reaches, chain)

    def test_translate_raw_formula_names_node_type(self):
        from repro.spec.ast import Some

        problem = translate(Some(RelRef("r")), 2)
        assert problem.name == "Some"
        negated = translate(Some(RelRef("r")), 2, negate=True)
        assert negated.name.startswith("not(")
        assert exact_count(problem.cnf) + exact_count(negated.cnf) == 16

    def test_symmetry_formula_custom_positions(self):
        sb = SymmetryBreaking("adjacent")
        with pytest.raises(ValueError):
            sb.formula(3, var_of=[Var(1)])  # wrong length

    def test_mask_rejects_wrong_width(self):
        sb = SymmetryBreaking("adjacent")
        with pytest.raises(ValueError):
            sb.mask(np.zeros((4, 5), dtype=bool), 3)


class TestSolverStats:
    def test_stats_populated_after_search(self):
        from repro.sat import Solver

        solver = Solver()
        # Force at least one conflict: parity chain with a contradiction.
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2, 3], [-3]]
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve()
        assert solver.stats["propagations"] >= 0
        assert solver.stats["decisions"] >= 0

    def test_model_literals_helper(self):
        from repro.sat import SatResult, Solver

        solver = Solver(2)
        solver.add_clause([1])
        solver.add_clause([-2])
        assert solver.solve() is SatResult.SAT
        assert solver.model_literals([1, 2]) == [1, -2]


class TestDatasetEdge:
    def test_properties_available_for_all_16_via_pipeline(self):
        """Every registered property can produce a dataset at scope 3."""
        from repro.data import generate_dataset
        from repro.spec import PROPERTIES

        for prop in PROPERTIES:
            dataset = generate_dataset(prop, 3, max_positives=10, rng=0)
            assert len(dataset) > 0
            assert dataset.property_name == prop.name
