"""Differential and unit tests for all four counting back-ends."""

import math

import pytest
from hypothesis import given, settings

from repro.counting import (
    ApproxMCCounter,
    BDDCounter,
    ExactCounter,
    approx_count,
    bdd_count,
    brute_force_count,
    brute_force_models,
    closed_form_count,
    exact_count,
)
from repro.counting.approxmc import (
    XorConstraint,
    compute_rounds,
    compute_threshold,
    encode_xor,
    random_xor,
)
from repro.counting.exact import CounterBudgetExceeded
from repro.counting.oracles import bell_number, fibonacci
from repro.logic import CNF, Var, tseitin_cnf
from repro.logic.formula import iter_assignments

from tests.test_sat_solver import random_cnf


class TestExactCounter:
    def test_empty_cnf(self):
        assert exact_count(CNF(num_vars=3, projection=[1, 2, 3])) == 8

    def test_unsat(self):
        assert exact_count(CNF([[1], [-1]], projection=[1])) == 0

    def test_single_clause(self):
        # x1 ∨ x2 over 2 vars: 3 models.
        assert exact_count(CNF([[1, 2]], projection=[1, 2])) == 3

    def test_free_variables_multiply(self):
        # clause over x1 only, projection {1,2,3}: 1 * 2^2 = 4 models.
        assert exact_count(CNF([[1]], projection=[1, 2, 3])) == 4

    def test_component_decomposition(self):
        # (x1∨x2) ∧ (x3∨x4): 3 * 3 = 9 models.
        cnf = CNF([[1, 2], [3, 4]], projection=[1, 2, 3, 4])
        assert exact_count(cnf) == 9

    def test_xor_chain(self):
        # x1 ⊕ x2 ⊕ x3 = 1 has 4 models over 3 vars.
        cnf = CNF(
            [[1, 2, 3], [1, -2, -3], [-1, 2, -3], [-1, -2, 3]],
            projection=[1, 2, 3],
        )
        assert exact_count(cnf) == 4

    def test_budget_exceeded(self):
        cnf = CNF([[1, 2], [2, 3], [3, 4], [4, 5]], projection=range(1, 6))
        with pytest.raises(CounterBudgetExceeded):
            ExactCounter(max_nodes=1).count(cnf)

    def test_projected_count_with_tseitin_aux(self):
        # (x1 ∧ x2) ∨ (x3 ∧ x4) has 7 models over 4 vars.
        x1, x2, x3, x4 = (Var(i) for i in range(1, 5))
        cnf = tseitin_cnf((x1 & x2) | (x3 & x4), num_input_vars=4)
        assert cnf.aux_unique
        assert exact_count(cnf) == 7

    def test_projected_fallback_without_flag(self):
        # Same formula, flag stripped: result must still be the projected count.
        x1, x2, x3, x4 = (Var(i) for i in range(1, 5))
        cnf = tseitin_cnf((x1 & x2) | (x3 & x4), num_input_vars=4)
        cnf.aux_unique = False
        assert not cnf.counts_without_projection()
        assert exact_count(cnf) == 7

    @given(random_cnf(max_vars=8, max_clauses=16))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_brute_force(self, instance):
        num_vars, clauses = instance
        cnf = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
        assert exact_count(cnf) == brute_force_count(cnf)


class TestBruteForce:
    def test_count_simple(self):
        assert brute_force_count(CNF([[1, 2]], projection=[1, 2])) == 3

    def test_models_shape_and_content(self):
        cnf = CNF([[1], [-2]], projection=[1, 2])
        models = brute_force_models(cnf)
        assert models.shape == (1, 2)
        assert models[0].tolist() == [True, False]

    def test_rejects_aux_vars(self):
        cnf = CNF([[1, 3]], projection=[1, 2])
        with pytest.raises(ValueError):
            brute_force_count(cnf)

    def test_rejects_too_many_vars(self):
        cnf = CNF(num_vars=30, projection=range(1, 31))
        with pytest.raises(ValueError):
            brute_force_count(cnf)

    def test_block_boundary(self):
        # 19 vars spans multiple evaluation blocks; empty CNF counts all.
        cnf = CNF(num_vars=19, projection=range(1, 20))
        assert brute_force_count(cnf) == 1 << 19


class TestBDDCounter:
    def test_simple(self):
        assert bdd_count(CNF([[1, 2]], projection=[1, 2])) == 3

    def test_unsat(self):
        assert bdd_count(CNF([[1], [-1]], projection=[1])) == 0

    def test_free_vars(self):
        assert bdd_count(CNF([[2]], projection=[1, 2, 3])) == 4

    def test_rejects_aux(self):
        with pytest.raises(ValueError):
            bdd_count(CNF([[1, 3]], projection=[1, 2]))

    def test_budget(self):
        clauses = [[i, i + 1] for i in range(1, 12)]
        with pytest.raises(CounterBudgetExceeded):
            BDDCounter(max_nodes=2).count(CNF(clauses, projection=range(1, 13)))

    @given(random_cnf(max_vars=8, max_clauses=16))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_brute_force(self, instance):
        num_vars, clauses = instance
        cnf = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
        assert bdd_count(cnf) == brute_force_count(cnf)


class TestXorEncoding:
    def test_empty_xor_false_is_noop(self):
        cnf = CNF(num_vars=2, projection=[1, 2])
        encode_xor(cnf, XorConstraint((), False))
        assert exact_count(cnf) == 4

    def test_empty_xor_true_is_unsat(self):
        cnf = CNF(num_vars=2, projection=[1, 2])
        encode_xor(cnf, XorConstraint((), True))
        assert exact_count(cnf) == 0

    def test_single_var(self):
        cnf = CNF(num_vars=2, projection=[1, 2])
        encode_xor(cnf, XorConstraint((1,), True))
        assert exact_count(cnf) == 2  # x1 fixed true, x2 free

    @pytest.mark.parametrize("rhs", [False, True])
    def test_three_var_parity(self, rhs):
        cnf = CNF(num_vars=3, projection=[1, 2, 3], aux_unique=True)
        encode_xor(cnf, XorConstraint((1, 2, 3), rhs))
        # Each parity class has exactly half the assignments.
        assert exact_count(cnf) == 4

    def test_semantics_via_enumeration(self):
        from repro.sat import enumerate_models

        cnf = CNF(num_vars=3, projection=[1, 2, 3], aux_unique=True)
        constraint = XorConstraint((1, 3), True)
        encode_xor(cnf, constraint)
        for model in enumerate_models(cnf, projection=[1, 2, 3]):
            assert constraint.holds(model)

    def test_random_xor_draws_subset(self):
        import random

        rng = random.Random(1)
        constraint = random_xor(range(1, 50), rng)
        assert set(constraint.variables) <= set(range(1, 50))


class TestApproxMC:
    def test_threshold_formula(self):
        # ApproxMC pivot for eps=0.8: 1 + 9.84*(1+0.8/1.8)*(1+1/0.8)^2 ≈ 72.
        assert compute_threshold(0.8) == 72

    def test_rounds_odd(self):
        assert compute_rounds(0.2) % 2 == 1
        with pytest.raises(ValueError):
            compute_rounds(0)

    def test_small_counts_exact(self):
        # Fewer models than the pivot: answer must be exact.
        cnf = CNF([[1, 2]], projection=[1, 2])
        assert approx_count(cnf) == 3

    def test_medium_count_within_tolerance(self):
        # Empty CNF over 12 vars: exactly 4096 models — approx within (1+eps).
        cnf = CNF(num_vars=12, projection=range(1, 13))
        epsilon = 0.8
        estimate = ApproxMCCounter(epsilon=epsilon, delta=0.2, seed=3).count(cnf)
        assert 4096 / (1 + epsilon) <= estimate <= 4096 * (1 + epsilon)

    def test_structured_formula_within_tolerance(self):
        # x_i ∨ x_{i+1} chain over 10 vars; compare against brute force.
        clauses = [[i, i + 1] for i in range(1, 10)]
        cnf = CNF(clauses, num_vars=10, projection=range(1, 11))
        truth = brute_force_count(cnf)
        epsilon = 0.8
        estimate = ApproxMCCounter(epsilon=epsilon, delta=0.2, seed=7).count(cnf)
        assert truth / (1 + epsilon) <= estimate <= truth * (1 + epsilon)


class TestOracles:
    def test_bell_numbers(self):
        assert [bell_number(i) for i in range(6)] == [1, 1, 2, 5, 15, 52]
        assert bell_number(20) == 51724158235372

    def test_fibonacci(self):
        assert [fibonacci(i) for i in range(1, 8)] == [1, 1, 2, 3, 5, 8, 13]
        assert fibonacci(21) == 10946  # Table 1: Equivalence scope 20, symbr

    @pytest.mark.parametrize(
        "prop,scope,expected",
        [
            ("Antisymmetric", 5, 1_889_568),
            ("Connex", 6, 14_348_907),
            ("Function", 8, 16_777_216),
            ("Functional", 8, 43_046_721),
            ("Injective", 8, 16_777_216),
            ("Irreflexive", 5, 1_048_576),
            ("NonStrictOrder", 7, 6_129_859),
            ("PartialOrder", 6, 8_321_472),
            ("PreOrder", 7, 9_535_241),
            ("Reflexive", 5, 1_048_576),
            ("StrictOrder", 7, 6_129_859),
            ("Transitive", 6, 9_415_189),
        ],
    )
    def test_matches_table1_nosymbr_column(self, prop, scope, expected):
        """Every finished ProjMC/NoSymBr entry in Table 1, verified exactly."""
        assert closed_form_count(prop, scope) == expected

    def test_totalorder_is_factorial(self):
        assert closed_form_count("TotalOrder", 13) == math.factorial(13)

    def test_equivalence_scope20_matches_bell(self):
        assert closed_form_count("Equivalence", 20) == 51724158235372

    def test_unknown_property(self):
        with pytest.raises(KeyError):
            closed_form_count("NotAProperty", 3)

    def test_table_bounds(self):
        with pytest.raises(ValueError):
            closed_form_count("Transitive", 99)
