"""Tests for scope selection (§5 methodology) and tree export helpers."""

import numpy as np
import pytest

from repro.counting import closed_form_count
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.export import export_dot, export_rules, export_text, matrix_feature_names
from repro.spec import SymmetryBreaking, get_property
from repro.spec.scopes import (
    PAPER_MIN_POSITIVES_NOSYMBR,
    choose_scope,
    paper_scope_no_symbr,
    positive_count,
)


class TestPositiveCount:
    def test_closed_form_path(self):
        prop = get_property("Function")
        assert positive_count(prop, 4) == 256
        assert positive_count(prop, 8) == closed_form_count("function", 8)

    def test_symmetry_path_small_scope(self):
        prop = get_property("Equivalence")
        assert positive_count(prop, 4, symmetry=SymmetryBreaking()) == 5

    def test_limit_short_circuits(self):
        prop = get_property("Reflexive")
        assert positive_count(prop, 4, symmetry=SymmetryBreaking(), limit=3) >= 3


class TestChooseScope:
    def test_threshold_one_is_scope_one(self):
        # Every property has at least one solution at some small scope.
        prop = get_property("Reflexive")
        assert choose_scope(prop, 1) == 1

    def test_reflexive_paper_scope(self):
        """Reflexive's published scope is 5: the smallest with ≥ 10,000
        symmetry-broken positives — our reconstruction must agree."""
        prop = get_property("Reflexive")
        scope = choose_scope(prop, 10_000, symmetry=SymmetryBreaking())
        assert scope == 5

    def test_antisymmetric_paper_scope(self):
        """Antisymmetric's published scope is likewise 5."""
        prop = get_property("Antisymmetric")
        scope = choose_scope(prop, 10_000, symmetry=SymmetryBreaking())
        assert scope == 5

    @pytest.mark.parametrize(
        "name,paper_nosymbr_count_scope",
        [
            ("Function", 8),       # 90k first reached at scope 8 (8^8)
            ("Transitive", 6),     # A006905(6) = 9.4M ≥ 90k, A006905(5) = 154k... see below
        ],
    )
    def test_no_symbr_scope_consistency(self, name, paper_nosymbr_count_scope):
        """The no-symmetry scope chooser lands at a scope whose closed-form
        count clears the 90k threshold while the previous one does not —
        internal consistency rather than a published-table match (the paper
        prints only the symmetry-broken scope column)."""
        prop = get_property(name)
        scope = paper_scope_no_symbr(prop)
        assert closed_form_count(prop.oracle, scope) >= PAPER_MIN_POSITIVES_NOSYMBR
        assert closed_form_count(prop.oracle, scope - 1) < PAPER_MIN_POSITIVES_NOSYMBR

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            choose_scope(get_property("Reflexive"), 0)

    def test_unreachable_threshold(self):
        with pytest.raises(ValueError):
            choose_scope(get_property("Reflexive"), 10**9, max_scope=2)


class TestExport:
    def _tree(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(200, 4)).astype(float)
        y = (X[:, 0].astype(int) & ~X[:, 3].astype(int)) & 1
        return DecisionTreeClassifier().fit(X, y)

    def test_matrix_feature_names(self):
        assert matrix_feature_names(4) == ["r[0][0]", "r[0][1]", "r[1][0]", "r[1][1]"]
        assert matrix_feature_names(3) == ["x0", "x1", "x2"]

    def test_export_text_structure(self):
        text = export_text(self._tree())
        assert "class:" in text
        assert "<=" in text and ">" in text

    def test_export_dot_is_wellformed(self):
        dot = export_dot(self._tree())
        assert dot.startswith("digraph DecisionTree {")
        assert dot.endswith("}")
        assert dot.count("->") >= 2

    def test_export_rules_match_paths(self):
        tree = self._tree()
        rules = export_rules(tree, label=1)
        positives = [p for p in tree.decision_paths() if p.label == 1]
        assert len(rules) == len(positives)
        assert all(rule.endswith("-> 1") for rule in rules)

    def test_export_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            export_text(DecisionTreeClassifier())
        with pytest.raises(RuntimeError):
            export_dot(DecisionTreeClassifier())

    def test_constant_tree_rule(self):
        X = np.zeros((5, 4))
        y = np.ones(5, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert export_rules(tree, label=1) == ["TRUE -> 1"]
