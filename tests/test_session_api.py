"""Counting API v2 + MCMLSession tests.

Covers the typed request/result layer (`CountRequest`/`CountResult`
round-trips, provenance, precision/budget semantics), the engine's typed
``solve``/``solve_many``/``solve_formula`` path and its bare-int shims,
the disk-persistent compilation memos, the `MCMLSession` facade, and the
CLI surface (``--backend``, ``--list-backends``).
"""

import pickle

import pytest

from repro.core import AccMC, DiffMC, MCMLSession
from repro.counting import (
    ApproxMCCounter,
    CountingEngine,
    CountRequest,
    CountResult,
    EngineConfig,
    EngineStats,
    make_backend,
)
from repro.counting.exact import CounterBudgetExceeded, ExactCounter
from repro.experiments.cli import build_parser, config_from_args, list_backends, main
from repro.spec import get_property, translate


def _cnf(prop="Transitive", scope=3, **kwargs):
    return translate(get_property(prop), scope, **kwargs).cnf


class TestCountRequest:
    def test_round_trip_preserves_signature(self):
        cnf = _cnf()
        request = CountRequest.from_cnf(cnf)
        assert request.cnf().signature() == cnf.signature()
        assert request.signature() == cnf.signature()

    def test_frozen_and_picklable(self):
        request = CountRequest.from_cnf(_cnf())
        with pytest.raises(Exception):
            request.num_vars = 1
        assert pickle.loads(pickle.dumps(request)) == request

    def test_signature_ignores_precision_and_budget(self):
        cnf = _cnf()
        plain = CountRequest.from_cnf(cnf)
        tuned = CountRequest.from_cnf(cnf, precision="exact", budget=10_000)
        assert plain.signature() == tuned.signature()

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            CountRequest.from_cnf(_cnf(), precision="roughly")


class TestTypedSolvePath:
    def test_cold_memo_store_provenance(self, tmp_path):
        cnf = _cnf()
        config = EngineConfig(cache_dir=tmp_path)
        with CountingEngine(config=config) as engine:
            cold = engine.solve(cnf)
            assert isinstance(cold, CountResult)
            assert cold.value == 171
            assert cold.source == "backend" and not cold.cached
            assert cold.exact and cold.backend == "exact"
            assert cold.elapsed_seconds > 0
            warm = engine.solve(cnf)
            assert warm.source == "memo" and warm.cached
            assert warm.value == cold.value
            assert int(warm) == 171
        # A fresh engine on the same cache_dir answers from the disk store.
        with CountingEngine(config=config) as fresh:
            stored = fresh.solve(cnf)
            assert stored.source == "store"
            assert stored.value == 171
            assert fresh.stats.backend_calls == 0

    def test_stats_delta_records_the_call(self):
        engine = CountingEngine()
        result = engine.solve(_cnf())
        assert isinstance(result.stats_delta, EngineStats)
        assert result.stats_delta.count_calls == 1
        assert result.stats_delta.backend_calls == 1
        again = engine.solve(_cnf())
        assert again.stats_delta.backend_calls == 0
        assert again.stats_delta.count_hits == 1

    def test_solve_many_mixed_provenance(self):
        engine = CountingEngine()
        a, b = _cnf("Reflexive"), _cnf("Irreflexive")
        engine.solve(a)
        results = engine.solve_many([a, b, b.copy()])
        assert [r.value for r in results] == engine.count_many([a, b, b])
        assert results[0].source == "memo"
        assert results[1].source == "backend"
        # The in-batch duplicate shares the representative's answer.
        assert results[2].value == results[1].value

    def test_precision_exact_rejected_on_approximate_backend(self):
        engine = CountingEngine(ApproxMCCounter(seed=0))
        request = CountRequest.from_cnf(_cnf(), precision="exact")
        with pytest.raises(ValueError, match="exact precision"):
            engine.solve(request)
        # The exact engine accepts the same request.
        assert CountingEngine().solve(request).value == 171

    def test_budget_overrides_and_restores_max_nodes(self):
        counter = ExactCounter(max_nodes=5_000_000)
        engine = CountingEngine(counter)
        request = CountRequest.from_cnf(
            _cnf("PartialOrder", 4, symmetry=None), budget=3
        )
        with pytest.raises(CounterBudgetExceeded):
            engine.solve(request)
        assert counter.max_nodes == 5_000_000  # restored after the failure
        # Unbudgeted retry succeeds and memoizes.
        value = engine.solve(_cnf("PartialOrder", 4, symmetry=None)).value
        assert value > 0

    def test_worker_pool_honours_request_budgets(self):
        import pickle as _pickle

        from repro.counting.parallel import WorkerPool

        hard = _cnf("PartialOrder", 4, symmetry=None)
        pool = WorkerPool(_pickle.dumps(ExactCounter()), workers=2)
        try:
            with pytest.raises(CounterBudgetExceeded):
                pool.run([CountRequest.from_cnf(hard, budget=2)] * 2)
            # The override is per problem: the pool still counts unbudgeted
            # requests afterwards with the backend default.
            easy = _cnf("Reflexive", 2, symmetry=None)
            values = pool.run([CountRequest.from_cnf(easy), easy])
            assert values[0] == values[1]
        finally:
            pool.close()

    def test_shims_equal_typed_path(self):
        engine = CountingEngine()
        cnf = _cnf("Antisymmetric")
        assert engine.count(cnf) == engine.solve(cnf).value
        assert engine.count_many([cnf]) == [engine.solve(cnf).value]

    def test_solve_formula_memoizes_and_gates(self):
        brute = CountingEngine(make_backend("brute"))
        problem = translate(get_property("Reflexive"), 2)
        first = brute.solve_formula(problem.formula, 4)
        assert first.source == "backend" and first.value == 4
        assert brute.solve_formula(problem.formula, 4).source == "memo"
        with pytest.raises(ValueError, match="count formulas"):
            CountingEngine().solve_formula(problem.formula, 4)


class TestCompilationMemoPersistence:
    def test_translations_warm_from_disk(self, tmp_path):
        prop = get_property("PartialOrder")
        config = EngineConfig(cache_dir=tmp_path)
        with CountingEngine(config=config) as producer:
            compiled = producer.translate(prop, 3, negate=True)
            assert producer.stats.translate_store_hits == 0
        with CountingEngine(config=config) as consumer:
            warmed = consumer.translate(prop, 3, negate=True)
            assert consumer.stats.translate_store_hits == 1
            assert warmed.cnf.signature() == compiled.cnf.signature()
            assert warmed.name == compiled.name
            # The warmed compilation counts identically.
            assert consumer.solve(warmed.cnf).value == producer.solve(compiled.cnf).value

    def test_same_name_different_structure_never_collides(self, tmp_path):
        reflexive = get_property("Reflexive")
        irreflexive = get_property("Irreflexive")
        impostor = type(reflexive)(
            name=reflexive.name,
            formula=irreflexive.formula,
            paper_scope=reflexive.paper_scope,
            repro_scope=reflexive.repro_scope,
            oracle=irreflexive.oracle,
        )
        config = EngineConfig(cache_dir=tmp_path)
        with CountingEngine(config=config) as producer:
            producer.translate(reflexive, 2)
        with CountingEngine(config=config) as consumer:
            compiled = consumer.translate(impostor, 2)
            assert consumer.stats.translate_store_hits == 0  # distinct key
            assert consumer.solve(compiled.cnf).value == 4  # irreflexive count

    def test_regions_warm_from_disk(self, tmp_path):
        session = MCMLSession(cache_dir=tmp_path)
        dataset = session.pipeline.make_dataset("PartialOrder", 3)
        train, _ = dataset.split(0.5, rng=0)
        tree = session.pipeline.train("DT", train)
        paths = tree.decision_paths()
        region = session.engine.region(paths, 1, 9)
        session.close()
        with CountingEngine(config=EngineConfig(cache_dir=tmp_path)) as consumer:
            warmed = consumer.region(paths, 1, 9)
            assert consumer.stats.region_store_hits == 1
            assert warmed.signature() == region.signature()

    def test_memo_store_active_for_approximate_backends(self, tmp_path):
        config = EngineConfig(cache_dir=tmp_path)
        prop = get_property("Connex")
        with CountingEngine(ApproxMCCounter(seed=0), config=config) as producer:
            assert producer.store is None  # estimates are never persisted
            producer.translate(prop, 2)
        with CountingEngine(ApproxMCCounter(seed=0), config=config) as consumer:
            consumer.translate(prop, 2)
            assert consumer.stats.translate_store_hits == 1


class TestMCMLSession:
    def test_accmc_matches_direct_evaluator(self):
        with MCMLSession(seed=0) as session:
            dataset = session.pipeline.make_dataset("PartialOrder", 3)
            train, _ = dataset.split(0.10, rng=1)
            tree = session.pipeline.train("DT", train)
            via_session = session.accmc(tree, "PartialOrder", 3)
            direct = AccMC(mode="derived").evaluate(
                tree, AccMC().ground_truth(get_property("PartialOrder"), 3)
            )
            assert via_session.counts == direct.counts
            assert via_session.counter == "exact"

    def test_diffmc_and_bnnmc_share_the_engine(self):
        with MCMLSession(seed=0) as session:
            dataset = session.pipeline.make_dataset("Reflexive", 3)
            train, _ = dataset.split(0.5, rng=0)
            first = session.pipeline.train("DT", train)
            second = session.pipeline.train("DT", train, max_depth=2)
            diff = session.diffmc(first, second)
            assert diff.tt + diff.tf + diff.ft + diff.ff == 1 << 9
            direct = DiffMC(engine=session.engine).evaluate(first, second)
            assert (diff.tt, diff.tf, diff.ft, diff.ff) == (
                direct.tt, direct.tf, direct.ft, direct.ff,
            )

    def test_backend_selection_and_passthroughs(self):
        from repro.logic.cnf import CNF

        with MCMLSession(backend="brute") as session:
            assert session.backend_name == "brute"
            assert session.capabilities.counts_formulas
            # An auxiliary-free CNF (brute rejects Tseitin auxiliaries):
            # x1 ∧ x2 over 4 projected vars -> 2 free vars -> 4 models.
            cnf = CNF([(1,), (2,)], num_vars=4, projection=range(1, 5))
            assert session.count(cnf) == 4
            assert session.solve(cnf).source == "memo"  # warmed by count()

    def test_table_dispatch(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(properties=("Reflexive",), scope=3, counter="brute")
        with MCMLSession(backend="brute") as session:
            text = session.table(9, config=config)
            assert "Table 9" in text
            with pytest.raises(ValueError, match="unknown table"):
                session.table(12)

    def test_close_is_idempotent(self):
        session = MCMLSession()
        session.close()
        session.close()


class TestCLISurface:
    def test_list_backends_flag(self, capsys):
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("exact", "legacy", "brute", "bdd", "compiled", "approxmc"):
            assert name in out
        # One column per declared capability flag.
        for column in (
            "exact", "formulas", "projection", "parallel", "components", "cubes",
        ):
            assert column in out

    def test_backend_flag_flows_into_config(self):
        args = build_parser().parse_args(["table9", "--backend", "legacy"])
        assert config_from_args(args).counter == "legacy"
        # --counter stays as the deprecated alias.
        args = build_parser().parse_args(["table9", "--counter", "brute"])
        assert config_from_args(args).counter == "brute"

    def test_listing_renders_every_backend(self):
        text = list_backends()
        assert "vector" in text and "approx" in text and "circuit" in text
        # The compiled row declares cube conditioning; bdd's does not.
        compiled_row = next(l for l in text.splitlines() if "compiled" in l)
        bdd_row = next(l for l in text.splitlines() if " bdd " in f" {l} ")
        assert compiled_row.split()[1:-1].count("yes") >= 2
        assert bdd_row.rstrip().endswith("-")

    def test_backend_runs_end_to_end(self, capsys):
        # Fast end-to-end runs for non-default backends: the legacy exact
        # counter drives Table 9, the OBDD backend drives Table 8 (its
        # region CNFs are auxiliary-free, the one shape bdd serves).
        assert main(["table9", "--scope", "3", "--backend", "legacy"]) == 0
        assert "Table 9" in capsys.readouterr().out
        assert (
            main(
                [
                    "table8", "--scope", "3", "--backend", "bdd",
                    "--properties", "Reflexive",
                ]
            )
            == 0
        )
        assert "Table 8" in capsys.readouterr().out
