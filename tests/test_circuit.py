"""The ``compiled`` backend: circuit kernel, engine conditioning, circuit tier.

Four layers, mirroring the compile-once-query-forever stack:

* the :mod:`repro.counting.circuit` kernel — differential model counting
  and unit-cube conditioning against brute force, the node-budget
  boundary (the historical off-by-one allowed ``max_nodes + 1`` nodes),
  deadline aborts and pickle fidelity;
* the backend matrix — ``compiled`` vs ``exact`` bit-identity over a
  16-property × scope 2–4 grid of auxiliary-free CNFs (one deterministic
  cell per property/scope) plus real decision-tree regions;
* the engine — per-path requests answered by conditioning one cached
  circuit (``source="circuit"``), bit-identical to the conjunction
  expansion, with budget/deadline aborts surfacing as typed failures and
  the degradation ladder still applying;
* the :class:`~repro.counting.store.CircuitStore` tier — a warm restart
  answers a known sweep with zero compilations and zero backend calls.
"""

import pickle
import random
import zlib

import pytest

from repro.core.diffmc import DiffMC
from repro.core.tree2cnf import label_cubes, label_region_cnf
from repro.counting import (
    Circuit,
    CircuitBuilder,
    CompiledCounter,
    CounterBudgetExceeded,
    CounterTimeout,
    CountingEngine,
    EngineConfig,
    brute_force_count,
    compile_cnf,
    compiled_count,
    make_backend,
)
from repro.counting.api import CountFailure, CountRequest
from repro.logic.cnf import CNF
from repro.spec.properties import PROPERTIES


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> CNF:
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, min(3, num_vars))
        chosen = rng.sample(range(1, num_vars + 1), width)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in chosen))
    return CNF(
        num_vars=num_vars,
        clauses=clauses,
        projection=tuple(range(1, num_vars + 1)),
    )


def _random_cube(rng: random.Random, num_vars: int) -> tuple[int, ...]:
    width = rng.randint(0, num_vars)
    chosen = rng.sample(range(1, num_vars + 1), width)
    return tuple(v if rng.random() < 0.5 else -v for v in chosen)


def _conjoin_cube(cnf: CNF, cube: tuple[int, ...]) -> CNF:
    return CNF(
        num_vars=cnf.num_vars,
        clauses=list(cnf.clauses) + [(lit,) for lit in cube],
        projection=cnf.projection,
    )


class TestCircuitKernel:
    def test_model_count_matches_brute_force(self):
        rng = random.Random(11)
        for _ in range(60):
            num_vars = rng.randint(1, 8)
            cnf = _random_cnf(rng, num_vars, rng.randint(1, 2 * num_vars))
            assert compile_cnf(cnf).model_count() == brute_force_count(cnf)

    def test_conditioning_matches_brute_forced_conjunction(self):
        rng = random.Random(23)
        for _ in range(40):
            num_vars = rng.randint(2, 8)
            cnf = _random_cnf(rng, num_vars, rng.randint(1, 2 * num_vars))
            circuit = compile_cnf(cnf)
            for _ in range(4):
                cube = _random_cube(rng, num_vars)
                expected = brute_force_count(_conjoin_cube(cnf, cube))
                assert circuit.condition(cube) == expected

    def test_empty_cube_is_the_model_count(self):
        cnf = _random_cnf(random.Random(3), 6, 9)
        circuit = compile_cnf(cnf)
        assert circuit.condition(()) == circuit.model_count()

    def test_contradictory_cube_counts_zero(self):
        circuit = compile_cnf(_random_cnf(random.Random(4), 5, 6))
        assert circuit.condition((2, -2)) == 0

    def test_foreign_cube_variable_raises(self):
        circuit = compile_cnf(_random_cnf(random.Random(5), 4, 5))
        with pytest.raises(ValueError, match="not among the circuit"):
            circuit.condition((99,))

    def test_unsatisfiable_cnf_conditions_to_zero(self):
        cnf = CNF(num_vars=2, clauses=[(1,), (-1,)], projection=(1, 2))
        circuit = compile_cnf(cnf)
        assert circuit.model_count() == 0
        assert circuit.condition((2,)) == 0

    def test_auxiliary_variables_are_rejected(self):
        cnf = CNF(num_vars=3, clauses=[(1, 3)], projection=(1, 2))
        with pytest.raises(ValueError, match="auxiliary-free"):
            compile_cnf(cnf)

    def test_pickle_round_trip_preserves_queries(self):
        rng = random.Random(17)
        cnf = _random_cnf(rng, 7, 12)
        circuit = compile_cnf(cnf)
        clone = pickle.loads(pickle.dumps(circuit))
        assert isinstance(clone, Circuit)
        assert clone.model_count() == circuit.model_count()
        for _ in range(5):
            cube = _random_cube(rng, 7)
            assert clone.condition(cube) == circuit.condition(cube)

    def test_node_budget_is_a_hard_ceiling(self):
        """The boundary fix: the table never holds more than ``max_nodes``
        nodes (the historical ``>`` check admitted ``max_nodes + 1``)."""
        builder = CircuitBuilder(num_levels=8, max_nodes=3)
        assert builder.literal(0, True) == 2  # ids 0/1 are the terminals
        assert len(builder.level) == builder.max_nodes
        with pytest.raises(CounterBudgetExceeded):
            builder.literal(1, True)
        assert len(builder.level) == builder.max_nodes

    def test_budget_abort_through_compile_cnf(self):
        cnf = _random_cnf(random.Random(29), 8, 14)
        baseline = compile_cnf(cnf).node_count
        with pytest.raises(CounterBudgetExceeded):
            compile_cnf(cnf, max_nodes=baseline - 1)
        # At the exact size the compilation goes through.
        assert compile_cnf(cnf, max_nodes=baseline).model_count() == \
            compile_cnf(cnf).model_count()

    def test_deadline_abort_during_construction(self):
        # An already-expired deadline trips at the first wall-clock probe
        # (every 256 node creations), so give the builder enough distinct
        # nodes to reach one.
        builder = CircuitBuilder(num_levels=600, max_nodes=10**6, deadline=1e-9)
        with pytest.raises(CounterTimeout):
            for level in range(600):
                builder.literal(level, True)


#: A 300-variable implication chain: its OBDD has ≥ one node per level, so
#: compilation is guaranteed to cross the 256-node deadline probe.
_CHAIN = CNF(
    num_vars=300,
    clauses=[(i, i + 1) for i in range(1, 300)],
    projection=tuple(range(1, 301)),
)


class TestCompiledBackend:
    def test_registered_and_aliased(self):
        backend = make_backend("compiled")
        assert isinstance(backend, CompiledCounter)
        assert type(make_backend("circuit")) is CompiledCounter
        caps = backend.capabilities
        assert caps.conditions_cubes and caps.exact and caps.parallel_safe
        assert not caps.supports_projection

    def test_one_shot_helper(self):
        cnf = _random_cnf(random.Random(31), 6, 10)
        assert compiled_count(cnf) == brute_force_count(cnf)

    def test_backend_deadline_attribute_aborts(self):
        backend = CompiledCounter(deadline=1e-9)
        with pytest.raises(CounterTimeout):
            backend.count(_CHAIN)

    @pytest.mark.parametrize("scope", (2, 3, 4))
    @pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.name)
    def test_matrix_bit_identity_against_exact(self, prop, scope):
        """16 properties × scopes 2–4: one deterministic auxiliary-free
        CNF per cell (the ``compiled`` column of the conformance matrix —
        the property CNFs themselves carry Tseitin auxiliaries, which
        this backend rejects by contract), counted bit-identically by
        ``compiled``, ``exact`` and conditioning."""
        rng = random.Random(zlib.crc32(f"{prop.name}:{scope}".encode()))
        num_vars = scope * scope
        cnf = _random_cnf(rng, num_vars, 2 * num_vars)
        expected = make_backend("exact").count(cnf)
        circuit = make_backend("compiled").compile(cnf)
        assert make_backend("compiled").count(cnf) == expected
        assert circuit.model_count() == expected
        cube = _random_cube(rng, num_vars)
        assert circuit.condition(cube) == make_backend("exact").count(
            _conjoin_cube(cnf, cube)
        )


@pytest.fixture(scope="module")
def trees():
    """Two small fitted decision trees over the same 8 binary features."""
    import numpy as np

    from repro.ml.decision_tree import DecisionTreeClassifier

    rng = np.random.default_rng(19)
    X = rng.integers(0, 2, size=(150, 8))
    y1 = ((X[:, 0] & X[:, 1]) | X[:, 2]).astype(int)
    y2 = (X[:, 0] | (X[:, 3] & X[:, 4])).astype(int)
    first = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y1)
    second = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y2)
    return first, second


def _per_path_request(base: CNF, cubes, **limits) -> CountRequest:
    return CountRequest.from_cnf(base, strategy="per-path", cubes=cubes, **limits)


class TestEngineConditioning:
    def _region_problem(self, trees):
        first, second = trees
        base = label_region_cnf(first.decision_paths(), 1, 8)
        cubes = label_cubes(second.decision_paths(), 1, 8)
        return base, cubes

    def test_conditioning_is_bit_identical_to_conjunction(self, trees):
        base, cubes = self._region_problem(trees)
        request = _per_path_request(base, cubes)
        with CountingEngine(make_backend("exact"), EngineConfig(workers=1)) as ref:
            expected = ref.solve(request).value
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1)
        ) as engine:
            result = engine.solve(request)
            assert result.value == expected
            assert result.exact
            assert result.source == "circuit"
            assert not result.cached  # conditioning is work, not a lookup
            assert engine.stats.circuit_compilations == 1
            assert engine.stats.circuit_hits > 0
            assert engine.stats.backend_calls == 0

    def test_repeated_sweeps_reuse_the_in_process_circuit(self, trees):
        base, cubes = self._region_problem(trees)
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1)
        ) as engine:
            first = engine.solve(_per_path_request(base, cubes)).value
            # Same base, different region: conditioned, not recompiled.
            more = tuple(tuple(-l for l in cube) for cube in cubes[:2])
            engine.solve(_per_path_request(base, more))
            assert engine.solve(_per_path_request(base, cubes)).value == first
            assert engine.stats.circuit_compilations == 1
            assert engine.stats.backend_calls == 0

    def test_budget_abort_surfaces_as_typed_failure(self, trees):
        base, cubes = self._region_problem(trees)
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1)
        ) as engine:
            outcome = engine.solve(
                _per_path_request(base, cubes, budget=3), on_failure="return"
            )
            assert isinstance(outcome, CountFailure)
            assert outcome.kind == "budget"
            with pytest.raises(CounterBudgetExceeded):
                engine.solve(_per_path_request(base, cubes, budget=3))

    def test_deadline_abort_surfaces_as_typed_failure(self):
        cubes = ((1,), (-1, 2))
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1)
        ) as engine:
            outcome = engine.solve(
                _per_path_request(_CHAIN, cubes, deadline=1e-9),
                on_failure="return",
            )
            assert isinstance(outcome, CountFailure)
            assert outcome.kind == "timeout"

    def test_degradation_ladder_reroutes_compile_aborts(self, trees):
        base, cubes = self._region_problem(trees)
        with CountingEngine(make_backend("exact"), EngineConfig(workers=1)) as ref:
            expected = ref.solve(_per_path_request(base, cubes)).value
        with CountingEngine(
            make_backend("compiled"),
            EngineConfig(workers=1, fallback="exact"),
        ) as engine:
            result = engine.solve(_per_path_request(base, cubes, budget=3))
            assert result.value == expected
            assert result.source == "fallback"
            assert engine.stats.fallbacks == len(cubes)

    def test_non_conditioning_exact_backends_still_serve_per_path(self, trees):
        base, cubes = self._region_problem(trees)
        values = set()
        for name in ("exact", "compiled", "bdd", "legacy"):
            with CountingEngine(
                make_backend(name), EngineConfig(workers=1)
            ) as engine:
                values.add(engine.solve(_per_path_request(base, cubes)).value)
        assert len(values) == 1


class TestCircuitStoreTier:
    def test_warm_restart_conditions_without_recompiling(self, trees, tmp_path):
        base, cubes = self._sweep(trees)
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1, cache_dir=tmp_path)
        ) as cold:
            expected = cold.solve(_per_path_request(base, cubes)).value
            assert cold.stats.circuit_compilations == 1
        # Conditioned sub-counts are never persisted as whole counts (the
        # circuit is the persistent artifact), so the restart re-answers
        # every cube from the warmed circuit — zero compilations, zero
        # backend counts, zero count-store hits.
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1, cache_dir=tmp_path)
        ) as warm:
            assert warm.solve(_per_path_request(base, cubes)).value == expected
            assert warm.stats.circuit_store_hits == 1
            assert warm.stats.circuit_compilations == 0
            assert warm.stats.backend_calls == 0
            assert warm.stats.store_hits == 0
            assert warm.stats.circuit_hits == len(set(cubes))

    def test_circuit_store_knob_opts_out(self, trees, tmp_path):
        base, cubes = self._sweep(trees)
        config = EngineConfig(workers=1, cache_dir=tmp_path, circuit_store=False)
        with CountingEngine(make_backend("compiled"), config) as engine:
            engine.solve(_per_path_request(base, cubes))
            assert engine.circuit_store is None
        assert not (tmp_path / "circuits.sqlite").exists()

    def test_non_conditioning_backends_get_no_circuit_store(self, tmp_path):
        with CountingEngine(
            make_backend("exact"), EngineConfig(workers=1, cache_dir=tmp_path)
        ) as engine:
            assert engine.circuit_store is None

    def _sweep(self, trees):
        first, second = trees
        base = label_region_cnf(first.decision_paths(), 1, 8)
        cubes = label_cubes(second.decision_paths(), 0, 8)
        return base, cubes


class TestDiffMCPerPath:
    def test_per_path_is_bit_identical_across_backends(self, trees):
        first, second = trees
        conjunction = DiffMC(counter=make_backend("exact")).evaluate(first, second)
        for name in ("exact", "compiled"):
            per_path = DiffMC(
                counter=make_backend(name), region_strategy="per-path"
            ).evaluate(first, second)
            assert (per_path.tt, per_path.tf, per_path.ft, per_path.ff) == (
                conjunction.tt,
                conjunction.tf,
                conjunction.ft,
                conjunction.ff,
            )

    def test_two_circuits_serve_all_four_counts(self, trees):
        first, second = trees
        with CountingEngine(
            make_backend("compiled"), EngineConfig(workers=1)
        ) as engine:
            DiffMC(engine=engine, region_strategy="per-path").evaluate(first, second)
            assert engine.stats.circuit_compilations == 2
            assert engine.stats.backend_calls == 0

    def test_unknown_region_strategy_rejected(self):
        with pytest.raises(ValueError, match="region strategy"):
            DiffMC(region_strategy="sideways")
