"""Sharding suite: the consistent-hash counting cluster (PR 9).

Covers, in-process (daemon-subprocess kills live in
``scripts/service_smoke.py``):

* partitioning — ``ShardedClient`` keys every request on its canonical
  signature, so ownership is deterministic, stable across client
  instances, and spread over the shards;
* bit-identity — a 2-shard ``count_many`` equals a single daemon and a
  local counter, problem for problem;
* store exclusivity — each request signature's ``counts.sqlite`` row
  lands on exactly the owning shard's cache dir, never duplicated across
  live shards (the warm tiers stay disjoint), including after failover;
* rehash-failover — a shard killed mid-batch loses only its unanswered
  positions, which rehash onto the survivor and complete the batch;
  typed counting failures are *not* failover events;
* aggregation — ``stats()`` sums engine/service counters across shards;
* client-side chunking — ``ServiceClient.solve_many`` splits batches
  under the daemon's line ceiling instead of earning a blanket
  ``oversized`` rejection.
"""

import threading
import time
from contextlib import contextmanager

import pytest

from repro.counting.api import CountFailure, CountRequest
from repro.counting.exact import ExactCounter
from repro.counting.service import CountingServer, ServiceClient, ShardedClient
from repro.counting.service.client import ServiceUnavailable
from repro.counting.store import CountStore, signature_key
from repro.experiments.config import ExperimentConfig
from repro.logic import CNF
from repro.spec import SymmetryBreaking, get_property, translate

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

PROPERTY_NAMES = (
    "Reflexive",
    "Irreflexive",
    "Transitive",
    "Antisymmetric",
    "Connex",
    "PartialOrder",
)


def property_requests(scope: int = 3) -> list[CountRequest]:
    return [
        CountRequest.from_cnf(
            translate(get_property(name), scope, symmetry=SymmetryBreaking()).cnf
        )
        for name in PROPERTY_NAMES
    ]


@contextmanager
def running_shards(tmp_path, n: int, **server_kwargs):
    """N started daemons, each over its own ``shard-i`` cache dir."""
    servers: list[CountingServer] = []
    runners: list[threading.Thread] = []
    shards: list[tuple[str, int]] = []
    try:
        for i in range(n):
            config = ExperimentConfig(cache_dir=str(tmp_path / f"shard-{i}"))
            server = CountingServer(config.session(), port=0, **server_kwargs)
            host, port = server.start()
            runner = threading.Thread(target=server.serve_until_drained, daemon=True)
            runner.start()
            servers.append(server)
            runners.append(runner)
            shards.append((host, port))
        yield servers, shards
    finally:
        for server in servers:
            server.initiate_drain("test teardown")
        for runner in runners:
            runner.join(timeout=30)
        for server in servers:
            # A shard abruptly close()d mid-test never drains; make the
            # teardown idempotent either way.
            server.close()


def store_value(tmp_path, shard_index: int, request: CountRequest):
    """The shard's persisted count row for this request, or None."""
    store = CountStore(tmp_path / f"shard-{shard_index}")
    try:
        return store.get(signature_key(request.signature()))
    finally:
        store.close()


class TestPartitioning:
    def test_ownership_is_deterministic_and_spread(self, tmp_path):
        # 18 distinct signatures: the odds of a 64-replica ring putting
        # them all on one of two shards are ~2^-17 — spread is effectively
        # guaranteed without pinning ports.
        requests = [
            CountRequest.from_cnf(
                translate(
                    get_property(name), scope, symmetry=SymmetryBreaking()
                ).cnf
            )
            for name in PROPERTY_NAMES
            for scope in (2, 3, 4)
        ]
        with running_shards(tmp_path, 2) as (_, shards):
            with ShardedClient(shards) as first, ShardedClient(shards) as second:
                owners = [first.shard_for(r) for r in requests]
                assert owners == [second.shard_for(r) for r in requests]
                assert set(owners) == set(shards)

    def test_rejects_empty_and_duplicate_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedClient([])
        with pytest.raises(ValueError, match="duplicate"):
            ShardedClient([("h", 1), ("h", 1)])

    def test_empty_batch(self, tmp_path):
        with running_shards(tmp_path, 2) as (_, shards):
            with ShardedClient(shards) as cluster:
                assert cluster.solve_many([]) == []


class TestBitIdentity:
    def test_two_shard_count_many_matches_single_daemon(self, tmp_path):
        requests = property_requests()
        local = ExactCounter()
        truths = [local.count(r.cnf()) for r in requests]
        with running_shards(tmp_path, 1) as (_, single_shards):
            with ServiceClient(*single_shards[0]) as single:
                single_values = [
                    r.value for r in single.solve_many(requests)
                ]
        with running_shards(tmp_path, 2) as (_, shards):
            with ShardedClient(shards) as cluster:
                cluster_values = cluster.count_many(requests)
        assert cluster_values == single_values == truths

    def test_store_rows_land_on_exactly_one_shard(self, tmp_path):
        requests = property_requests()
        with running_shards(tmp_path, 2) as (_, shards):
            with ShardedClient(shards) as cluster:
                cluster.count_many(requests)
                owners = [cluster.shard_for(r) for r in requests]
        for request, owner in zip(requests, owners):
            rows = {
                i: store_value(tmp_path, i, request)
                for i in range(2)
            }
            owner_index = shards.index(owner)
            assert rows[owner_index] == ExactCounter().count(request.cnf())
            assert rows[1 - owner_index] is None


class TestFailover:
    def test_kill_one_shard_mid_batch_completes_on_survivor(self, tmp_path):
        requests = property_requests()
        truths = [ExactCounter().count(r.cnf()) for r in requests]
        with running_shards(tmp_path, 2) as (servers, shards):
            with ShardedClient(shards, retries=1, backoff_base=0.01) as cluster:
                # Warm pass: both shards answer their own key ranges.
                assert cluster.count_many(requests) == truths
                # Kill whichever shard owns the first request, so at least
                # one position is guaranteed to rehash (the ring's split
                # depends on the ephemeral ports).
                victim = cluster.shard_for(requests[0])
                victim_index = shards.index(victim)
                survivor_index = 1 - victim_index
                servers[victim_index].close()  # abrupt: no drain
                # The dead shard's positions rehash onto the survivor and
                # the batch still completes bit-identically.
                assert cluster.count_many(requests) == truths
                assert cluster.failovers == 1
                assert cluster.failed_shards == [victim]
                assert cluster.ping()["live"] == 1
                # Rehashed signatures now own rows on the survivor: every
                # request's row sits on its *current* owner.
                for request in requests:
                    owner_index = shards.index(cluster.shard_for(request))
                    assert owner_index == survivor_index
                    assert (
                        store_value(tmp_path, survivor_index, request)
                        is not None
                    )

    def test_all_shards_dead_raises_unavailable(self, tmp_path):
        requests = property_requests()[:2]
        with running_shards(tmp_path, 2) as (servers, shards):
            with ShardedClient(shards, retries=0, backoff_base=0.01) as cluster:
                for server in servers:
                    server.close()
                with pytest.raises(ServiceUnavailable, match="shards failed"):
                    cluster.count_many(requests)

    def test_typed_failures_do_not_fail_over(self, tmp_path):
        """A deterministic budget failure surfaces; the shard stays live."""
        hard = CountRequest.from_cnf(
            translate(get_property("PartialOrder"), 4).cnf, budget=10
        )
        with running_shards(tmp_path, 2) as (_, shards):
            with ShardedClient(shards) as cluster:
                outcome = cluster.solve(hard, on_failure="return")
                assert isinstance(outcome, CountFailure)
                assert outcome.kind == "budget"
                assert cluster.failovers == 0
                assert cluster.ping()["live"] == 2


class TestReadmission:
    def test_restarted_shard_rejoins_after_cooldown(self, tmp_path):
        requests = property_requests()
        truths = [ExactCounter().count(r.cnf()) for r in requests]
        with running_shards(tmp_path, 2) as (servers, shards):
            with ShardedClient(
                shards, retries=1, backoff_base=0.01, readmit_after=0.05
            ) as cluster:
                assert cluster.count_many(requests) == truths
                victim = cluster.shard_for(requests[0])
                victim_index = shards.index(victim)
                servers[victim_index].close()  # abrupt: no drain
                assert cluster.count_many(requests) == truths
                assert cluster.ping()["live"] == 1
                # Restart the shard on its old address, wait out the
                # cooldown: the next verb probes, readmits, and ownership
                # snaps back to the original ring.
                config = ExperimentConfig(
                    cache_dir=str(tmp_path / f"shard-{victim_index}")
                )
                revived = CountingServer(
                    config.session(), host=victim[0], port=victim[1]
                )
                revived.start()
                runner = threading.Thread(
                    target=revived.serve_until_drained, daemon=True
                )
                runner.start()
                try:
                    time.sleep(0.06)
                    assert cluster.count_many(requests) == truths
                    assert cluster.readmissions == 1
                    assert cluster.ping()["live"] == 2
                    assert cluster.shard_for(requests[0]) == victim
                    # failed_shards is a history log, not live membership.
                    assert cluster.failed_shards == [victim]
                finally:
                    revived.initiate_drain("test teardown")
                    runner.join(timeout=30)
                    revived.close()

    def test_failed_probe_restarts_the_cooldown(self, tmp_path):
        requests = property_requests()[:2]
        with running_shards(tmp_path, 2) as (servers, shards):
            with ShardedClient(
                shards,
                retries=0,
                backoff_base=0.01,
                readmit_after=0.05,
                probe_timeout=0.2,
            ) as cluster:
                cluster.count_many(requests)
                victim = cluster.shard_for(requests[0])
                servers[shards.index(victim)].close()
                cluster.count_many(requests)  # failover marks it dead
                time.sleep(0.06)
                # Past the cooldown but the shard is still down: the probe
                # fails, nothing is readmitted, and the cluster keeps
                # serving on the survivor.
                assert cluster.count_many(requests) == [
                    ExactCounter().count(r.cnf()) for r in requests
                ]
                assert cluster.readmissions == 0
                assert cluster.ping()["live"] == 1

    def test_no_cooldown_means_dead_shards_stay_dead(self, tmp_path):
        requests = property_requests()[:2]
        with running_shards(tmp_path, 2) as (servers, shards):
            with ShardedClient(shards, retries=0, backoff_base=0.01) as cluster:
                cluster.count_many(requests)
                victim = cluster.shard_for(requests[0])
                servers[shards.index(victim)].close()
                cluster.count_many(requests)
                time.sleep(0.06)
                cluster.ping()
                assert cluster.readmissions == 0
                assert cluster.ping()["live"] == 1


class TestAggregation:
    def test_stats_sum_engine_counters_across_shards(self, tmp_path):
        requests = property_requests()
        with running_shards(tmp_path, 2) as (_, shards):
            with ShardedClient(shards) as cluster:
                cluster.count_many(requests)
                owner_count = len({cluster.shard_for(r) for r in requests})
                # Counters bump after the response line; give them a beat.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    payload = cluster.stats()
                    totals = payload["aggregated"]
                    if (
                        totals["engine"]["backend_calls"] >= len(requests)
                        and totals["service"]["served"] >= owner_count
                    ):
                        break
                    time.sleep(0.01)
                assert payload["live"] == 2
                assert payload["failovers"] == 0
                assert payload["aggregated"]["engine"]["backend_calls"] == len(
                    requests
                )
                assert payload["aggregated"]["service"]["served"] == owner_count
                assert set(payload["shards"]) == {
                    f"{host}:{port}" for host, port in shards
                }
                # The CountingSurface shape: summed engine counters are
                # also the top-level "engine" block, like every surface.
                assert payload["engine"] == payload["aggregated"]["engine"]
                assert payload["readmissions"] == 0


class TestClientChunking:
    def test_chunks_preserve_order_and_budget(self):
        client = ServiceClient("127.0.0.1", 1, max_line_bytes=600)
        payloads = [{"clauses": [[i]] * 8, "num_vars": i} for i in range(40)]
        chunks = client._chunk_requests(payloads)
        assert [p for chunk in chunks for p in chunk] == payloads
        assert len(chunks) > 1
        import json

        for chunk in chunks:
            line = json.dumps(chunk, separators=(",", ":"))
            assert len(line) <= client.max_line_bytes

    def test_single_oversized_request_ships_alone(self):
        client = ServiceClient("127.0.0.1", 1, max_line_bytes=600)
        big = {"clauses": [[1, 2]] * 200, "num_vars": 2}
        chunks = client._chunk_requests([{"num_vars": 1}, big, {"num_vars": 2}])
        assert [len(c) for c in chunks] == [1, 1, 1]

    def test_large_batch_crosses_a_small_line_ceiling(self, tmp_path):
        """Unchunked, this batch is one oversized line the daemon rejects;
        chunked, it just works."""
        ceiling = 4096
        cnfs = []
        for i in range(120):
            cnf = CNF(num_vars=8)
            cnf.add_clause(tuple(range(1, 8)))
            cnf.add_clause((-(i % 8 + 1),))
            cnf.add_clause((i % 7 + 2,))
            cnfs.append(cnf)
        requests = [CountRequest.from_cnf(c) for c in cnfs]
        import json

        whole = json.dumps(
            [r.to_dict() for r in requests], separators=(",", ":")
        )
        assert len(whole) > ceiling  # the satellite's premise
        truths = [ExactCounter().count(c) for c in cnfs]
        config = ExperimentConfig(cache_dir=str(tmp_path / "shard-0"))
        server = CountingServer(
            config.session(), port=0, max_line_bytes=ceiling
        )
        host, port = server.start()
        runner = threading.Thread(target=server.serve_until_drained, daemon=True)
        runner.start()
        try:
            with ServiceClient(host, port, max_line_bytes=ceiling) as client:
                values = [r.value for r in client.solve_many(requests)]
            assert values == truths
        finally:
            server.initiate_drain("test teardown")
            runner.join(timeout=30)
