"""Intra-problem component fan-out (PR 10).

Covers the second tentpole leg: a *single* hard problem whose component
split yields two or more nontrivial components ships through the engine's
worker pool and the sub-counts multiply back together:

* ``ExactCounter.decompose`` — the split invariant
  ``count(cnf) == multiplier * prod(count(sub))`` holds bit-exactly, the
  sub-CNFs come back canonically renumbered (structurally identical
  components share one signature), and non-decomposable inputs return
  ``None`` so callers fall through to a plain count;
* the engine's fan-out — bit-identical to the serial count, observable in
  ``EngineStats.component_fanouts`` / ``fanout_subproblems``, off by
  default, and confined to capability-eligible backends;
* robustness — a SIGKILLed worker mid-fan-out neither hangs nor drifts:
  the pool respawns, retries the lost component, and the merged product
  still equals the serial count.
"""

import signal as _signal
from contextlib import contextmanager

import pytest

from repro.counting import CountingEngine, EngineConfig, ExactCounter
from repro.counting import faults
from repro.counting.api import make_backend
from repro.logic import CNF
from repro.spec import SymmetryBreaking, get_property, translate

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


@contextmanager
def hard_timeout(seconds: int):
    """A SIGALRM backstop: a hang is a loud failure, not a stuck CI job."""

    def on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded {seconds}s hard timeout")

    previous = _signal.signal(_signal.SIGALRM, on_alarm)
    _signal.alarm(seconds)
    try:
        yield
    finally:
        _signal.alarm(0)
        _signal.signal(_signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def antisymmetric(scope: int) -> CNF:
    """The canonical fan-out donor: C(scope, 2) independent 2-var components."""
    return translate(get_property("Antisymmetric"), scope).cnf


class TestDecompose:
    def test_split_invariant_holds_bit_exactly(self):
        counter = ExactCounter()
        for scope in (3, 4, 5):
            cnf = antisymmetric(scope)
            split = counter.decompose(cnf)
            assert split is not None
            multiplier, subs = split
            assert len(subs) >= 2
            product = multiplier
            for sub in subs:
                product *= counter.count(sub)
            assert product == counter.count(cnf)

    def test_identical_components_share_one_canonical_form(self):
        # Antisymmetry is the same 2-var constraint over every index pair;
        # canonical renumbering must collapse them onto one signature.
        _, subs = ExactCounter().decompose(antisymmetric(4))
        first = subs[0]
        assert all(
            (sub.num_vars, tuple(sub.clauses)) == (first.num_vars, tuple(first.clauses))
            for sub in subs
        )

    def test_connected_problems_do_not_split(self):
        # PartialOrder couples every variable through transitivity: one
        # component, so decompose declines and the caller counts plainly.
        counter = ExactCounter()
        cnf = translate(
            get_property("PartialOrder"), 3, symmetry=SymmetryBreaking()
        ).cnf
        assert counter.decompose(cnf) is None

    def test_trivial_and_solved_problems_do_not_split(self):
        counter = ExactCounter()
        assert counter.decompose(CNF(num_vars=2, clauses=[()])) is None
        # Unit propagation solves this outright — nothing left to ship.
        assert counter.decompose(CNF(num_vars=2, clauses=[(1,), (2,)])) is None

    def test_min_component_vars_gates_the_split(self):
        cnf = antisymmetric(4)
        counter = ExactCounter()
        assert counter.decompose(cnf, min_component_vars=2) is not None
        # Every component has exactly 2 variables; demanding 3 finds no
        # nontrivial component, so the split is not worth shipping.
        assert counter.decompose(cnf, min_component_vars=3) is None


class TestEngineFanout:
    def test_fanout_bit_identical_to_serial_with_stats(self):
        cnf = antisymmetric(5)
        serial = ExactCounter().count(cnf)
        with CountingEngine(
            ExactCounter(), config=EngineConfig(workers=2, fanout_min_vars=2)
        ) as engine:
            with hard_timeout(120):
                result = engine.solve(cnf)
            assert result.value == serial
            assert engine.stats.component_fanouts == 1
            # C(5, 2) = 10 antisymmetry pairs, each its own component.
            assert engine.stats.fanout_subproblems == 10

    def test_fanout_off_by_default(self):
        cnf = antisymmetric(4)
        with CountingEngine(
            ExactCounter(), config=EngineConfig(workers=2)
        ) as engine:
            engine.solve(cnf)
            assert engine.stats.component_fanouts == 0

    def test_fanout_requires_workers(self):
        # fanout_min_vars without a pool is a no-op, not an error: the
        # knob means "ship components to workers", and there are none.
        cnf = antisymmetric(4)
        serial = ExactCounter().count(cnf)
        with CountingEngine(
            ExactCounter(), config=EngineConfig(workers=1, fanout_min_vars=2)
        ) as engine:
            assert engine.solve(cnf).value == serial
            assert engine.stats.component_fanouts == 0

    def test_memo_hits_suppress_refanout(self):
        cnf = antisymmetric(4)
        with CountingEngine(
            ExactCounter(), config=EngineConfig(workers=2, fanout_min_vars=2)
        ) as engine:
            first = engine.solve(cnf).value
            again = engine.solve(cnf).value
            assert first == again
            # The second solve is a memo hit; no second split happens.
            assert engine.stats.component_fanouts == 1

    def test_routing_backends_do_not_fan_out(self):
        # The composite router routes whole problems; the split belongs to
        # the routed target, so the engine must not ask the router.
        cnf = antisymmetric(4)
        serial = ExactCounter().count(cnf)
        with CountingEngine(
            make_backend("composite"),
            config=EngineConfig(workers=2, fanout_min_vars=2),
        ) as engine:
            assert engine.solve(cnf).value == serial
            assert engine.stats.component_fanouts == 0


def three_distinct_components() -> CNF:
    """Three structurally *different* independent components.

    Antisymmetry's components all collapse onto one canonical signature
    (one backend call serves them), so they never keep two workers busy.
    These three stay distinct, which is what ships a real multi-task
    batch through the pool: vars 1-2 count 3, vars 3-5 count 5, vars 6-7
    count 2 — the product is 30.
    """
    return CNF(
        num_vars=7,
        clauses=[(-1, -2), (3, 4, 5), (-3, -4), (6, 7), (-6, -7)],
    )


class TestFanoutRobustness:
    def test_distinct_components_ship_through_the_pool(self):
        cnf = three_distinct_components()
        serial = ExactCounter().count(cnf)
        assert serial == 30
        with CountingEngine(
            ExactCounter(), config=EngineConfig(workers=2, fanout_min_vars=2)
        ) as engine:
            with hard_timeout(120):
                assert engine.solve(cnf).value == serial
            assert engine.stats.component_fanouts == 1
            assert engine.stats.fanout_subproblems == 3

    def test_sigkilled_worker_mid_fanout_matches_serial(self, tmp_path):
        """The acceptance path: SIGKILL one worker mid-fan-out, no drift."""
        cnf = three_distinct_components()
        serial = ExactCounter().count(cnf)
        engine = CountingEngine(
            ExactCounter(), config=EngineConfig(workers=2, fanout_min_vars=2)
        )
        faults.inject("worker-kill", 2)
        faults.inject("worker-kill-marker", str(tmp_path / "killed-once"))
        try:
            with hard_timeout(120):
                result = engine.solve(cnf)
        finally:
            faults.clear()
            engine.close()
        assert result.value == serial
        assert engine.stats.component_fanouts == 1
        assert engine.stats.worker_respawns >= 1
