"""Binarized-network tests: training, compilation, whole-space metrics."""

import itertools

import numpy as np
import pytest

from repro.core.accmc import GroundTruth
from repro.core.bnnmc import diff_bnn, quantify_bnn
from repro.core.tree2cnf import tree_paths_formula
from repro.counting.vector import count_formula
from repro.data import generate_dataset
from repro.logic.formula import FALSE, Not, TRUE, Var, iter_assignments
from repro.ml.bnn import BinarizedMLP, neuron_formula, threshold_formula
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.spec import get_property


class TestThresholdFormula:
    def test_trivial_thresholds(self):
        lits = [Var(1), Var(2)]
        assert threshold_formula(lits, 0) == TRUE
        assert threshold_formula(lits, 3) == FALSE

    @pytest.mark.parametrize("n,t", [(1, 1), (3, 2), (4, 1), (4, 4), (5, 3)])
    def test_counts_all_assignments(self, n, t):
        lits = [Var(i + 1) for i in range(n)]
        f = threshold_formula(lits, t)
        for assignment in iter_assignments(range(1, n + 1)):
            expected = sum(assignment.values()) >= t
            assert f.evaluate(assignment) == expected

    def test_negated_literals(self):
        lits = [Var(1), Not(Var(2))]
        f = threshold_formula(lits, 2)
        assert f.evaluate({1: True, 2: False})
        assert not f.evaluate({1: True, 2: True})

    def test_shared_dp_keeps_formula_small(self):
        from repro.logic.formula import dag_size

        lits = [Var(i + 1) for i in range(20)]
        f = threshold_formula(lits, 10)
        # O(n·t) node sharing: far below the binomial tree expansion.
        assert dag_size(f) < 1_000


class TestNeuronFormula:
    def test_matches_sign_semantics(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            d = int(rng.integers(1, 6))
            weights = rng.choice([-1.0, 1.0], size=d)
            bias = float(rng.normal())
            inputs = [Var(i + 1) for i in range(d)]
            f = neuron_formula(inputs, weights, bias)
            for bits in itertools.product([0.0, 1.0], repeat=d):
                pre_act = float(weights @ (2 * np.array(bits) - 1) + bias)
                expected = pre_act >= 0
                assignment = {i + 1: bool(bits[i]) for i in range(d)}
                assert f.evaluate(assignment) == expected, (weights, bias, bits)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            neuron_formula([Var(1)], np.array([1.0, -1.0]), 0.0)


class TestBinarizedMLP:
    def test_learns_a_simple_property(self):
        prop = get_property("Reflexive")
        dataset = generate_dataset(prop, 3, rng=0)
        bnn = BinarizedMLP(hidden_units=12, epochs=200, random_state=0)
        bnn.fit(dataset.X.astype(float), dataset.y)
        assert bnn.score(dataset.X.astype(float), dataset.y) >= 0.8

    def test_formula_agrees_with_predict_everywhere(self):
        """The §2 generalisation hinges on this: compiled region ≡ network."""
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(80, 4)).astype(float)
        y = (X[:, 0].astype(int) | X[:, 2].astype(int)) & 1
        bnn = BinarizedMLP(hidden_units=6, epochs=120, random_state=2).fit(X, y)
        region = bnn.to_formula()
        for bits in itertools.product([0, 1], repeat=4):
            predicted = bnn.predict(np.array([bits], dtype=float))[0]
            assignment = {k + 1: bool(bits[k]) for k in range(4)}
            assert region.evaluate(assignment) == bool(predicted)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BinarizedMLP().predict(np.zeros((1, 4)))
        with pytest.raises(RuntimeError):
            BinarizedMLP().to_formula()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BinarizedMLP(hidden_units=0)


class TestBnnWholeSpace:
    def _trained(self, prop_name, scope, seed=0):
        prop = get_property(prop_name)
        dataset = generate_dataset(prop, scope, rng=seed)
        bnn = BinarizedMLP(hidden_units=10, epochs=150, random_state=seed)
        bnn.fit(dataset.X.astype(float), dataset.y)
        return bnn, prop

    def test_quantify_counts_partition(self):
        bnn, prop = self._trained("Function", 3)
        result = quantify_bnn(bnn, GroundTruth(prop, 3))
        assert result.counts.total == 2**9
        assert 0.0 <= result.precision <= 1.0

    def test_quantify_matches_brute_confusion(self):
        bnn, prop = self._trained("Reflexive", 2)
        result = quantify_bnn(bnn, GroundTruth(prop, 2))
        from repro.spec.evaluate import evaluate_bits

        tp = fp = tn = fn = 0
        for bits in itertools.product([0, 1], repeat=4):
            actual = evaluate_bits(prop.formula, bits, 2)
            predicted = bool(bnn.predict(np.array([bits], dtype=float))[0])
            tp += actual and predicted
            fp += (not actual) and predicted
            fn += actual and not predicted
            tn += (not actual) and (not predicted)
        assert (result.counts.tp, result.counts.fp) == (tp, fp)
        assert (result.counts.tn, result.counts.fn) == (tn, fn)

    def test_diff_bnn_vs_tree(self):
        """Cross-family DiffMC: a BNN against a decision tree."""
        prop = get_property("Irreflexive")
        dataset = generate_dataset(prop, 3, rng=4)
        X, y = dataset.X.astype(float), dataset.y
        bnn = BinarizedMLP(hidden_units=8, epochs=150, random_state=4).fit(X, y)
        tree = DecisionTreeClassifier().fit(X, y)
        result = diff_bnn(bnn, tree_paths_formula(tree, 1), num_inputs=9)
        assert result.tt + result.tf + result.ft + result.ff == 2**9
        assert result.sim == pytest.approx(1.0 - result.diff)

    def test_diff_identical_is_zero(self):
        bnn, _ = self._trained("Reflexive", 2, seed=5)
        result = diff_bnn(bnn, bnn, num_inputs=4)
        assert result.diff == 0.0

    def test_diff_rejects_garbage(self):
        with pytest.raises(TypeError):
            diff_bnn("not a model", "also not", num_inputs=4)
