"""Differential suite for the unified ``_SqliteStore`` layer.

The three disk tiers (``CountStore``/``BlobStore``/``ComponentStore``) were
written three times before sharing one base class; this module pins the
externally observable behaviour each one had — corrupt-file rotation,
buffering depth, read-your-writes, degradation accounting under injected
faults, closed-store semantics — so the deduplication (and any tier added
later) is provably behaviour-preserving.
"""

import pickle
import sqlite3

import pytest

from repro.counting import faults
from repro.counting.store import (
    AUTOFLUSH_PUTS,
    BlobStore,
    ComponentStore,
    CountStore,
    _SqliteStore,
)

#: The three pre-refactor tiers the base class must reproduce bit-identically.
TIERS = (CountStore, BlobStore, ComponentStore)


def _component_key(n: int):
    """A distinct, hashable component-cache key per ``n``."""
    return (frozenset({(1 << n, 0)}), (1 << n) - 1)


def _sample_key(store_cls, n: int):
    return _component_key(n) if store_cls is ComponentStore else f"k{n}"


def _sample_value(store_cls, n: int):
    return n if store_cls is CountStore else {"payload": n}


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class TestSharedDiscipline:
    """Contracts every tier shares (written once in ``_SqliteStore``)."""

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_subclasses_the_shared_base(self, store_cls):
        assert issubclass(store_cls, _SqliteStore)

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_roundtrip_and_len(self, store_cls, tmp_path):
        with store_cls(tmp_path) as store:
            key, value = _sample_key(store_cls, 0), _sample_value(store_cls, 0)
            assert store.get(key) is None
            store.put(key, value)
            assert store.get(key) == value  # read-your-writes, buffered or not
            assert len(store) == 1
            assert store.degradations == 0

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_wal_mode(self, store_cls, tmp_path):
        with store_cls(tmp_path) as store:
            (mode,) = store._connection.execute("PRAGMA journal_mode").fetchone()
            assert mode == "wal"

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_corrupt_file_rotates_aside_and_counts_one_degradation(
        self, store_cls, tmp_path
    ):
        path = tmp_path / store_cls.FILENAME
        path.write_bytes(b"SQLite format 3\x00 but truncated garbage")
        with store_cls(tmp_path) as store:
            assert store.degradations == 1
            assert path.with_suffix(path.suffix + ".corrupt").exists()
            key, value = _sample_key(store_cls, 0), _sample_value(store_cls, 0)
            store.put(key, value)
            store.flush()
            assert store.get(key) == value  # fresh database is fully usable

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_injected_read_failure_degrades_to_a_miss(self, store_cls, tmp_path):
        with store_cls(tmp_path) as store:
            key = _sample_key(store_cls, 0)
            store.put(key, _sample_value(store_cls, 0))
            store.flush()
            with faults.injected("store-read-corrupt"):
                assert store.get(key) is None
            assert store.degradations == 1
            assert store.get(key) == _sample_value(store_cls, 0)  # self-heals

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_injected_write_failure_is_swallowed_and_counted(
        self, store_cls, tmp_path
    ):
        with store_cls(tmp_path) as store:
            key = _sample_key(store_cls, 0)
            with faults.injected("store-disk-full"):
                store.put(key, _sample_value(store_cls, 0))
                store.flush()
            assert store.degradations == 1
            # The buffer was dropped, not poisoned: the next write lands.
            store.put(_sample_key(store_cls, 1), _sample_value(store_cls, 1))
            store.flush()
            assert store.degradations == 1
            assert store.get(_sample_key(store_cls, 1)) == _sample_value(store_cls, 1)

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_closed_store_accepts_and_drops(self, store_cls, tmp_path):
        store = store_cls(tmp_path)
        store.close()
        key = _sample_key(store_cls, 0)
        store.put(key, _sample_value(store_cls, 0))  # dropped, no error
        store.flush()
        assert store.get(key) is None
        assert len(store) == 0
        store.close()  # idempotent

    @pytest.mark.parametrize("store_cls", TIERS)
    def test_repr_names_the_tier(self, store_cls, tmp_path):
        with store_cls(tmp_path) as store:
            assert store_cls.__name__ in repr(store)
            assert str(store.path) in repr(store)


class TestCountStoreBehaviour:
    def test_puts_buffer_until_autoflush(self, tmp_path):
        with CountStore(tmp_path) as store:
            for i in range(AUTOFLUSH_PUTS - 1):
                store.put(f"k{i}", i)
            # Nothing on disk yet: a second store over the same file sees nothing.
            with CountStore(tmp_path) as other:
                assert other.get("k0") is None
            store.put("tip", 2**100)  # the AUTOFLUSH_PUTS-th put flushes
            with CountStore(tmp_path) as other:
                assert other.get("k0") == 0
                assert other.get("tip") == 2**100  # arbitrary precision survives
            assert not store._pending

    def test_put_many_writes_through_immediately(self, tmp_path):
        with CountStore(tmp_path) as store:
            store.put_many([("a", 1), ("b", 2)])
            with CountStore(tmp_path) as other:
                assert other.get_many(["a", "b"]) == {"a": 1, "b": 2}

    def test_get_many_prefers_the_buffer_over_rows(self, tmp_path):
        with CountStore(tmp_path) as store:
            store.put_many([("a", 1)])
            store.put("a", 7)  # buffered overwrite, not yet flushed
            assert store.get_many(["a"]) == {"a": 7}

    def test_corrupt_row_is_a_counted_miss(self, tmp_path):
        with CountStore(tmp_path) as store:
            store.put_many([("good", 3), ("bad", 4)])
        with sqlite3.connect(tmp_path / CountStore.FILENAME) as raw:
            raw.execute("UPDATE counts SET value = 'not-an-int' WHERE key = 'bad'")
            raw.commit()
        with CountStore(tmp_path) as store:
            assert store.get_many(["good", "bad"]) == {"good": 3}
            assert store.degradations == 1

    def test_len_flushes_the_buffer_and_clear_empties_the_table(self, tmp_path):
        with CountStore(tmp_path) as store:
            store.put("a", 1)
            assert len(store) == 1  # len() observes buffered puts by flushing
            store.clear()
            assert len(store) == 0
            assert store.get("a") is None


class TestBlobStoreBehaviour:
    def test_writes_through_one_transaction_per_put(self, tmp_path):
        assert BlobStore.AUTOFLUSH == 1
        with BlobStore(tmp_path) as store:
            store.put("k", {"a": [1, 2]})
            assert not store._pending  # nothing buffered between puts
            with BlobStore(tmp_path) as other:
                assert other.get("k") == {"a": [1, 2]}

    def test_unpicklable_value_is_silently_dropped(self, tmp_path):
        with BlobStore(tmp_path) as store:
            store.put("bad", lambda: None)  # lambdas do not pickle
            assert store.degradations == 0  # dropped, not a degradation
            assert store.get("bad") is None
            assert len(store) == 0

    def test_unpicklable_row_is_a_counted_miss(self, tmp_path):
        with BlobStore(tmp_path) as store:
            store.put("k", 1)
        with sqlite3.connect(tmp_path / BlobStore.FILENAME) as raw:
            raw.execute("UPDATE blobs SET value = ? WHERE key = 'k'", (b"\x80garbage",))
            raw.commit()
        with BlobStore(tmp_path) as store:
            assert store.get("k") is None
            assert store.degradations == 1


class TestComponentStoreBehaviour:
    def test_puts_dedup_on_the_digest_set(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            key = _component_key(0)
            store.put(key, 5)
            store.put(key, 999)  # same key: never re-stored
            assert store.get(key) == 5
            assert len(store) == 1

    def test_len_counts_buffered_and_flushed_entries(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), 1)
            assert len(store) == 1  # digest set, not a flushing COUNT(*)
            assert store._pending  # still buffered

    def test_warm_reopen_loads_the_digest_set(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), 11)
        with ComponentStore(tmp_path) as store:
            assert len(store) == 1
            assert store.get(_component_key(0)) == 11
            assert store.get(_component_key(1)) is None  # set probe, no query

    def test_lost_row_drops_the_digest_so_a_respill_repairs(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), 11)
        with ComponentStore(tmp_path) as store:
            store._connection.execute("DELETE FROM components")
            store._connection.commit()
            assert store.get(_component_key(0)) is None
            assert store.degradations == 1
            assert len(store) == 0  # digest dropped...
            store.put(_component_key(0), 11)  # ...so the re-spill is accepted
            store.flush()
            assert store.get(_component_key(0)) == 11

    def test_corrupt_row_drops_the_digest(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), 11)
        with sqlite3.connect(tmp_path / ComponentStore.FILENAME) as raw:
            raw.execute("UPDATE components SET value = ?", (b"\x80garbage",))
            raw.commit()
        with ComponentStore(tmp_path) as store:
            assert store.get(_component_key(0)) is None
            assert store.degradations == 1
            assert len(store) == 0

    def test_transient_read_failure_keeps_the_digest(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), 11)
            store.flush()
            with faults.injected("store-read-corrupt"):
                assert store.get(_component_key(0)) is None
            assert store.degradations == 1
            assert len(store) == 1  # transient: the entry is still known
            assert store.get(_component_key(0)) == 11

    def test_flush_failure_discards_attempted_digests(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), 11)
            with faults.injected("store-disk-full"):
                store.flush()
            assert store.degradations == 1
            assert len(store) == 0  # the row never landed: digest discarded
            store.put(_component_key(0), 11)  # the retry is not dedup-blocked
            store.flush()
            assert store.get(_component_key(0)) == 11

    def test_unpicklable_value_discards_its_digest(self, tmp_path):
        with ComponentStore(tmp_path) as store:
            store.put(_component_key(0), lambda: None)
            store.flush()
            assert len(store) == 0
            assert store.degradations == 0


class TestRoundTripFidelity:
    """Values survive the codec bit-identically (pickle/decimal-string)."""

    def test_count_values_roundtrip_huge_ints(self, tmp_path):
        huge = 2 ** (25 * 25)  # far beyond sqlite INTEGER range
        with CountStore(tmp_path) as store:
            store.put_many([("huge", huge), ("zero", 0)])
        with CountStore(tmp_path) as store:
            assert store.get("huge") == huge
            assert store.get("zero") == 0

    def test_blob_values_roundtrip_by_pickle_equality(self, tmp_path):
        value = {"nested": [(1, 2), frozenset({3})], "text": "φ"}
        with BlobStore(tmp_path) as store:
            store.put("k", value)
        with BlobStore(tmp_path) as store:
            read = store.get("k")
            assert read == value
            assert pickle.dumps(read) == pickle.dumps(value)
