"""Extended fidelity tests: paper-scope compilation, SAT-path enumeration,
and the §3 walk-through at laptop scale."""

import pytest

from repro.counting import ApproxMCCounter, ExactCounter, closed_form_count
from repro.counting.oracles import fibonacci
from repro.sat import count_models
from repro.spec import SymmetryBreaking, get_property, translate


class TestPaperScaleCompilation:
    """The Alloy→CNF pipeline at the paper's own scopes (compile only —
    counting at scope 20 is what the paper's 5000 s budget was for)."""

    def test_equivalence_scope12_compiles(self):
        problem = translate(get_property("Equivalence"), 12, symmetry=SymmetryBreaking())
        stats = problem.stats()
        assert stats["primary_vars"] == 144
        assert stats["total_vars"] > stats["primary_vars"]
        assert stats["clauses"] > 1000
        # Projection and numbering invariants survive at scale.
        assert problem.cnf.projected_vars() == frozenset(range(1, 145))
        assert problem.cnf.aux_unique

    def test_function_scope8_count_matches_table1(self):
        """Function at the paper's scope 8: count = 8^8 = 16,777,216 —
        checked against the closed form via the compiled formula structure
        (the exact counter handles this particular structure easily because
        rows decompose into independent components)."""
        problem = translate(get_property("Function"), 8)
        count = ExactCounter().count(problem.cnf)
        assert count == closed_form_count("function", 8) == 16_777_216

    def test_reflexive_scope5_count_matches_table1(self):
        problem = translate(get_property("Reflexive"), 5)
        assert ExactCounter().count(problem.cnf) == 1_048_576

    def test_antisymmetric_scope5_count_matches_table1(self):
        problem = translate(get_property("Antisymmetric"), 5)
        assert ExactCounter().count(problem.cnf) == 1_889_568


class TestSatPathEnumeration:
    """Fibonacci counts through the CDCL enumeration path (not the
    vectorised sweep), at growing scopes."""

    @pytest.mark.parametrize("scope", [3, 4, 5])
    def test_equivalence_with_symbr_is_fibonacci(self, scope):
        problem = translate(
            get_property("Equivalence"), scope, symmetry=SymmetryBreaking()
        )
        assert count_models(problem.cnf) == fibonacci(scope + 1)

    def test_totalorder_with_full_symbr_is_one(self):
        """All total orders at one scope are isomorphic: full lex-leader
        keeps exactly one representative."""
        problem = translate(
            get_property("TotalOrder"), 4, symmetry=SymmetryBreaking("all")
        )
        assert count_models(problem.cnf) == 1

    def test_bijective_with_full_symbr_is_one(self):
        """Likewise all permutation relations are conjugate... to within
        cycle type: scope 3 has 3 partitions of 3."""
        problem = translate(
            get_property("Bijective"), 3, symmetry=SymmetryBreaking("all")
        )
        assert count_models(problem.cnf) == 3  # cycle types: 1+1+1, 1+2, 3


class TestSection3WalkThrough:
    """The §3 ApproxMC/ProjMC illustration, scaled to scope 5.

    The paper: Equivalence at scope 20 has exact count 10,946 (= F(21));
    ApproxMC estimates within 3%.  At scope 5 the exact count is F(6) = 8;
    the approximate counter (quick-exit regime) is exact here.
    """

    def test_exact_and_approx_agree(self):
        problem = translate(get_property("Equivalence"), 5, symmetry=SymmetryBreaking())
        exact = ExactCounter().count(problem.cnf)
        estimate = ApproxMCCounter(seed=0).count(problem.cnf)
        assert exact == fibonacci(6) == 8
        assert estimate == exact  # below the pivot -> exact by construction

    def test_enumeration_order_does_not_matter(self):
        """The paper's §5.2.2 argument: any enumerating solver yields the
        same solution *set*.  Enumerate twice with different branching
        (fresh solver vs warmed activity) and compare sets."""
        from repro.sat.enumerate import enumerate_models

        problem = translate(get_property("Equivalence"), 4, symmetry=SymmetryBreaking())
        first = {
            tuple(sorted(m.items())) for m in enumerate_models(problem.cnf)
        }
        second = {
            tuple(sorted(m.items())) for m in enumerate_models(problem.cnf)
        }
        assert first == second
        assert len(first) == 5
