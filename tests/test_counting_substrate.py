"""Tests for the persistent counting substrate (PR 3).

Covers:

* :class:`ComponentCache` — LRU eviction under tiny caps, recency refresh,
  byte accounting, delta recording/absorption;
* the shared component cache's differential guarantee — counts through a
  shared (and warm) cache are bit-identical to fresh-counter counts, over
  the 16-property matrix at scopes 2–4 and over randomized CNFs;
* the engine-owned persistent :class:`WorkerPool` — reuse across batches,
  idempotent close, fork-after-close recreation, worker component-cache
  deltas warming the engine's shared cache;
* the satellite fixes — ``CountingEngine.__repr__`` reporting the resolved
  worker count, ``count_formula`` routed through the count memo (or
  rejected with a pointer to ``count``), lazy ``CNF.signature()``
  memoization with invalidation, and ``CountStore`` write batching + WAL.
"""

import random

import pytest

from repro.counting import (
    ComponentCache,
    CountingEngine,
    CountStore,
    EngineConfig,
    ExactCounter,
    FormulaBruteCounter,
    LegacyExactCounter,
    closed_form_count,
)
from repro.counting.component_cache import entry_cost
from repro.logic import CNF
from repro.logic.formula import And, Or, Var
from repro.spec import SymmetryBreaking, get_property, translate
from repro.spec.properties import PROPERTIES


def _key(*clauses, proj=1):
    return (frozenset(clauses), proj)


class TestComponentCacheLRU:
    def test_round_trip_and_zero_values(self):
        cache = ComponentCache()
        key = _key((1, 2), (4, 0))
        assert cache.get(key) is None
        cache.put(key, 0)  # 0 is a valid model count, not a miss
        assert cache.get(key) == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_entry_cap_evicts_least_recently_used(self):
        cache = ComponentCache(max_bytes=None, max_entries=3)
        keys = [_key((1 << i, 0)) for i in range(4)]
        for i, key in enumerate(keys[:3]):
            cache.put(key, i)
        # Refresh key 0 so key 1 becomes the LRU entry.
        assert cache.get(keys[0]) == 0
        cache.put(keys[3], 3)
        assert len(cache) == 3
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[0]) == 0  # survived thanks to the refresh
        assert cache.get(keys[2]) == 2
        assert cache.evictions == 1

    def test_byte_cap_evicts(self):
        small = _key((1, 2))
        cost = entry_cost(small, 1)
        cache = ComponentCache(max_bytes=int(cost * 2.5))
        cache.put(_key((1, 2)), 1)
        cache.put(_key((2, 1)), 2)
        cache.put(_key((3, 4)), 3)
        assert cache.evictions >= 1
        assert len(cache) < 3
        assert cache.approximate_bytes() <= int(cost * 2.5)

    def test_put_is_idempotent_for_pure_values(self):
        cache = ComponentCache()
        key = _key((1, 0))
        cache.put(key, 7)
        cache.put(key, 7)
        assert len(cache) == 1
        assert cache.get(key) == 7

    def test_delta_recording_and_absorb(self):
        producer = ComponentCache()
        producer.start_recording()
        producer.put(_key((1, 0)), 1)
        producer.put(_key((0, 1)), 2)
        delta = producer.drain_delta()
        assert len(delta) == 2
        assert producer.drain_delta() == []  # drained
        consumer = ComponentCache()
        consumer.absorb(delta)
        assert consumer.get(_key((1, 0))) == 1
        assert consumer.get(_key((0, 1))) == 2

    def test_clear_resets_bytes(self):
        cache = ComponentCache()
        cache.put(_key((1, 2)), 5)
        assert cache.approximate_bytes() > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.approximate_bytes() == 0


def _random_cnf(rng: random.Random) -> CNF:
    num_vars = rng.randint(3, 14)
    num_clauses = rng.randint(1, 30)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, min(4, num_vars))
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    projection = None
    if rng.random() < 0.6:
        k = rng.randint(1, num_vars)
        projection = rng.sample(range(1, num_vars + 1), k)
    return CNF(clauses, num_vars=num_vars, projection=projection)


class TestSharedCacheDifferential:
    """Shared-cache counts must be bit-identical to fresh-counter counts."""

    def test_matrix_scopes_2_3_shared_vs_fresh(self):
        cases = [
            translate(prop, scope, symmetry=symmetry).cnf
            for prop in PROPERTIES
            for scope in (2, 3)
            for symmetry in (None, SymmetryBreaking())
        ]
        shared = ExactCounter()  # owns one persistent cache across all calls
        for cnf in cases:
            fresh = ExactCounter(component_cache=None).count(cnf)
            assert shared.count(cnf) == fresh
            # A second, fully warm call must agree too.
            assert shared.count(cnf) == fresh

    @pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.name)
    def test_matrix_scope_4_warm_cache_vs_closed_form(self, prop, shared_scope4_counter):
        # One persistent counter across all 16 properties: later properties
        # count through a cache warmed by earlier ones, and every count
        # must still match the independent analytic oracle.
        cnf = translate(prop, 4).cnf
        assert shared_scope4_counter.count(cnf) == closed_form_count(prop.oracle, 4)

    def test_randomized_differential(self):
        rng = random.Random(20260726)
        shared = ExactCounter()
        tiny = ExactCounter(component_cache=ComponentCache(max_bytes=None, max_entries=64))
        for _ in range(150):
            cnf = _random_cnf(rng)
            fresh = ExactCounter(component_cache=None).count(cnf)
            legacy = LegacyExactCounter().count(cnf.copy())
            assert fresh == legacy
            assert shared.count(cnf) == fresh
            # Eviction-heavy cache: correctness must survive mid-search
            # evictions under a cap far below the working set.
            assert tiny.count(cnf) == fresh

    def test_engine_opt_out_restores_per_call_cache(self):
        engine = CountingEngine(config=EngineConfig(component_cache_mb=0))
        assert engine.component_cache is None
        assert engine.counter.component_cache is None
        cnf = translate(get_property("Transitive"), 3).cnf
        assert engine.count(cnf) == 171


@pytest.fixture(scope="class")
def shared_scope4_counter():
    return ExactCounter()


class TestPersistentPool:
    def _cold_batch(self, names, scope=2):
        return [translate(get_property(name), scope).cnf for name in names]

    def test_pool_reused_across_batches(self):
        engine = CountingEngine(config=EngineConfig(workers=2))
        engine.count_many(self._cold_batch(("Reflexive", "Irreflexive")))
        pool = engine._pool
        assert pool is not None and not pool.closed
        assert pool.batches == 1
        engine.count_many(self._cold_batch(("Connex", "Functional")))
        assert engine._pool is pool  # same pool, no re-fork
        assert pool.batches == 2
        engine.close()

    def test_close_is_idempotent_and_fork_after_close_recreates(self):
        engine = CountingEngine(config=EngineConfig(workers=2))
        engine.count_many(self._cold_batch(("Reflexive", "Irreflexive")))
        first_pool = engine._pool
        engine.close()
        engine.close()  # idempotent
        assert first_pool.closed
        counts = engine.count_many(self._cold_batch(("Connex", "Functional")))
        assert engine._pool is not first_pool
        assert not engine._pool.closed
        assert counts == CountingEngine().count_many(
            self._cold_batch(("Connex", "Functional"))
        )
        engine.close()

    def test_serial_engine_never_forks(self):
        engine = CountingEngine()
        engine.count_many(self._cold_batch(("Reflexive", "Irreflexive")))
        assert engine._pool is None
        engine.close()

    def test_worker_deltas_warm_the_shared_cache(self):
        engine = CountingEngine(config=EngineConfig(workers=2))
        assert len(engine.component_cache) == 0
        engine.count_many(self._cold_batch(("PartialOrder", "Equivalence"), scope=3))
        # The components were solved in worker processes, yet the parent's
        # shared cache holds them now (the delta protocol shipped them back).
        assert len(engine.component_cache) > 0
        engine.close()

    def test_pool_survives_a_worker_exception(self):
        from repro.counting.exact import CounterBudgetExceeded

        # Two *distinct* infeasible problems (duplicates would collapse onto
        # one cold problem and skip the pool entirely).
        hard = [
            translate(get_property("Transitive"), 3).cnf,
            translate(get_property("TotalOrder"), 3).cnf,
        ]
        engine = CountingEngine(
            ExactCounter(max_nodes=10), config=EngineConfig(workers=2)
        )
        with pytest.raises(CounterBudgetExceeded):
            engine.count_many(hard)
        pool = engine._pool
        assert pool is not None and not pool.closed
        # The same pool serves the next (feasible) batch.
        assert engine.count_many(self._cold_batch(("Reflexive", "Connex"))) == (
            CountingEngine().count_many(self._cold_batch(("Reflexive", "Connex")))
        )
        assert engine._pool is pool
        engine.close()

    def test_engine_is_a_context_manager(self):
        with CountingEngine(config=EngineConfig(workers=2)) as engine:
            engine.count_many(self._cold_batch(("Reflexive", "Irreflexive")))
            pool = engine._pool
        assert pool.closed


class TestSatelliteFixes:
    def test_repr_reports_resolved_workers(self):
        # workers=0 means one per core; the repr must show the resolved
        # count, not hide behind config.workers > 1.
        engine = CountingEngine(config=EngineConfig(workers=0))
        if engine._workers > 1:
            assert f"workers={engine._workers}" in repr(engine)
        else:  # single-core machine: resolved count is 1, nothing to show
            assert "workers=" not in repr(engine)
        explicit = CountingEngine(config=EngineConfig(workers=7))
        assert "workers=7" in repr(explicit)

    def test_count_formula_memoized_through_engine(self):
        engine = CountingEngine(FormulaBruteCounter())
        formula = Or(And(Var(1), Var(2)), Var(3))
        first = engine.count_formula(formula, 3)
        assert first == 5
        assert engine.count_formula(formula, 3) == 5
        assert engine.stats.count_calls == 2
        assert engine.stats.count_hits == 1
        assert engine.stats.backend_calls == 1
        # A different variable space is a different counting problem.
        assert engine.count_formula(formula, 4) == 10
        assert engine.stats.backend_calls == 2

    def test_count_formula_rejected_for_cnf_only_backends(self):
        engine = CountingEngine()
        with pytest.raises(AttributeError, match="engine.count"):
            engine.count_formula
        assert not hasattr(engine, "count_formula")
        # AccMC's capability probe must still route CNF backends to CNFs.
        assert hasattr(CountingEngine(FormulaBruteCounter()), "count_formula")

    def test_signature_is_memoized_and_invalidated(self):
        cnf = CNF([[1, 2], [-1, 3]], projection=[1, 2, 3])
        first = cnf.signature()
        assert cnf.signature() is first  # memo hit: identical object
        cnf.add_clause([2, 3])
        second = cnf.signature()
        assert second != first  # mutation invalidated the memo
        assert cnf.signature() is second

    def test_signature_memo_and_new_var(self):
        cnf = CNF([[1]], num_vars=1)  # no projection: counts all vars
        assert cnf.signature() == cnf.signature()
        before = cnf.signature()
        cnf.new_var()
        assert cnf.signature() != before  # ("all", num_vars) marker moved

    def test_copies_do_not_share_the_memo(self):
        cnf = CNF([[1, 2]], projection=[1, 2])
        cnf.signature()
        other = cnf.copy()
        other.add_clause([-1])
        assert other.signature() != cnf.signature()
        assert cnf.signature() == CNF([[1, 2]], projection=[1, 2]).signature()


class TestStoreBatching:
    def test_single_puts_are_buffered_and_flushed(self, tmp_path):
        store = CountStore(tmp_path)
        store.put("a", 2**200)
        store.put("b", 0)
        # Visible to the owning process before any flush …
        assert store.get("a") == 2**200
        assert store.get_many(["a", "b"]) == {"a": 2**200, "b": 0}
        store.flush()
        store.close()
        # … and to a fresh handle after it.
        with CountStore(tmp_path) as reopened:
            assert reopened.get_many(["a", "b"]) == {"a": 2**200, "b": 0}

    def test_close_flushes_the_buffer(self, tmp_path):
        store = CountStore(tmp_path)
        store.put("k", 42)
        store.close()
        with CountStore(tmp_path) as reopened:
            assert reopened.get("k") == 42

    def test_autoflush_threshold(self, tmp_path):
        from repro.counting.store import AUTOFLUSH_PUTS

        store = CountStore(tmp_path)
        for i in range(AUTOFLUSH_PUTS):
            store.put(f"k{i}", i)
        assert not store._pending  # the threshold write drained the buffer
        with CountStore(tmp_path) as other:
            assert other.get("k0") == 0
            assert other.get(f"k{AUTOFLUSH_PUTS - 1}") == AUTOFLUSH_PUTS - 1
        store.close()

    def test_wal_mode_is_active(self, tmp_path):
        store = CountStore(tmp_path)
        (mode,) = store._connection.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"
        store.close()

    def test_pending_values_win_over_stale_rows(self, tmp_path):
        store = CountStore(tmp_path)
        store.put("k", 1)
        store.flush()
        store.put("k", 2)  # buffered overwrite
        assert store.get("k") == 2
        store.close()

    def test_closed_store_drops_writes_instead_of_buffering(self, tmp_path):
        # Counting after engine.close() is supported; the closed store must
        # not accumulate an unbounded (and unreadable) pending buffer.
        store = CountStore(tmp_path)
        store.close()
        store.put("k", 1)
        store.put_many([("a", 2), ("b", 3)])
        store.flush()
        assert store._pending == {}
        assert len(store) == 0
        assert store.get("k") is None


class TestCacheSnapshot:
    def test_snapshot_keeps_mru_entries_within_budget(self):
        cache = ComponentCache(max_bytes=None)
        keys = [_key((1 << i, 0)) for i in range(10)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        one = entry_cost(keys[0], 0)
        clone = cache.snapshot(one * 3)
        assert 0 < len(clone) <= 3
        # The retained entries are the most recently used ones.
        for key in keys[-len(clone):]:
            assert key in clone
        assert keys[0] not in clone

    def test_pickled_counter_ships_a_bounded_cache(self):
        import pickle

        from repro.counting.exact import _PICKLED_CACHE_BYTES

        counter = ExactCounter()
        cache = counter.component_cache
        # Force the estimate far over the shipping cap without allocating
        # real memory: one entry, then inflate the byte accounting.
        cache.put(_key((1, 2)), 1)
        cache._bytes = _PICKLED_CACHE_BYTES * 4
        clone = pickle.loads(pickle.dumps(counter))
        assert clone.component_cache is not None
        assert clone.component_cache.approximate_bytes() <= _PICKLED_CACHE_BYTES
        # The clone's own budget is capped too: an N-worker pool must hold
        # N small caches, not N copies of the parent's full budget.
        assert clone.component_cache.max_bytes <= _PICKLED_CACHE_BYTES
        # The original counter is untouched.
        assert cache.approximate_bytes() == _PICKLED_CACHE_BYTES * 4
