"""End-to-end integration tests for the MCML pipeline and cross-backend
consistency — the "does the whole machine agree with itself" layer."""

import numpy as np
import pytest

from repro.core import MCMLPipeline
from repro.core.accmc import AccMC, GroundTruth
from repro.counting import ExactCounter, FormulaBruteCounter
from repro.counting.vector import count_formula, evaluate_formula_block
from repro.data import generate_dataset
from repro.logic.formula import And, Iff, Implies, Not, Or, Var, iter_assignments
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.spec import SymmetryBreaking, get_property, translate

from tests.test_logic_formula import formula_strategy, _MAX_VARS
from hypothesis import given, settings


class TestVectorizedFormulaCounting:
    @given(formula_strategy())
    @settings(max_examples=80, deadline=None)
    def test_count_formula_matches_truth_table(self, f):
        expected = sum(
            1
            for a in iter_assignments(range(1, _MAX_VARS + 1))
            if f.evaluate(a)
        )
        assert count_formula(f, _MAX_VARS) == expected

    def test_block_evaluation_shapes(self):
        f = And(Var(1), Or(Var(2), Not(Var(3))))
        block = np.array(
            [[True, False, True], [True, True, False], [False, True, True]]
        )
        result = evaluate_formula_block(f, block)
        assert result.tolist() == [False, True, False]

    def test_iff_implies_nodes(self):
        f = Iff(Var(1), Implies(Var(2), Var(1)))
        assert count_formula(f, 2) == sum(
            1 for a in iter_assignments([1, 2]) if f.evaluate(a)
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            count_formula(Var(9), 3)
        with pytest.raises(ValueError):
            count_formula(Var(1), 40)


class TestPipeline:
    def test_run_returns_complete_result(self):
        pipeline = MCMLPipeline(seed=0)
        result = pipeline.run("Reflexive", 3, train_fraction=0.5)
        assert result.property_name == "Reflexive"
        assert result.model_name == "DT"
        assert result.train_size + result.test_size > 0
        assert result.whole_space is not None
        assert 0 <= result.test_metrics["accuracy"] <= 1

    def test_non_tree_models_skip_whole_space(self):
        pipeline = MCMLPipeline(seed=0)
        result = pipeline.run("Reflexive", 3, model_name="SVM", train_fraction=0.5)
        assert result.whole_space is None

    def test_whole_space_requires_tree(self):
        pipeline = MCMLPipeline(seed=0)
        with pytest.raises(ValueError):
            pipeline.run(
                "Reflexive", 3, model_name="SVM", whole_space=True, train_fraction=0.5
            )

    def test_unknown_model_rejected(self):
        pipeline = MCMLPipeline(seed=0)
        dataset = pipeline.make_dataset("Reflexive", 3)
        with pytest.raises(KeyError):
            pipeline.train("XGBOOST", dataset)

    def test_dataset_reuse_is_deterministic(self):
        pipeline = MCMLPipeline(seed=7)
        dataset = pipeline.make_dataset("Function", 3)
        a = pipeline.run("Function", 3, dataset=dataset, train_fraction=0.5)
        b = pipeline.run("Function", 3, dataset=dataset, train_fraction=0.5)
        assert a.test_counts == b.test_counts
        assert a.whole_space.counts == b.whole_space.counts

    def test_symmetry_knobs_are_independent(self):
        pipeline = MCMLPipeline(seed=0)
        sb = SymmetryBreaking()
        mismatch = pipeline.run(
            "Equivalence", 3, data_symmetry=sb, eval_symmetry=None, train_fraction=0.5
        )
        matched = pipeline.run(
            "Equivalence", 3, data_symmetry=sb, eval_symmetry=sb, train_fraction=0.5
        )
        # Unconstrained evaluation space is the full 2^9; constrained is smaller.
        assert mismatch.whole_space.counts.total == 2**9
        assert matched.whole_space.counts.total < 2**9


class TestBackendConsistency:
    """Exact counter vs vectorised sweep, product vs derived — all equal."""

    @pytest.mark.parametrize("prop_name", ["Function", "PartialOrder", "Equivalence"])
    @pytest.mark.parametrize("symmetry", [None, SymmetryBreaking("adjacent")])
    def test_all_four_paths_agree(self, prop_name, symmetry):
        prop = get_property(prop_name)
        dataset = generate_dataset(prop, 3, symmetry=symmetry, rng=0)
        train, _ = dataset.split(0.5, rng=0)
        tree = DecisionTreeClassifier().fit(train.X.astype(float), train.y)
        gt = GroundTruth(prop, 3, symmetry=symmetry)
        results = {
            (mode, counter.name): AccMC(counter=counter, mode=mode).evaluate(tree, gt).counts
            for mode in ("product", "derived")
            for counter in (ExactCounter(), FormulaBruteCounter())
        }
        baseline = results[("product", "exact")]
        for key, counts in results.items():
            assert counts == baseline, f"{key} disagrees with product/exact"

    def test_tseitin_negation_consistency(self):
        """mc(φ) + mc(¬φ) = 2^m — the negate=True compilation is really the
        complement (no symmetry constraint involved)."""
        from repro.counting import exact_count

        for name in ("Transitive", "Connex"):
            prop = get_property(name)
            pos = translate(prop, 3)
            neg = translate(prop, 3, negate=True)
            assert exact_count(pos.cnf) + exact_count(neg.cnf) == 2**9

    def test_symmetry_constrained_negation_partitions_reduced_space(self):
        from repro.counting import exact_count
        from repro.logic.tseitin import tseitin_cnf

        sb = SymmetryBreaking()
        prop = get_property("Transitive")
        pos = translate(prop, 3, symmetry=sb)
        neg = translate(prop, 3, symmetry=sb, negate=True)
        space = tseitin_cnf(sb.formula(3), num_input_vars=9)
        assert exact_count(pos.cnf) + exact_count(neg.cnf) == exact_count(space)
