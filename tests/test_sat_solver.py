"""Unit and property tests for the CDCL solver and AllSAT enumeration."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import CNF, Var, tseitin_cnf
from repro.sat import SatResult, Solver, count_models, enumerate_models, solve
from repro.sat.solver import _luby


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestBasicSolving:
    def test_empty_instance_is_sat(self):
        result, model = solve([], num_vars=0)
        assert result is SatResult.SAT

    def test_single_unit(self):
        result, model = solve([[1]])
        assert result is SatResult.SAT
        assert model[1] is True

    def test_contradiction(self):
        result, model = solve([[1], [-1]])
        assert result is SatResult.UNSAT
        assert model is None

    def test_simple_implication_chain(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        result, model = solve(clauses)
        assert result is SatResult.SAT
        assert all(model[v] for v in (1, 2, 3, 4))

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: var p_{i,h} = 2*i + h + 1.
        clauses = []
        for i in range(3):
            clauses.append([2 * i + 1, 2 * i + 2])
        for h in range(2):
            for i, j in itertools.combinations(range(3), 2):
                clauses.append([-(2 * i + h + 1), -(2 * j + h + 1)])
        result, _ = solve(clauses)
        assert result is SatResult.UNSAT

    def test_php_5_into_4_unsat(self):
        pigeons, holes = 5, 4
        var = lambda i, h: i * holes + h + 1
        clauses = [[var(i, h) for h in range(holes)] for i in range(pigeons)]
        for h in range(holes):
            for i, j in itertools.combinations(range(pigeons), 2):
                clauses.append([-var(i, h), -var(j, h)])
        result, _ = solve(clauses)
        assert result is SatResult.UNSAT

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        result, model = solve(clauses)
        assert result is SatResult.SAT
        for clause in clauses:
            assert any((lit > 0) == model[abs(lit)] for lit in clause)


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = Solver(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is SatResult.SAT
        assert solver.model()[2] is True

    def test_conflicting_assumptions(self):
        solver = Solver(1)
        assert solver.solve(assumptions=[1, -1]) is SatResult.UNSAT

    def test_assumption_unsat_does_not_poison_instance(self):
        solver = Solver(2)
        solver.add_clause([1])
        assert solver.solve(assumptions=[-1]) is SatResult.UNSAT
        assert solver.solve() is SatResult.SAT
        assert solver.solve(assumptions=[2]) is SatResult.SAT

    def test_incremental_clause_addition(self):
        solver = Solver(2)
        solver.add_clause([1, 2])
        assert solver.solve() is SatResult.SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is SatResult.UNSAT


class TestConflictBudget:
    def test_budget_returns_unknown_on_hard_instance(self):
        # A PHP instance big enough to need more than one conflict.
        pigeons, holes = 7, 6
        var = lambda i, h: i * holes + h + 1
        clauses = [[var(i, h) for h in range(holes)] for i in range(pigeons)]
        for h in range(holes):
            for i, j in itertools.combinations(range(pigeons), 2):
                clauses.append([-var(i, h), -var(j, h)])
        solver = Solver()
        for c in clauses:
            solver.add_clause(c)
        result = solver.solve(conflict_budget=1)
        assert result in (SatResult.UNKNOWN, SatResult.UNSAT)


class TestEnumeration:
    def test_enumerate_all_models_of_or(self):
        cnf = CNF([[1, 2]])
        models = list(enumerate_models(cnf))
        assert len(models) == 3
        assert all(m[1] or m[2] for m in models)
        assert len({tuple(sorted(m.items())) for m in models}) == 3

    def test_projected_enumeration(self):
        # x1 free, x2 tied to x1; projecting on x1 gives 2 models not 2x2.
        cnf = CNF([[-1, 2], [1, -2]], projection=[1])
        models = list(enumerate_models(cnf))
        assert len(models) == 2

    def test_count_models_with_limit(self):
        cnf = CNF([], num_vars=4, projection=[1, 2, 3, 4])
        assert count_models(cnf) == 16
        assert count_models(cnf, limit=5) == 5

    def test_unsat_enumerates_nothing(self):
        cnf = CNF([[1], [-1]])
        assert list(enumerate_models(cnf)) == []


# -- randomized differential testing vs brute force ---------------------------


def _brute_force_models(clauses, num_vars):
    sols = []
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = dict(zip(range(1, num_vars + 1), bits))
        if all(any((l > 0) == assignment[abs(l)] for l in c) for c in clauses):
            sols.append(bits)
    return sols


@st.composite
def random_cnf(draw, max_vars=6, max_clauses=14, max_len=4):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    n_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    clauses = []
    for _ in range(n_clauses):
        length = draw(st.integers(min_value=1, max_value=max_len))
        clause = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=length,
                max_size=length,
            )
        )
        clauses.append(clause)
    return num_vars, clauses


@given(random_cnf())
@settings(max_examples=120, deadline=None)
def test_solver_agrees_with_brute_force(instance):
    num_vars, clauses = instance
    expected = _brute_force_models(clauses, num_vars)
    result, model = solve(clauses, num_vars=num_vars)
    if expected:
        assert result is SatResult.SAT
        assert all(
            any((l > 0) == model[abs(l)] for l in c) for c in clauses
        )
    else:
        assert result is SatResult.UNSAT


@given(random_cnf())
@settings(max_examples=80, deadline=None)
def test_enumeration_agrees_with_brute_force(instance):
    num_vars, clauses = instance
    expected = _brute_force_models(clauses, num_vars)
    cnf = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
    got = {
        tuple(m[v] for v in range(1, num_vars + 1))
        for m in enumerate_models(cnf)
    }
    assert got == set(expected)


def test_solver_on_tseitin_output():
    # End-to-end: formula -> tseitin -> solver model satisfies the formula.
    x, y, z = Var(1), Var(2), Var(3)
    f = (x | y) & (~x | z) & (y.iff(z))
    cnf = tseitin_cnf(f, num_input_vars=3)
    result, model = solve(cnf.clauses, num_vars=cnf.num_vars)
    assert result is SatResult.SAT
    assert f.evaluate({v: model[v] for v in (1, 2, 3)})


def test_random_3sat_satisfiable_batch():
    rng = random.Random(7)
    for _ in range(10):
        num_vars = 20
        planted = [rng.random() < 0.5 for _ in range(num_vars)]
        clauses = []
        for _ in range(70):
            vs = rng.sample(range(num_vars), 3)
            clause = []
            for v in vs:
                sign = rng.random() < 0.5
                clause.append((v + 1) if sign else -(v + 1))
            # Force the clause to be satisfied by the planted assignment.
            if not any((l > 0) == planted[abs(l) - 1] for l in clause):
                v = vs[0]
                clause[0] = (v + 1) if planted[v] else -(v + 1)
            clauses.append(clause)
        result, model = solve(clauses, num_vars=num_vars)
        assert result is SatResult.SAT
        for clause in clauses:
            assert any((l > 0) == model[abs(l)] for l in clause)
