"""Functional tests of the counting service daemon (PR 8).

Covers, in-process (daemon subprocess scenarios live in
``test_service_chaos.py``):

* wire serialization — ``CountRequest`` / ``CountResult`` /
  ``CountFailure`` / the ``CounterAbort`` family round-trip through JSON
  with provenance intact (``cause`` flattens to a string and rehydrates
  as the right abort type);
* the solve verbs — counts over the wire are bit-identical to the same
  session called directly, failures arrive as the same typed objects with
  the same raise/return contract;
* accmc/diffmc over the wire — trees travel as decision paths and the
  daemon-side metrics match a local evaluation;
* coalescing — identical concurrent requests cost one backend call, every
  waiter gets its own response;
* admission control — a full queue and an exhausted per-client in-flight
  budget answer typed ``overloaded``, never buffer or hang;
* the ``stats`` verb — engine stats + queue depth + per-client counters,
  sharing its engine block with ``mcml --stats``;
* the engine lock — two threads hammering ``solve_many`` on one session
  get bit-identical counts and a consistent ``EngineStats``.
"""

import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.session import MCMLSession
from repro.counting.api import (
    CountFailure,
    CountRequest,
    CountResult,
    EngineStats,
)
from repro.counting.engine import CountingEngine, EngineConfig
from repro.counting.exact import (
    CounterAbort,
    CounterBudgetExceeded,
    CounterTimeout,
    ExactCounter,
)
from repro.counting.service import CountingServer, ServiceClient, ServiceError
from repro.counting.service import protocol
from repro.counting.service.client import ServiceOverloaded
from repro.logic import CNF
from repro.spec import SymmetryBreaking, get_property, translate

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


def wait_until(predicate, timeout: float = 5.0) -> bool:
    """Poll for a condition that trails the response by a GIL slice.

    Counters bump *after* the response line is written, so a client can
    observe its answer a hair before the server finishes bookkeeping.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def property_cnf(name: str, scope: int) -> CNF:
    return translate(
        get_property(name), scope, symmetry=SymmetryBreaking()
    ).cnf


class DelayCounter:
    """Exact counting behind a fixed sleep — a coalescing window you can see."""

    name = "delay-exact"
    capabilities = ExactCounter.capabilities

    def __init__(self, delay: float = 0.4) -> None:
        self._inner = ExactCounter()
        self.delay = delay

    def count(self, cnf: CNF) -> int:
        time.sleep(self.delay)
        return self._inner.count(cnf)

    def decompose(self, cnf: CNF, min_component_vars: int = 2):
        # The copied capabilities claim ``decomposes``; honour them.
        return self._inner.decompose(cnf, min_component_vars=min_component_vars)


@contextmanager
def running_server(session, **kwargs):
    """A started server + drain thread; always drained on the way out."""
    server = CountingServer(session, port=0, **kwargs)
    host, port = server.start()
    runner = threading.Thread(target=server.serve_until_drained, daemon=True)
    runner.start()
    try:
        yield server, host, port
    finally:
        server.initiate_drain("test teardown")
        runner.join(timeout=30)
        assert not runner.is_alive(), "drain did not finish"


@pytest.fixture
def exact_service():
    with MCMLSession(backend="exact") as session:
        with running_server(session) as (server, host, port):
            yield session, server, host, port


# -- wire serialization (satellite: failure taxonomy over JSON) ----------------------


class TestWireSerialization:
    def test_count_request_round_trip(self):
        request = CountRequest.from_cnf(
            CNF(num_vars=4, clauses=[(1, -2), (3,), (-4, 2)]),
            deadline=1.5,
            budget=100,
        )
        again = CountRequest.from_dict(request.to_dict())
        assert again == request
        assert again.signature() == request.signature()

    def test_per_path_request_round_trip(self):
        request = CountRequest.from_cnf(
            CNF(num_vars=4, clauses=[(1, 2)]),
            strategy="per-path",
            cubes=((3,), (-3, 4)),
        )
        again = CountRequest.from_dict(request.to_dict())
        assert again == request

    def test_count_result_round_trip_preserves_big_counts(self):
        result = CountResult(
            value=2**200 + 1,  # past any IEEE double: must travel as text
            exact=True,
            backend="exact",
            source="backend",
            elapsed_seconds=0.25,
            stats_delta=EngineStats(backend_calls=1),
        )
        again = CountResult.from_dict(result.to_dict())
        assert again.value == result.value
        assert again.exact and again.backend == "exact"
        assert again.stats_delta.backend_calls == 1

    @pytest.mark.parametrize(
        "abort, kind",
        [
            (CounterTimeout("past 2.0s"), "timeout"),
            (CounterBudgetExceeded("past 10 nodes"), "budget"),
            (CounterAbort("stop"), "abort"),
        ],
    )
    def test_abort_family_round_trips_by_kind(self, abort, kind):
        payload = abort.to_dict()
        assert payload["kind"] == kind
        again = CounterAbort.from_dict(payload)
        assert type(again) is type(abort)
        assert str(again) == str(abort)

    def test_unknown_abort_kind_degrades_to_base(self):
        again = CounterAbort.from_dict({"kind": "??", "message": "m"})
        assert type(again) is CounterAbort

    def test_count_failure_round_trip_flattens_cause(self):
        failure = CountFailure(
            "timeout",
            "deadline of 2.0s exceeded",
            backend="exact",
            cause=CounterTimeout("past 2.0s"),
            elapsed_seconds=2.01,
            retries=1,
        )
        payload = failure.to_dict()
        assert isinstance(payload["cause"], str)
        again = CountFailure.from_dict(payload)
        assert again.kind == "timeout"
        assert again.backend == "exact"
        assert again.elapsed_seconds == pytest.approx(2.01)
        assert again.retries == 1
        assert isinstance(again.cause, CounterTimeout)

    def test_count_failure_without_cause_stays_causeless(self):
        failure = CountFailure("worker-lost", "worker died", backend="exact")
        again = CountFailure.from_dict(failure.to_dict())
        assert again.kind == "worker-lost"
        assert again.cause is None


# -- solve verbs over the wire -------------------------------------------------------


class TestSolveVerbs:
    def test_solve_bit_identical_to_local(self, exact_service):
        session, _, host, port = exact_service
        cnf = property_cnf("PartialOrder", 3)
        expected = CountingEngine(ExactCounter()).solve(cnf).value
        with ServiceClient(host, port) as client:
            result = client.solve(cnf)
        assert result.value == expected
        assert result.exact
        assert result.backend == "exact"
        assert session.engine.stats.backend_calls == 1

    def test_solve_many_mixes_results_and_failures(self, exact_service):
        _, _, host, port = exact_service
        easy = CNF(num_vars=2, clauses=[(1,), (2,)])
        hard = CountRequest.from_cnf(property_cnf("Transitive", 4), budget=5)
        with ServiceClient(host, port) as client:
            outcomes = client.solve_many([easy, hard], on_failure="return")
        assert isinstance(outcomes[0], CountResult)
        assert outcomes[0].value == 1
        assert isinstance(outcomes[1], CountFailure)
        assert outcomes[1].kind == "budget"
        assert isinstance(outcomes[1].cause, CounterBudgetExceeded)

    def test_remote_failure_contract_matches_engine(self, exact_service):
        _, _, host, port = exact_service
        hard = CountRequest.from_cnf(property_cnf("Transitive", 4), budget=5)
        with ServiceClient(host, port) as client:
            with pytest.raises(CounterBudgetExceeded):
                client.solve(hard)
            failure = client.solve(hard, on_failure="return")
        assert isinstance(failure, CountFailure)
        assert failure.kind == "budget"
        assert failure.backend == "exact"

    def test_retry_is_a_memo_hit_not_a_recount(self, exact_service):
        session, _, host, port = exact_service
        cnf = property_cnf("Reflexive", 3)
        with ServiceClient(host, port) as client:
            first = client.solve(cnf).value
            again = client.solve(cnf)
        assert again.value == first
        assert again.cached
        assert session.engine.stats.backend_calls == 1

    def test_server_injects_default_limits(self):
        with MCMLSession(backend="exact") as session:
            with running_server(session, default_budget=5) as (_, host, port):
                with ServiceClient(host, port) as client:
                    failure = client.solve(
                        property_cnf("Transitive", 4), on_failure="return"
                    )
        assert isinstance(failure, CountFailure)
        assert failure.kind == "budget"

    def test_server_clamps_oversized_deadlines(self):
        with MCMLSession(backend="exact") as session:
            with running_server(session, max_budget=5) as (_, host, port):
                request = CountRequest.from_cnf(
                    property_cnf("Transitive", 4), budget=10**9
                )
                with ServiceClient(host, port) as client:
                    failure = client.solve(request, on_failure="return")
        assert isinstance(failure, CountFailure)
        assert failure.kind == "budget"

    def test_invalid_verb_and_payload_get_typed_errors(self, exact_service):
        _, _, host, port = exact_service
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client._call("frobnicate", {})
            assert excinfo.value.code == "invalid"
            with pytest.raises(ServiceError) as excinfo:
                client._call("solve", {"request": {"clauses": "nope"}})
            assert excinfo.value.code == "invalid"
            # The connection survives typed rejections.
            assert client.count(CNF(num_vars=1, clauses=[(1,)])) == 1

    def test_malformed_line_answered_and_connection_survives(self, exact_service):
        _, _, host, port = exact_service
        sock = socket.create_connection((host, port), timeout=5)
        try:
            sock.sendall(b"this is not json\n")
            reader = protocol.LineReader(sock)
            response = protocol.decode_line(reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "invalid"
            sock.sendall(protocol.encode_line({"id": 1, "verb": "ping"}))
            response = protocol.decode_line(reader.readline())
            assert response["ok"] is True
        finally:
            sock.close()


# -- trees over the wire -------------------------------------------------------------


@pytest.fixture(scope="module")
def trees():
    import numpy as np

    from repro.ml.decision_tree import DecisionTreeClassifier

    rng = np.random.default_rng(19)
    X = rng.integers(0, 2, size=(120, 9))
    y1 = ((X[:, 0] & X[:, 1]) | X[:, 2]).astype(int)
    y2 = (X[:, 0] | (X[:, 3] & X[:, 4])).astype(int)
    first = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y1)
    second = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y2)
    return first, second


class TestMetricVerbs:
    def test_tree_round_trips_through_wire_format(self, trees):
        first, _ = trees
        wire = protocol.tree_to_wire(first)
        again = protocol.tree_from_wire(wire)
        assert again.n_features == first.n_features
        assert again.decision_paths() == first.decision_paths()

    def test_accmc_matches_local_evaluation(self, exact_service, trees):
        session, _, host, port = exact_service
        first, _ = trees
        expected = session.accmc(first, "Reflexive", 3)
        with ServiceClient(host, port) as client:
            remote = client.accmc(first, "Reflexive", 3)
        assert remote["counts"]["tp"] == expected.counts.tp
        assert remote["counts"]["fp"] == expected.counts.fp
        assert remote["counts"]["tn"] == expected.counts.tn
        assert remote["counts"]["fn"] == expected.counts.fn
        assert remote["property"] == "Reflexive"
        assert remote["scope"] == 3

    def test_diffmc_matches_local_evaluation(self, exact_service, trees):
        session, _, host, port = exact_service
        first, second = trees
        expected = session.diffmc(first, second)
        with ServiceClient(host, port) as client:
            remote = client.diffmc(first, second)
        assert (remote["tt"], remote["tf"], remote["ft"], remote["ff"]) == (
            expected.tt,
            expected.tf,
            expected.ft,
            expected.ff,
        )
        assert remote["num_inputs"] == expected.num_inputs

    def test_accmc_unknown_property_is_invalid_not_internal(
        self, exact_service, trees
    ):
        _, server, host, port = exact_service
        first, _ = trees
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.accmc(first, "NoSuchProperty", 3)
        assert excinfo.value.code == "invalid"
        assert server._counters["internal_errors"] == 0


# -- coalescing and admission control ------------------------------------------------


class TestCoalescing:
    def test_identical_concurrent_requests_cost_one_computation(self):
        engine = CountingEngine(DelayCounter(0.5), EngineConfig(workers=1))
        cnf = CNF(num_vars=3, clauses=[(1, 2), (-1, 3)])
        with MCMLSession(engine=engine) as session:
            with running_server(session) as (server, host, port):
                values = []
                errors = []

                def hammer():
                    try:
                        with ServiceClient(host, port) as client:
                            values.append(client.count(cnf))
                    except Exception as exc:  # surface, don't swallow
                        errors.append(exc)

                workers = [threading.Thread(target=hammer) for _ in range(4)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join(timeout=30)
                assert not errors
                assert values == [4, 4, 4, 4]
                assert session.engine.stats.backend_calls == 1
                assert server._counters["coalesced"] == 3
                assert wait_until(lambda: server._counters["served"] == 4)

    def test_queue_full_is_a_typed_overloaded_rejection(self):
        engine = CountingEngine(DelayCounter(0.8), EngineConfig(workers=1))
        with MCMLSession(engine=engine) as session:
            with running_server(session, max_queue=1) as (server, host, port):
                problems = [
                    CNF(num_vars=3, clauses=[(i + 1,)]) for i in range(3)
                ]
                outcomes: dict[int, object] = {}

                def submit(i):
                    time.sleep(0.2 * i)
                    try:
                        with ServiceClient(host, port, retries=0) as client:
                            outcomes[i] = client.count(problems[i])
                    except ServiceOverloaded as exc:
                        outcomes[i] = exc

                workers = [
                    threading.Thread(target=submit, args=(i,)) for i in range(3)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join(timeout=30)
                rejected = [o for o in outcomes.values() if isinstance(o, ServiceOverloaded)]
                served = [o for o in outcomes.values() if isinstance(o, int)]
                assert len(rejected) == 1
                assert len(served) == 2
                assert server._counters["rejected_overloaded"] == 1

    def test_per_client_inflight_budget(self):
        engine = CountingEngine(DelayCounter(0.8), EngineConfig(workers=1))
        with MCMLSession(engine=engine) as session:
            with running_server(session, max_inflight_per_client=1) as (_, host, port):
                sock = socket.create_connection((host, port), timeout=10)
                try:
                    slow = CountRequest.from_cnf(CNF(num_vars=2, clauses=[(1,)]))
                    other = CountRequest.from_cnf(CNF(num_vars=2, clauses=[(2,)]))
                    sock.sendall(
                        protocol.encode_line(
                            {"id": 1, "verb": "solve", "request": slow.to_dict()}
                        )
                        + protocol.encode_line(
                            {"id": 2, "verb": "solve", "request": other.to_dict()}
                        )
                    )
                    reader = protocol.LineReader(sock)
                    first = protocol.decode_line(reader.readline())
                    second = protocol.decode_line(reader.readline())
                    # The budget rejection always lands first (the slow
                    # solve is still counting).
                    assert first["id"] == 2
                    assert first["error"]["code"] == "overloaded"
                    assert first["error"]["retryable"] is True
                    assert second["id"] == 1
                    assert second["ok"] is True
                finally:
                    sock.close()


# -- stats verb ----------------------------------------------------------------------


class TestStats:
    def test_stats_shares_engine_block_with_cli_rendering(self, exact_service):
        session, _, host, port = exact_service
        with ServiceClient(host, port) as client:
            client.count(CNF(num_vars=2, clauses=[(1, 2)]))
            payload = client.stats()
        local = protocol.engine_stats_payload(session)
        assert payload["backend"] == local["backend"]
        assert payload["capabilities"] == local["capabilities"]
        assert payload["engine"] == local["engine"]
        service = payload["service"]
        assert service["queue_depth"] == 0
        assert service["active_connections"] == 1
        assert service["counters"]["served"] >= 1
        (client_stats,) = service["clients"].values()
        assert client_stats["requests"] >= 2  # the solve + the stats call


# -- the engine lock (satellite: documented concurrency contract) --------------------


class TestEngineLock:
    def test_two_threads_hammering_solve_many_stay_bit_identical(self):
        problems = [property_cnf(name, 3) for name in ("Reflexive", "Transitive", "Antisymmetric")]
        with CountingEngine(ExactCounter()) as reference:
            expected = [r.value for r in reference.solve_many(problems)]
        with MCMLSession(backend="exact") as session:
            results: dict[int, list[int]] = {}
            errors: list[Exception] = []

            def hammer(slot):
                try:
                    mine = []
                    for _ in range(5):
                        mine = [r.value for r in session.solve_many(problems)]
                    results[slot] = mine
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert results[0] == expected
            assert results[1] == expected
            # One consistent EngineStats: every problem hit the backend
            # exactly once; every other call was a memo hit.
            assert session.engine.stats.backend_calls == len(problems)
            assert session.engine.stats.count_calls == len(problems) * 10
            assert session.engine.stats.count_hits == session.engine.stats.count_calls - len(problems)


# -- solver lanes (PR 10: concurrent counting lanes) ---------------------------------


def delay_session(delay: float = 0.4) -> MCMLSession:
    """A session over its own DelayCounter engine — one concurrency lane."""
    return MCMLSession(engine=CountingEngine(DelayCounter(delay)))


class TestSolverLanes:
    def test_two_lane_matrix_bit_identical_to_one_lane(self, tmp_path):
        """16 properties x scopes 2-4, two lanes vs one: values may not move."""
        from repro.spec.properties import PROPERTIES

        batch = [
            translate(prop, scope).cnf
            for prop in PROPERTIES
            for scope in (2, 3, 4)
        ]
        with MCMLSession(backend="exact", cache_dir=str(tmp_path / "one")) as session:
            with running_server(session) as (_, host, port):
                with ServiceClient(host, port) as client:
                    one_lane = [r.value for r in client.solve_many(batch)]

        two_cache = str(tmp_path / "two")
        factory = lambda: MCMLSession(backend="exact", cache_dir=two_cache)  # noqa: E731
        two_lane: list[int | None] = [None] * len(batch)
        errors: list[Exception] = []
        with running_server(
            factory(), solver_threads=2, session_factory=factory
        ) as (server, host, port):

            def worker(offset: int) -> None:
                try:
                    with ServiceClient(host, port) as client:
                        for index in range(offset, len(batch), 3):
                            two_lane[index] = client.solve(batch[index]).value
                except Exception as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert wait_until(
                lambda: sum(e["jobs"] for e in server.stats_payload()["service"]["lanes"])
                >= len(batch)
            )
            payload = server.stats_payload()
        assert two_lane == one_lane
        assert payload["service"]["solver_threads"] == 2
        assert len(payload["service"]["lanes"]) == 2

    def test_two_distinct_slow_requests_overlap_in_wall_clock(self):
        """Two 0.4s problems on two lanes must beat 0.8x the serial sum."""
        delay = 0.4
        problems = [
            CNF(num_vars=3, clauses=[(1,), (2, 3)]),
            CNF(num_vars=3, clauses=[(-1,), (2,)]),
        ]
        expected = [ExactCounter().count(p) for p in problems]
        results: list[int | None] = [None] * len(problems)
        errors: list[Exception] = []
        with running_server(
            delay_session(delay),
            solver_threads=2,
            session_factory=lambda: delay_session(delay),
        ) as (server, host, port):

            def worker(index: int) -> None:
                try:
                    with ServiceClient(host, port, request_timeout=30) as client:
                        results[index] = client.solve(problems[index]).value
                except Exception as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            started = time.monotonic()
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(problems))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            elapsed = time.monotonic() - started
            assert not errors
            assert results == expected
            # Sleep releases the GIL, so distinct problems on distinct
            # lanes overlap; serial lanes would take >= 2 * delay.
            assert elapsed < 0.8 * (len(problems) * delay)
            assert wait_until(
                lambda: all(
                    e["jobs"] >= 1
                    for e in server.stats_payload()["service"]["lanes"]
                )
            )

    def test_cross_lane_coalescing_eight_identical_cost_one_backend_call(self):
        """Coalescing is pre-queue: identical concurrent requests collapse
        to one job on one lane even with two lanes draining."""
        sessions = [delay_session(0.4)]

        def factory() -> MCMLSession:
            session = delay_session(0.4)
            sessions.append(session)
            return session

        problem = property_cnf("Transitive", 3)
        expected = ExactCounter().count(problem)
        results: list[int | None] = [None] * 8
        errors: list[Exception] = []
        with running_server(
            sessions[0], solver_threads=2, session_factory=factory
        ) as (_, host, port):

            def worker(index: int) -> None:
                try:
                    with ServiceClient(host, port, request_timeout=30) as client:
                        results[index] = client.solve(problem).value
                except Exception as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert results == [expected] * 8
        # Lane sessions do not share an in-process memo, so one total
        # backend call across them is cross-lane coalescing at work.
        assert (
            sum(s.engine.stats.backend_calls for s in sessions) == 1
        ), [s.engine.stats.backend_calls for s in sessions]

    def test_lane_counters_track_jobs_and_failures(self):
        hard = CountRequest.from_cnf(
            translate(get_property("PartialOrder"), 4).cnf, budget=10
        )
        with MCMLSession(backend="exact") as session:
            with running_server(
                session, solver_threads=2, session_factory=lambda: MCMLSession(backend="exact")
            ) as (server, host, port):
                with ServiceClient(host, port) as client:
                    client.solve(property_cnf("Reflexive", 3))
                    outcome = client.solve(hard, on_failure="return")
                    assert isinstance(outcome, CountFailure)
                    assert outcome.kind == "budget"
                    assert wait_until(
                        lambda: sum(
                            e["failures"]
                            for e in server.stats_payload()["service"]["lanes"]
                        )
                        == 1
                    )
                    payload = client.stats()
        lanes = payload["service"]["lanes"]
        assert len(lanes) == 2
        assert all(set(e) == {"jobs", "served", "failures"} for e in lanes)
        assert sum(e["jobs"] for e in lanes) >= 2
        # The engine block sums the per-lane sessions, so the stats verb
        # keeps one coherent engine story across lanes.
        assert payload["engine"]["backend_calls"] >= 1

    def test_one_lane_without_factory_degenerates_to_the_old_shape(self, exact_service):
        session, server, host, port = exact_service
        with ServiceClient(host, port) as client:
            client.count(property_cnf("Reflexive", 3))
            payload = client.stats()
        assert payload["service"]["solver_threads"] == 1
        assert len(payload["service"]["lanes"]) == 1
        assert payload["engine"] == protocol.engine_stats_payload(session)["engine"]
