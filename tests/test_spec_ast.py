"""Unit tests for the relational AST: concrete and symbolic semantics."""

import numpy as np
import pytest

from repro.logic.formula import iter_assignments
from repro.spec.ast import (
    All,
    AndF,
    Closure,
    ConcreteAlgebra,
    Diff,
    Env,
    Equal,
    Exists,
    Iden,
    IffF,
    ImpliesF,
    In,
    Intersect,
    Join,
    Lone,
    No,
    NotF,
    One,
    OrF,
    Product,
    ReflClosure,
    RelRef,
    SigRef,
    Some,
    Transpose,
    Union,
    VarRef,
    pair_in,
    var_eq,
)
from repro.spec.evaluate import evaluate_bits, evaluate_concrete, matrix_env
from repro.spec.translate import ground, var_id


def env_from(matrix):
    return matrix_env(matrix)


R = RelRef("r")


class TestExpressions:
    def test_relref_and_transpose(self):
        m = [[True, False], [True, True]]
        env = env_from(m)
        assert R.eval(env) == [[True, False], [True, True]]
        assert Transpose(R).eval(env) == [[True, True], [False, True]]

    def test_sigref_is_all_atoms(self):
        env = env_from([[False] * 3 for _ in range(3)])
        assert SigRef().eval(env) == [True, True, True]

    def test_iden(self):
        env = env_from([[False] * 2 for _ in range(2)])
        assert Iden().eval(env) == [[True, False], [False, True]]

    def test_varref_one_hot(self):
        env = env_from([[False] * 3 for _ in range(3)]).bound("s", 1)
        assert VarRef("s").eval(env) == [False, True, False]

    def test_union_intersect_diff(self):
        a = [[True, False], [False, True]]
        env = env_from(a)
        i = Iden()
        assert Union(R, i).eval(env) == [[True, False], [False, True]]
        assert Intersect(R, i).eval(env) == [[True, False], [False, True]]
        env2 = env_from([[False, True], [True, False]])
        assert Union(RelRef("r"), i).eval(env2) == [[True, True], [True, True]]
        assert Intersect(RelRef("r"), i).eval(env2) == [[False, False], [False, False]]
        assert Diff(RelRef("r"), i).eval(env2) == [[False, True], [True, False]]

    def test_join_vec_mat(self):
        # s.r = successors of s.
        m = [[False, True, False], [False, False, True], [False, False, False]]
        env = env_from(m).bound("s", 0)
        assert Join(VarRef("s"), R).eval(env) == [False, True, False]

    def test_join_mat_vec(self):
        # r.t = predecessors of t.
        m = [[False, True, False], [False, False, True], [False, False, False]]
        env = env_from(m).bound("t", 2)
        assert Join(R, VarRef("t")).eval(env) == [False, True, False]

    def test_join_mat_mat_is_composition(self):
        m = [[False, True], [False, False]]
        env = env_from(m)
        assert Join(R, R).eval(env) == [[False, False], [False, False]]
        chain = [[False, True, False], [False, False, True], [False, False, False]]
        env3 = env_from(chain)
        assert Join(R, R).eval(env3) == [
            [False, False, True],
            [False, False, False],
            [False, False, False],
        ]

    def test_product(self):
        env = env_from([[False] * 2 for _ in range(2)]).bound("s", 0).bound("t", 1)
        assert Product(VarRef("s"), VarRef("t")).eval(env) == [
            [False, True],
            [False, False],
        ]

    def test_closure_of_chain(self):
        chain = [[False, True, False], [False, False, True], [False, False, False]]
        env = env_from(chain)
        assert Closure(R).eval(env) == [
            [False, True, True],
            [False, False, True],
            [False, False, False],
        ]

    def test_closure_of_cycle(self):
        cycle = [[False, True], [True, False]]
        env = env_from(cycle)
        assert Closure(R).eval(env) == [[True, True], [True, True]]

    def test_refl_closure(self):
        m = [[False, True], [False, False]]
        env = env_from(m)
        assert ReflClosure(R).eval(env) == [[True, True], [False, True]]

    def test_arity_checks(self):
        arities = {"r": 2}
        assert R.arity(arities) == 2
        assert SigRef().arity(arities) == 1
        assert Join(SigRef(), R).arity(arities) == 1
        assert Product(SigRef(), SigRef()).arity(arities) == 2
        with pytest.raises(TypeError):
            Product(R, R).arity(arities)
        with pytest.raises(TypeError):
            Transpose(SigRef()).arity(arities)
        with pytest.raises(TypeError):
            Union(R, SigRef()).arity(arities)


class TestFormulas:
    def test_in_and_equal(self):
        m = [[True, True], [False, False]]
        assert evaluate_concrete(In(Iden(), R), m) is False
        assert evaluate_concrete(In(Intersect(R, Iden()), R), m) is True
        assert evaluate_concrete(Equal(R, R), m) is True
        assert evaluate_concrete(Equal(R, Transpose(R)), m) is False

    def test_multiplicities(self):
        empty = [[False, False], [False, False]]
        one_pair = [[False, True], [False, False]]
        two_pairs = [[False, True], [True, False]]
        assert evaluate_concrete(No(R), empty)
        assert not evaluate_concrete(Some(R), empty)
        assert evaluate_concrete(Lone(R), empty)
        assert not evaluate_concrete(One(R), empty)
        assert evaluate_concrete(Some(R), one_pair)
        assert evaluate_concrete(One(R), one_pair)
        assert evaluate_concrete(Lone(R), one_pair)
        assert not evaluate_concrete(Lone(R), two_pairs)
        assert not evaluate_concrete(One(R), two_pairs)

    def test_connectives(self):
        m = [[True, False], [False, True]]
        t = Some(R)
        f = No(R)
        assert evaluate_concrete(AndF(t, t), m)
        assert not evaluate_concrete(AndF(t, f), m)
        assert evaluate_concrete(OrF(f, t), m)
        assert evaluate_concrete(NotF(f), m)
        assert evaluate_concrete(ImpliesF(f, f), m)
        assert evaluate_concrete(IffF(t, t), m)
        assert not evaluate_concrete(IffF(t, f), m)

    def test_quantifiers(self):
        # all s | s->s in r on the identity matrix.
        iden = [[True, False], [False, True]]
        assert evaluate_concrete(All(("s",), pair_in(R, "s", "s")), iden)
        off = [[True, False], [False, False]]
        assert not evaluate_concrete(All(("s",), pair_in(R, "s", "s")), off)
        # some s, t | s->t in r
        assert evaluate_concrete(Exists(("s", "t"), pair_in(R, "s", "t")), off)
        empty = [[False, False], [False, False]]
        assert not evaluate_concrete(Exists(("s", "t"), pair_in(R, "s", "t")), empty)

    def test_var_eq(self):
        m = [[False] * 2 for _ in range(2)]
        formula = All(("s", "t"), ImpliesF(var_eq("s", "t"), var_eq("t", "s")))
        assert evaluate_concrete(formula, m)

    def test_evaluate_bits(self):
        formula = All(("s",), pair_in(R, "s", "s"))
        assert evaluate_bits(formula, [1, 0, 0, 1], 2)
        assert not evaluate_bits(formula, [1, 0, 0, 0], 2)
        with pytest.raises(ValueError):
            evaluate_bits(formula, [1, 0, 0], 2)

    def test_matrix_env_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_env([[True, False]])


class TestSymbolicGrounding:
    """Symbolic evaluation must agree with concrete evaluation pointwise."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_ground_matches_concrete_on_all_matrices(self, n):
        formulas = [
            All(("s",), pair_in(R, "s", "s")),
            All(("s", "t"), ImpliesF(pair_in(R, "s", "t"), pair_in(R, "t", "s"))),
            Exists(("s",), pair_in(R, "s", "s")),
            All(("s",), One(Join(VarRef("s"), R))),
            In(Join(R, R), R),
            Some(Closure(R)),
            Equal(Transpose(R), R),
        ]
        for formula in formulas:
            grounded = ground(formula, n)
            for assignment in iter_assignments(range(1, n * n + 1)):
                bits = [assignment[var_id(i, j, n)] for i in range(n) for j in range(n)]
                matrix = [
                    [bits[i * n + j] for j in range(n)] for i in range(n)
                ]
                assert grounded.evaluate(assignment) == evaluate_concrete(
                    formula, matrix
                ), f"{formula} disagrees on {matrix}"

    def test_grounded_formula_uses_primary_vars_only(self):
        formula = All(("s", "t"), pair_in(R, "s", "t"))
        grounded = ground(formula, 3)
        assert grounded.variables() <= set(range(1, 10))
