"""Property definitions vs closed forms, vectorised masks, and each other.

These tests pin the reverse-engineered definitions of DESIGN.md §2 to the
published Table 1 numbers: for every property, the grounded CNF's exact
model count at small scopes must equal the closed form, the closed form
matches Table 1's ProjMC/NoSymBr column at paper scopes (tested in
``test_counting.py``), and the AST, CNF and numpy-mask semantics agree
matrix-by-matrix.
"""

import numpy as np
import pytest

from repro.counting import brute_force_count, closed_form_count, exact_count
from repro.counting.brute import iter_assignment_blocks
from repro.spec import PROPERTIES, get_property, property_names, translate
from repro.spec.evaluate import evaluate_concrete
from repro.spec.matrices import bits_to_matrices, matrices_to_bits, property_mask
from repro.spec.translate import var_id


class TestRegistry:
    def test_sixteen_properties(self):
        assert len(PROPERTIES) == 16

    def test_names_match_paper(self):
        assert property_names() == [
            "Antisymmetric", "Bijective", "Connex", "Equivalence", "Function",
            "Functional", "Injective", "Irreflexive", "NonStrictOrder",
            "PartialOrder", "PreOrder", "Reflexive", "StrictOrder",
            "Surjective", "TotalOrder", "Transitive",
        ]

    def test_lookup_case_insensitive(self):
        assert get_property("partialorder").name == "PartialOrder"
        with pytest.raises(KeyError):
            get_property("nope")

    def test_paper_scopes_match_table1(self):
        scopes = {p.name: p.paper_scope for p in PROPERTIES}
        assert scopes["Antisymmetric"] == 5
        assert scopes["Bijective"] == 14
        assert scopes["Equivalence"] == 20
        assert scopes["TotalOrder"] == 13
        assert scopes["Transitive"] == 6


@pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.name)
class TestSemanticsAgreement:
    """AST evaluator == CNF translation == numpy mask, for every matrix."""

    def test_cnf_count_matches_closed_form_n2(self, prop):
        problem = translate(prop, 2)
        assert exact_count(problem.cnf) == closed_form_count(prop.oracle, 2)

    def test_cnf_count_matches_closed_form_n3(self, prop):
        problem = translate(prop, 3)
        assert exact_count(problem.cnf) == closed_form_count(prop.oracle, 3)

    def test_mask_count_matches_closed_form_n3(self, prop):
        mask_fn = property_mask(prop.oracle)
        total = 0
        for block in iter_assignment_blocks(9):
            total += int(mask_fn(bits_to_matrices(block, 3)).sum())
        assert total == closed_form_count(prop.oracle, 3)

    def test_ast_agrees_with_mask_n3(self, prop):
        mask_fn = property_mask(prop.oracle)
        rng = np.random.default_rng(hash(prop.name) % 2**32)
        batch = rng.random((64, 3, 3)) < 0.5
        expected = mask_fn(batch)
        for matrix, want in zip(batch, expected):
            assert evaluate_concrete(prop.formula, matrix) == bool(want)


class TestVariableNumbering:
    def test_var_id_row_major(self):
        assert var_id(0, 0, 3) == 1
        assert var_id(0, 2, 3) == 3
        assert var_id(1, 0, 3) == 4
        assert var_id(2, 2, 3) == 9
        with pytest.raises(ValueError):
            var_id(3, 0, 3)

    def test_feature_vector_alignment(self):
        """Bit k of the feature vector is CNF variable k+1."""
        prop = get_property("Reflexive")
        problem = translate(prop, 3)
        # The diagonal positions in row-major order are 0, 4, 8 → vars 1, 5, 9.
        mats = np.zeros((1, 3, 3), dtype=bool)
        np.fill_diagonal(mats[0], True)
        bits = matrices_to_bits(mats)[0]
        assignment = {k + 1: bool(bits[k]) for k in range(9)}
        assert problem.formula.evaluate(assignment)


class TestBruteVsCnfAtScope4:
    """Spot-check a few properties at n=4 (16 primary variables)."""

    @pytest.mark.parametrize(
        "name", ["Equivalence", "PartialOrder", "Function", "TotalOrder"]
    )
    def test_counts_agree(self, name):
        prop = get_property(name)
        problem = translate(prop, 4)
        want = closed_form_count(prop.oracle, 4)
        assert exact_count(problem.cnf) == want
        # Aux-free check via the numpy mask as well.
        mask_fn = property_mask(prop.oracle)
        total = 0
        for block in iter_assignment_blocks(16):
            total += int(mask_fn(bits_to_matrices(block, 4)).sum())
        assert total == want
