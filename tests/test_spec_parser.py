"""Parser tests, centred on the paper's Figure 1 specification."""

import pytest

from repro.counting import exact_count
from repro.spec import SymmetryBreaking, translate
from repro.spec.evaluate import evaluate_concrete
from repro.spec.parser import AlloySyntaxError, parse, parse_predicate, tokenize

FIGURE_1 = """
sig S { r: set S } // r is a binary relation of type SxS
pred Reflexive() { all s: S | s->s in r }
pred Symmetric() {
  all s, t: S | s->t in r implies t->s in r }
pred Transitive() { all s, t, u: S |
  s->t in r and t->u in r implies s->u in r }
pred Equivalence() {
  Reflexive and Symmetric and Transitive }
E4: run Equivalence for exactly 4 S
"""


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("sig S { r: set S }")]
        assert kinds == ["keyword", "name", "{", "name", ":", "keyword", "name", "}", "eof"]

    def test_comments_stripped(self):
        tokens = tokenize("// line comment\n/* block\ncomment */ pred")
        assert [t.text for t in tokens] == ["pred", ""]

    def test_compound_operators(self):
        texts = [t.kind for t in tokenize("-> => <=> != && ||")]
        assert texts == ["arrow", "=>", "<=>", "!=", "&&", "||", "eof"]

    def test_unexpected_character(self):
        with pytest.raises(AlloySyntaxError, match="line 1"):
            tokenize("pred @")


class TestFigure1:
    def test_parses(self):
        spec = parse(FIGURE_1)
        assert spec.sig_name == "S"
        assert list(spec.relations) == ["r"]
        assert set(spec.predicates) == {
            "Reflexive", "Symmetric", "Transitive", "Equivalence",
        }
        assert len(spec.runs) == 1
        run = spec.runs[0]
        assert (run.label, run.predicate, run.scope, run.exact) == (
            "E4", "Equivalence", 4, True,
        )

    def test_equivalence_semantics(self):
        formula = parse_predicate(FIGURE_1, "Equivalence")
        identity = [[True, False], [False, True]]
        assert evaluate_concrete(formula, identity)
        not_symmetric = [[True, True], [False, True]]
        assert not evaluate_concrete(formula, not_symmetric)

    def test_executing_e4_enumerates_figure2(self):
        """Running the parsed command reproduces Figure 2: 5 solutions."""
        spec = parse(FIGURE_1)
        run = spec.runs[0]
        problem = translate(
            spec.formula(run.predicate), run.scope, symmetry=SymmetryBreaking()
        )
        assert exact_count(problem.cnf) == 5

    def test_parsed_equivalence_matches_builtin(self):
        from repro.spec import get_property

        parsed = parse_predicate(FIGURE_1, "Equivalence")
        builtin = get_property("Equivalence").formula
        for n in (2, 3):
            a = translate(parsed, n)
            b = translate(builtin, n)
            assert exact_count(a.cnf) == exact_count(b.cnf)


class TestGrammarCoverage:
    def test_multiplicity_formulas(self):
        source = """
        sig S { r: set S }
        pred P() { some r and not no r and lone r & iden }
        """
        formula = parse_predicate(source, "P")
        assert evaluate_concrete(formula, [[True, False], [False, False]])

    def test_quantifier_vs_multiplicity_some(self):
        source = """
        sig S { r: set S }
        pred Q() { some s: S | s->s in r }
        pred M() { some r }
        """
        spec = parse(source)
        diag = [[True, False], [False, False]]
        off = [[False, True], [False, False]]
        assert evaluate_concrete(spec.formula("Q"), diag)
        assert not evaluate_concrete(spec.formula("Q"), off)
        assert evaluate_concrete(spec.formula("M"), off)

    def test_expression_operators(self):
        source = """
        sig S { r: set S }
        pred P() { ~r = r and ^r in *r and (r + iden) - iden in r + iden }
        """
        formula = parse_predicate(source, "P")
        symmetric = [[False, True], [True, False]]
        assert evaluate_concrete(formula, symmetric)

    def test_join_and_product(self):
        source = """
        sig S { r: set S }
        pred F() { all s: S | one s.r }
        pred I() { all t: S | one r.t }
        """
        spec = parse(source)
        permutation = [[False, True], [True, False]]
        assert evaluate_concrete(spec.formula("F"), permutation)
        assert evaluate_concrete(spec.formula("I"), permutation)
        partial = [[False, True], [False, False]]
        assert not evaluate_concrete(spec.formula("F"), partial)

    def test_not_in(self):
        source = """
        sig S { r: set S }
        pred Irreflexive() { all s: S | s->s not in r }
        """
        formula = parse_predicate(source, "Irreflexive")
        assert evaluate_concrete(formula, [[False, True], [True, False]])
        assert not evaluate_concrete(formula, [[True, False], [False, False]])

    def test_neq_and_connectives(self):
        source = """
        sig S { r: set S }
        pred Anti() { all s, t: S | (s->t in r && t->s in r) => s = t }
        pred Weird() { no r || some r }
        pred Both() { Anti <=> Anti }
        """
        spec = parse(source)
        assert evaluate_concrete(spec.formula("Anti"), [[True, False], [False, True]])
        assert evaluate_concrete(spec.formula("Weird"), [[False] * 2 for _ in range(2)])
        assert evaluate_concrete(spec.formula("Both"), [[False] * 2 for _ in range(2)])

    def test_facts_conjoin(self):
        source = """
        sig S { r: set S }
        fact { all s: S | s->s in r }
        pred P() { some r }
        """
        spec = parse(source)
        identity = [[True, False], [False, True]]
        missing_diag = [[False, True], [True, False]]
        assert evaluate_concrete(spec.formula("P"), identity)
        assert not evaluate_concrete(spec.formula("P"), missing_diag)

    def test_univ_and_sig_are_sets(self):
        source = """
        sig S { r: set S }
        pred P() { S.r in univ }
        """
        formula = parse_predicate(source, "P")
        assert evaluate_concrete(formula, [[True, False], [False, False]])


class TestErrors:
    def test_unknown_name(self):
        with pytest.raises(AlloySyntaxError, match="unknown name"):
            parse("sig S { r: set S } pred P() { some q }")

    def test_unknown_predicate_lookup(self):
        spec = parse("sig S { r: set S } pred P() { some r }")
        with pytest.raises(KeyError, match="unknown predicate"):
            spec.formula("Q")

    def test_field_must_target_sig(self):
        with pytest.raises(AlloySyntaxError, match="must target"):
            parse("sig S { r: set T }")

    def test_two_sigs_rejected(self):
        with pytest.raises(AlloySyntaxError, match="single signature"):
            parse("sig S { r: set S } sig T { q: set T }")

    def test_empty_pred_body(self):
        with pytest.raises(AlloySyntaxError, match="empty body"):
            parse("sig S { r: set S } pred P() { }")

    def test_missing_comparison(self):
        with pytest.raises(AlloySyntaxError, match="expected 'in'"):
            parse("sig S { r: set S } pred P() { r }")

    def test_run_with_unknown_sig(self):
        with pytest.raises(AlloySyntaxError, match="unknown sig"):
            parse("sig S { r: set S } pred P() { some r } run P for 3 T")

    def test_error_carries_position(self):
        try:
            parse("sig S { r: set S }\npred P() { some q }")
        except AlloySyntaxError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected AlloySyntaxError")
