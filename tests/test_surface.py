"""CountingSurface conformance: one client surface, three deployments (PR 10).

:class:`~repro.counting.api.CountingSurface` is the counting API drivers
program against; :class:`MCMLSession` (in-process),
:class:`ServiceClient` (one daemon) and :class:`ShardedClient` (a
consistent-hash cluster) all declare it.  This module runs the *same*
battery over all three, so "pick by deployment, not by API" is a tested
sentence, not a docstring:

* each implementation passes ``isinstance(..., CountingSurface)``;
* ``solve`` / ``solve_many`` / ``count`` / ``count_many`` are
  bit-identical to a bare :class:`ExactCounter`, order preserved;
* the ``on_failure`` contract — ``"raise"`` raises the typed
  :class:`CountFailure`, ``"return"`` yields it in place;
* ``stats()`` exposes the engine-counter block under ``"engine"``;
* ``close()`` is idempotent and the context-manager protocol works.

The drivers' side of the same redesign lives in
``test_core_accmc_diffmc.py`` (AccMC/DiffMC accept any surface); the
per-deployment depth lives in ``test_service.py`` / ``test_cluster.py``.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.core.session import MCMLSession
from repro.counting.api import CountFailure, CountingSurface, CountRequest, CountResult
from repro.counting.exact import CounterBudgetExceeded, ExactCounter
from repro.counting.service import CountingServer, ServiceClient, ShardedClient
from repro.experiments.config import ExperimentConfig
from repro.spec import SymmetryBreaking, get_property, translate

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

SURFACES = ("session", "service", "cluster")


def property_cnf(name: str, scope: int = 3):
    return translate(get_property(name), scope, symmetry=SymmetryBreaking()).cnf


@contextmanager
def _served(session):
    server = CountingServer(session, port=0)
    host, port = server.start()
    runner = threading.Thread(target=server.serve_until_drained, daemon=True)
    runner.start()
    try:
        yield host, port
    finally:
        server.initiate_drain("test teardown")
        runner.join(timeout=30)
        assert not runner.is_alive(), "drain did not finish"


@contextmanager
def surface_under_test(kind: str, tmp_path):
    """One ready-to-count CountingSurface of the requested deployment."""
    if kind == "session":
        with MCMLSession(backend="exact", cache_dir=str(tmp_path / "s")) as session:
            yield session
    elif kind == "service":
        with MCMLSession(backend="exact", cache_dir=str(tmp_path / "d")) as session:
            with _served(session) as (host, port):
                with ServiceClient(host, port) as client:
                    yield client
    else:
        sessions = [
            ExperimentConfig(cache_dir=str(tmp_path / f"shard-{i}")).session()
            for i in range(2)
        ]
        servers, shards = [], []
        try:
            for session in sessions:
                server = CountingServer(session, port=0)
                shards.append(server.start())
                threading.Thread(
                    target=server.serve_until_drained, daemon=True
                ).start()
                servers.append(server)
            with ShardedClient(shards) as cluster:
                yield cluster
        finally:
            for server in servers:
                server.initiate_drain("test teardown")
                server.close()


@pytest.fixture(params=SURFACES)
def surface(request, tmp_path):
    with surface_under_test(request.param, tmp_path) as impl:
        yield impl


class TestCountingSurfaceConformance:
    def test_declares_the_protocol(self, surface):
        assert isinstance(surface, CountingSurface)

    def test_counting_verbs_bit_identical_and_ordered(self, surface):
        names = ("Reflexive", "Transitive", "Antisymmetric", "PartialOrder")
        problems = [property_cnf(name) for name in names]
        truths = [ExactCounter().count(p) for p in problems]
        result = surface.solve(problems[0])
        assert isinstance(result, CountResult)
        assert result.value == truths[0]
        many = surface.solve_many(problems)
        assert [r.value for r in many] == truths
        assert all(isinstance(r, CountResult) for r in many)
        assert surface.count(problems[1]) == truths[1]
        assert surface.count_many(problems) == truths

    def test_on_failure_contract(self, surface):
        hard = CountRequest.from_cnf(
            translate(get_property("PartialOrder"), 4).cnf, budget=10
        )
        # ``"raise"`` re-raises the failure's original typed abort.
        with pytest.raises(CounterBudgetExceeded):
            surface.solve(hard)
        returned = surface.solve(hard, on_failure="return")
        assert isinstance(returned, CountFailure)
        assert returned.kind == "budget"
        # solve_many keeps positions: the failure sits where its problem was.
        easy = property_cnf("Reflexive")
        mixed = surface.solve_many([easy, hard], on_failure="return")
        assert isinstance(mixed[0], CountResult)
        assert isinstance(mixed[1], CountFailure)

    def test_stats_exposes_the_engine_block(self, surface):
        surface.count(property_cnf("Reflexive"))
        payload = surface.stats()
        assert isinstance(payload, dict)
        engine = payload["engine"]
        assert isinstance(engine["backend_calls"], int)
        assert engine["count_calls"] >= 1

    def test_close_is_idempotent(self, surface):
        surface.count(property_cnf("Reflexive"))
        surface.close()
        surface.close()  # a second close must be a no-op, not an error


def test_drivers_accept_any_surface(tmp_path):
    """AccMC routes its counting verbs through an explicit surface."""
    from repro.core.accmc import AccMC, GroundTruth
    from repro.core.pipeline import MCMLPipeline

    pipeline = MCMLPipeline(seed=0)
    prop = get_property("PartialOrder")
    dataset = pipeline.make_dataset(prop, 3)
    train, _ = dataset.split(0.75, rng=0)
    tree = pipeline.train("DT", train)
    truth = GroundTruth(prop, 3)

    with MCMLSession(backend="exact") as session:
        local = AccMC(engine=session.engine).evaluate(tree, truth)
    with MCMLSession(backend="exact") as session:
        with _served(session) as (host, port):
            with ServiceClient(host, port) as client:
                with MCMLSession(backend="exact") as compile_side:
                    remote = AccMC(
                        engine=compile_side.engine, surface=client
                    ).evaluate(tree, truth)
    assert remote.accuracy == local.accuracy
    assert remote.counts == local.counts
