"""Dataset generation and split tests."""

import numpy as np
import pytest

from repro.counting import closed_form_count
from repro.data import (
    Dataset,
    enumerate_positive_bits,
    generate_dataset,
    sample_negative_bits,
)
from repro.data.dataset import PAPER_SPLIT_RATIOS
from repro.spec import SymmetryBreaking, get_property
from repro.spec.evaluate import evaluate_bits


class TestPositiveEnumeration:
    @pytest.mark.parametrize("name", ["Reflexive", "Function", "Equivalence"])
    def test_bounded_exhaustive_count(self, name):
        prop = get_property(name)
        bits = enumerate_positive_bits(prop, 3)
        assert len(bits) == closed_form_count(prop.oracle, 3)
        assert bits.shape[1] == 9

    def test_every_row_satisfies_property(self):
        prop = get_property("PartialOrder")
        bits = enumerate_positive_bits(prop, 3)
        for row in bits[:50]:
            assert evaluate_bits(prop.formula, row.tolist(), 3)

    def test_brute_and_sat_enumerate_same_set(self):
        prop = get_property("PreOrder")
        brute = enumerate_positive_bits(prop, 3, method="brute")
        sat = enumerate_positive_bits(prop, 3, method="sat")
        assert {r.tobytes() for r in brute} == {r.tobytes() for r in sat}

    def test_brute_and_sat_agree_with_symmetry(self):
        prop = get_property("Equivalence")
        sb = SymmetryBreaking("adjacent")
        brute = enumerate_positive_bits(prop, 3, symmetry=sb, method="brute")
        sat = enumerate_positive_bits(prop, 3, symmetry=sb, method="sat")
        assert {r.tobytes() for r in brute} == {r.tobytes() for r in sat}
        assert len(brute) == 3  # F(4)

    def test_limit(self):
        prop = get_property("Reflexive")
        bits = enumerate_positive_bits(prop, 3, limit=10)
        assert len(bits) == 10

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            enumerate_positive_bits(get_property("Reflexive"), 3, method="psychic")


class TestNegativeSampling:
    def test_negatives_fail_the_property(self):
        prop = get_property("Equivalence")
        negatives = sample_negative_bits(prop, 3, 100, rng=0)
        assert negatives.shape == (100, 9)
        for row in negatives[:30]:
            assert not evaluate_bits(prop.formula, row.tolist(), 3)

    def test_negatives_are_distinct(self):
        negatives = sample_negative_bits(get_property("Reflexive"), 3, 200, rng=1)
        assert len({r.tobytes() for r in negatives}) == 200

    def test_exclusion(self):
        prop = get_property("Irreflexive")
        first = sample_negative_bits(prop, 2, 4, rng=2)
        second = sample_negative_bits(prop, 2, 4, rng=2, exclude=first)
        overlap = {r.tobytes() for r in first} & {r.tobytes() for r in second}
        assert not overlap

    def test_impossible_request_raises(self):
        # Scope 2 has only 16 matrices; 9 are reflexive-negative... asking
        # for far more distinct negatives than exist must fail cleanly.
        with pytest.raises(RuntimeError):
            sample_negative_bits(get_property("Reflexive"), 2, 50, rng=0, max_batches=20)


class TestGenerateDataset:
    def test_balanced_by_default(self):
        dataset = generate_dataset(get_property("Function"), 3, rng=0)
        assert dataset.num_positive == closed_form_count("function", 3)
        assert dataset.num_negative == dataset.num_positive

    def test_negative_ratio(self):
        dataset = generate_dataset(
            get_property("Function"), 3, negative_ratio=2.0, rng=0
        )
        assert dataset.num_negative == 2 * dataset.num_positive

    def test_max_positives_subsamples(self):
        dataset = generate_dataset(
            get_property("Reflexive"), 3, max_positives=20, rng=0
        )
        assert dataset.num_positive == 20

    def test_labels_are_correct(self):
        prop = get_property("Transitive")
        dataset = generate_dataset(prop, 2, rng=3)
        for row, label in zip(dataset.X, dataset.y):
            assert evaluate_bits(prop.formula, row.tolist(), 2) == bool(label)

    def test_symmetry_recorded(self):
        dataset = generate_dataset(
            get_property("Equivalence"), 3, symmetry=SymmetryBreaking(), rng=0
        )
        assert dataset.symmetry == "adjacent"
        assert dataset.num_positive == 3

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            generate_dataset(get_property("Reflexive"), 3, negative_ratio=0)


class TestDatasetContainer:
    def _tiny(self):
        X = np.arange(40, dtype=np.uint8).reshape(10, 4) % 2
        y = np.array([0, 1] * 5)
        return Dataset(X=X, y=y, scope=2, property_name="Test")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(X=np.zeros((4, 5)), y=np.zeros(4), scope=2, property_name="x")
        with pytest.raises(ValueError):
            Dataset(X=np.zeros((4, 4)), y=np.zeros(3), scope=2, property_name="x")

    def test_split_no_overlap_and_sizes(self):
        dataset = self._tiny()
        train, test = dataset.split(0.5, rng=0)
        assert len(train) + len(test) == len(dataset)
        train_rows = {bytes(r) + bytes([l]) for r, l in zip(train.X, train.y)}
        # Rows may repeat in X; verify by index accounting instead.
        assert len(train) == 5 or abs(len(train) - 5) <= 1

    def test_stratified_split_keeps_both_classes(self):
        dataset = self._tiny()
        train, test = dataset.split(0.2, rng=1)
        assert set(np.unique(train.y)) == {0, 1}
        assert set(np.unique(test.y)) == {0, 1}

    @pytest.mark.parametrize("fraction", PAPER_SPLIT_RATIOS)
    def test_paper_ratios_all_valid(self, fraction):
        prop = get_property("Function")
        dataset = generate_dataset(prop, 3, rng=0)
        train, test = dataset.split(fraction, rng=0)
        assert len(train) > 0 and len(test) > 0
        assert set(np.unique(train.y)) == {0, 1}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            self._tiny().split(0.0)
        with pytest.raises(ValueError):
            self._tiny().split(1.0)

    def test_subsample(self):
        dataset = self._tiny()
        small = dataset.subsample(4, rng=0)
        assert len(small) <= 5  # stratified rounding may keep one extra
        assert dataset.subsample(100, rng=0) is dataset

    def test_save_load_roundtrip(self, tmp_path):
        dataset = generate_dataset(
            get_property("Equivalence"), 3, symmetry=SymmetryBreaking(), rng=0
        )
        path = tmp_path / "ds.npz"
        dataset.save(path)
        loaded = Dataset.load(path)
        assert (loaded.X == dataset.X).all()
        assert (loaded.y == dataset.y).all()
        assert loaded.scope == dataset.scope
        assert loaded.property_name == dataset.property_name
        assert loaded.symmetry == "adjacent"
