"""Backend conformance suite: every registry entry honours its contract.

One parametrized module runs every registered backend over the 16-property
× scope 2–4 matrix (each backend counting through the representation its
declared capabilities advertise), asserting bit-identity of exact backends
against the closed-form oracles, the (ε, δ) envelope for approximate ones,
and — flag by flag — that the declared :class:`Capabilities` match actual
behaviour: formula counting, auxiliary-variable support, clone
determinism, component-cache ownership, engine store/fan-out gating.

A new backend is a registry entry plus a green run of this module; a
capability flag that lies fails here before it can mis-route the engine.
The module also keeps the counting/core packages grep-clean of
``hasattr``-based capability sniffing (the API v2 redesign's invariant).
"""

import pickle
from pathlib import Path

import pytest

from repro.core.pipeline import MCMLPipeline
from repro.core.tree2cnf import label_region_cnf
from repro.counting import (
    Capabilities,
    CountingEngine,
    EngineConfig,
    ExactCounter,
    closed_form_count,
)
from repro.counting.api import (
    available_backends,
    backend_aliases,
    backend_capabilities,
    capabilities_of,
    make_backend,
)
from repro.spec import SymmetryBreaking, get_property, translate
from repro.spec.properties import PROPERTIES

BACKENDS = available_backends()

#: Attribute-absence sentinel (this suite never uses hasattr either).
_MISSING = object()


def _count_via_capabilities(backend, problem, num_primary):
    """Count a translated problem through the backend's declared surface."""
    caps = backend.capabilities
    if caps.counts_formulas:
        return backend.count_formula(problem.formula, num_primary)
    if caps.supports_projection:
        return backend.count(problem.cnf)
    return None  # auxiliary-free backends are covered by the region tests


class TestRegistry:
    def test_lists_the_expected_backends(self):
        assert BACKENDS == sorted(
            ["exact", "legacy", "brute", "bdd", "compiled", "approxmc", "composite"]
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_constructs_and_declares(self, name):
        backend = make_backend(name)
        assert isinstance(backend.name, str) and backend.name
        assert isinstance(backend.capabilities, Capabilities)
        assert callable(backend.count)
        # The registry's capability view equals the instance's declaration.
        assert backend_capabilities(name) == backend.capabilities
        assert capabilities_of(backend) == backend.capabilities

    @pytest.mark.parametrize("name", BACKENDS)
    def test_aliases_resolve_to_same_class(self, name):
        backend = make_backend(name)
        for alias in backend_aliases(name):
            assert type(make_backend(alias)) is type(backend)

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ValueError, match="exact"):
            make_backend("quantum")


class TestMatrixConformance:
    """16 properties × scopes 2–4, each backend via its declared surface."""

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("scope", (2, 3, 4))
    @pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.name)
    def test_against_closed_forms(self, name, scope, prop):
        caps = backend_capabilities(name)
        if not caps.counts_formulas and not caps.supports_projection:
            pytest.skip("auxiliary-free backend: covered by the region suite")
        if name == "approxmc" and scope > 3:
            pytest.skip("approximate envelope is pinned at scopes 2-3 (runtime)")
        backend = make_backend(name)
        problem = translate(prop, scope)
        value = _count_via_capabilities(backend, problem, scope * scope)
        truth = closed_form_count(prop.oracle, scope)
        if caps.exact:
            assert value == truth
        elif truth == 0:
            assert value == 0
        else:
            # Deterministic under the fixed seed; the published (ε, δ)
            # bound is |est - C| <= ε·C with ε = 0.8.
            assert truth / 1.8 <= value <= truth * 1.8

    @pytest.mark.parametrize("name", [n for n in BACKENDS if backend_capabilities(n).exact])
    def test_symmetry_broken_slice_agrees_across_exact_backends(self, name):
        """Exact backends are interchangeable on symmetry-constrained φ too."""
        caps = backend_capabilities(name)
        backend = make_backend(name)
        reference = ExactCounter()
        for prop_name in ("Reflexive", "Antisymmetric", "PartialOrder"):
            problem = translate(get_property(prop_name), 3, symmetry=SymmetryBreaking())
            value = _count_via_capabilities(backend, problem, 9)
            if value is None:
                pytest.skip("auxiliary-free backend")
            assert value == reference.count(problem.cnf)


@pytest.fixture(scope="module")
def tree_regions():
    """Auxiliary-free CNFs every backend's CNF path must serve: DT regions."""
    pipeline = MCMLPipeline(seed=0)
    prop = get_property("PartialOrder")
    dataset = pipeline.make_dataset(prop, 3)
    train, _ = dataset.split(0.75, rng=0)
    tree = pipeline.train("DT", train)
    paths = tree.decision_paths()
    return [label_region_cnf(paths, label, 9) for label in (0, 1)]


class TestCapabilityFlagsMatchBehaviour:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_counts_formulas_flag(self, name):
        backend = make_backend(name)
        assert backend.capabilities.counts_formulas == callable(
            getattr(backend, "count_formula", None)
        )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_supports_projection_flag(self, name):
        """Flag on: auxiliary CNFs count correctly.  Off: they are rejected."""
        backend = make_backend(name)
        problem = translate(get_property("PartialOrder"), 3)
        assert problem.cnf.aux_vars()  # the probe must actually have auxiliaries
        if backend.capabilities.supports_projection:
            value = backend.count(problem.cnf)
            if backend.capabilities.exact:
                assert value == closed_form_count("partialorder", 3)
        else:
            with pytest.raises(ValueError):
                backend.count(problem.cnf)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_region_cnfs_count_identically(self, name, tree_regions):
        """Auxiliary-free CNFs are common ground: every exact backend agrees."""
        backend = make_backend(name)
        if not backend.capabilities.exact:
            pytest.skip("approximate backends are pinned by the envelope test")
        reference = ExactCounter()
        for region in tree_regions:
            assert backend.count(region) == reference.count(region)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_parallel_safe_flag_means_clone_determinism(self, name, tree_regions):
        backend = make_backend(name)
        if not backend.capabilities.parallel_safe:
            pytest.skip("backend declares itself unsafe to clone-fan-out")
        clone = pickle.loads(pickle.dumps(backend))
        for region in tree_regions:
            assert clone.count(region) == backend.count(region)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_conditions_cubes_flag(self, name, tree_regions):
        """Flag on: ``compile`` yields a circuit whose conditioning is
        bit-identical to conjunction counting.  Off: no ``compile``."""
        backend = make_backend(name)
        caps = backend.capabilities
        compile_attr = getattr(backend, "compile", _MISSING)
        assert caps.conditions_cubes == (compile_attr is not _MISSING)
        if not caps.conditions_cubes:
            return
        assert caps.exact  # conditioned sub-counts are summed and persisted
        for region in tree_regions:
            circuit = backend.compile(region)
            assert circuit.condition(()) == ExactCounter().count(region)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_decomposes_flag(self, name):
        """Flag on: ``decompose`` returns a split whose counts multiply
        back to the whole bit-exactly.  Off: no ``decompose`` surface."""
        backend = make_backend(name)
        caps = backend.capabilities
        decompose_attr = getattr(backend, "decompose", _MISSING)
        assert caps.decomposes == (decompose_attr is not _MISSING)
        if not caps.decomposes:
            return
        assert caps.exact  # fan-out multiplies sub-counts: exact only
        # Antisymmetry at scope 4: C(4,2) independent 2-variable components.
        problem = translate(get_property("Antisymmetric"), 4)
        split = backend.decompose(problem.cnf)
        assert split is not None
        multiplier, subs = split
        assert len(subs) >= 2
        product = multiplier
        for sub in subs:
            product *= backend.count(sub)
        assert product == backend.count(problem.cnf)
        # A connected problem declines: callers fall through to count().
        connected = translate(get_property("PartialOrder"), 3)
        assert backend.decompose(connected.cnf) is None

    @pytest.mark.parametrize("name", BACKENDS)
    def test_owns_component_cache_flag(self, name):
        backend = make_backend(name)
        has_attr = getattr(backend, "component_cache", _MISSING) is not _MISSING
        assert backend.capabilities.owns_component_cache == has_attr

    @pytest.mark.parametrize("name", BACKENDS)
    def test_exact_flag_matches_historical_attr(self, name):
        backend = make_backend(name)
        assert backend.capabilities.exact == bool(getattr(backend, "exact", False))

    @pytest.mark.parametrize("name", BACKENDS)
    def test_routes_flag(self, name):
        """Flag on: ``route(cnf)`` returns an inspectable Route.  Off: no
        ``route`` surface (the engine only asks declared routers)."""
        from repro.counting.router import Route

        backend = make_backend(name)
        route_attr = getattr(backend, "route", _MISSING)
        assert backend.capabilities.routes == callable(
            None if route_attr is _MISSING else route_attr
        )
        if not backend.capabilities.routes:
            return
        problem = translate(get_property("Reflexive"), 3)
        route = backend.route(problem.cnf)
        assert isinstance(route, Route)
        assert route.rule.target in BACKENDS
        assert route.capabilities == backend_capabilities(route.rule.target)


class TestEngineNegotiatesThroughCapabilities:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_store_gated_on_exactness_memos_always_on(self, name, tmp_path):
        with CountingEngine(
            make_backend(name), config=EngineConfig(cache_dir=tmp_path)
        ) as engine:
            caps = engine.capabilities
            assert (engine.store is not None) == caps.exact
            # Compilation memos are backend-independent: always persisted.
            assert engine.memo_store is not None
            assert (engine.component_cache is not None) == (
                caps.exact and caps.owns_component_cache
            )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_count_formula_routing(self, name):
        engine = CountingEngine(make_backend(name))
        if engine.capabilities.counts_formulas:
            assert callable(engine.count_formula)
        else:
            with pytest.raises(AttributeError, match="count_formula|count formulas"):
                engine.count_formula

    @pytest.mark.parametrize("name", BACKENDS)
    def test_accmc_rejects_unroutable_backends_at_the_routing_layer(self, name):
        """Backends serving neither AccMC route fail with a capability error,
        not a deep backend exception (e.g. ``mcml table9 --backend bdd``)."""
        from repro.core.accmc import AccMC

        caps = backend_capabilities(name)
        accmc = AccMC(counter=make_backend(name))
        prop = get_property("Reflexive")
        ground_truth = accmc.ground_truth(prop, 3)
        pipeline = MCMLPipeline(seed=0)
        dataset = pipeline.make_dataset(prop, 3)
        train, _ = dataset.split(0.5, rng=0)
        tree = pipeline.train("DT", train)
        if caps.counts_formulas or caps.supports_projection:
            result = accmc.evaluate(tree, ground_truth)
            if caps.exact:
                assert 0.0 <= result.accuracy <= 1.0
        else:
            with pytest.raises(ValueError, match="capabilities"):
                accmc.evaluate(tree, ground_truth)


class TestCompositeRouting:
    """The ``composite`` column: routing decisions, provenance, refusal."""

    def test_aux_free_routes_to_compiled_bit_identical(self, tree_regions):
        from repro.counting.api import CountRequest

        engine = CountingEngine(make_backend("composite"))
        reference = ExactCounter()
        for region in tree_regions:
            result = engine.solve(CountRequest.from_cnf(region))
            assert result.routed_to == "compiled"
            assert result.exact
            assert result.value == reference.count(region)
        assert engine.stats.route_compiled == len(tree_regions)
        assert engine.stats.route_exact == 0
        assert engine.stats.route_approx == 0

    def test_aux_bearing_routes_to_exact_bit_identical(self):
        from repro.counting.api import CountRequest

        engine = CountingEngine(make_backend("composite"))
        problem = translate(get_property("PartialOrder"), 3)
        assert problem.cnf.aux_vars()
        result = engine.solve(CountRequest.from_cnf(problem.cnf))
        assert result.routed_to == "exact"
        assert result.exact
        assert result.value == closed_form_count("partialorder", 3)
        assert engine.stats.route_exact == 1

    def test_oversized_routes_to_approx_with_epsilon_delta(self):
        from repro.counting.api import CountRequest

        engine = CountingEngine(make_backend("composite", oversize_vars=4))
        problem = translate(get_property("Reflexive"), 3)
        truth = closed_form_count("reflexive", 3)
        result = engine.solve(CountRequest.from_cnf(problem.cnf))
        assert result.routed_to == "approxmc"
        assert not result.exact
        assert result.epsilon == 0.8 and result.delta == 0.2
        assert truth / 1.8 <= result.value <= truth * 1.8
        assert engine.stats.route_approx == 1
        # Estimates are never memoized: a second solve routes (and
        # counts) again instead of serving a cache hit as "exact".
        again = engine.solve(CountRequest.from_cnf(problem.cnf))
        assert again.source == "backend"
        assert engine.stats.route_approx == 2

    def test_precision_exact_refused_on_the_approx_route(self):
        from repro.counting.api import CountRequest

        engine = CountingEngine(make_backend("composite", oversize_vars=4))
        problem = translate(get_property("Reflexive"), 3)
        with pytest.raises(ValueError, match="approx route"):
            engine.solve(CountRequest.from_cnf(problem.cnf, precision="exact"))
        # Direct backend refusal too — the contract is the router's, not
        # only the engine's.
        with pytest.raises(ValueError, match="approx route"):
            make_backend("composite", oversize_vars=4).route(
                problem.cnf, prefer_exact=True
            )

    def test_per_path_requests_refuse_the_approx_route(self, tree_regions):
        from repro.counting.api import CountRequest

        engine = CountingEngine(make_backend("composite", oversize_vars=4))
        region = tree_regions[0]
        request = CountRequest.from_cnf(
            region, strategy="per-path", cubes=((1,), (-1,))
        )
        with pytest.raises(ValueError, match="approx route"):
            engine.solve(request)

    def test_exact_routes_persist_approx_routes_do_not(self, tmp_path):
        from repro.counting.api import CountRequest
        from repro.counting.store import CountStore, signature_key

        problem = translate(get_property("Reflexive"), 3)
        request = CountRequest.from_cnf(problem.cnf)
        key = signature_key(request.signature())
        with CountingEngine(
            make_backend("composite", oversize_vars=4),
            config=EngineConfig(cache_dir=tmp_path / "approx"),
        ) as engine:
            engine.solve(request)
            assert engine.store.get(key) is None
        with CountingEngine(
            make_backend("composite"),
            config=EngineConfig(cache_dir=tmp_path / "exact"),
        ) as engine:
            engine.solve(request)
            assert engine.store.get(key) == closed_form_count("reflexive", 3)

    def test_routing_table_renders_the_rule_order(self):
        table = make_backend("composite").routing_table()
        assert [row["rule"] for row in table] == ["oversized", "aux-free", "aux"]
        assert [row["target"] for row in table] == ["approxmc", "compiled", "exact"]


class TestGrepClean:
    def test_no_hasattr_capability_sniffing_in_counting_or_core(self):
        """Routing reads ``backend.capabilities`` only — enforced textually."""
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for package in ("counting", "core"):
            for path in sorted((src / package).rglob("*.py")):
                for lineno, line in enumerate(path.read_text().splitlines(), 1):
                    if "hasattr(" in line:
                        offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)
