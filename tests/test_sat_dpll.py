"""Reference DPLL tests + CDCL-vs-DPLL differential testing."""

import itertools

import pytest
from hypothesis import given, settings

from repro.sat import SatResult, solve
from repro.sat.dpll import dpll_count, dpll_satisfiable

from tests.test_sat_solver import random_cnf


class TestDpllBasics:
    def test_empty_is_sat(self):
        assert dpll_satisfiable([]) == {}

    def test_empty_clause_is_unsat(self):
        assert dpll_satisfiable([[]]) is None

    def test_unit_and_conflict(self):
        assert dpll_satisfiable([[1]]) == {1: True}
        assert dpll_satisfiable([[1], [-1]]) is None

    def test_pure_literal_elimination(self):
        model = dpll_satisfiable([[1, 2], [1, 3]])
        assert model is not None
        assert model[1] is True

    def test_model_completion_with_num_vars(self):
        model = dpll_satisfiable([[2]], num_vars=4)
        assert set(model) == {1, 2, 3, 4}

    def test_model_satisfies_instance(self):
        clauses = [[1, -2, 3], [-1, 2], [-3, -2], [1, 2, 3]]
        model = dpll_satisfiable(clauses)
        assert model is not None
        for clause in clauses:
            assert any((l > 0) == model[abs(l)] for l in clause)


class TestDpllCount:
    def test_free_variables(self):
        assert dpll_count([], 3) == 8
        assert dpll_count([[1]], 3) == 4

    def test_xor_structure(self):
        clauses = [[1, 2], [-1, -2]]
        assert dpll_count(clauses, 2) == 2

    def test_unsat(self):
        assert dpll_count([[1], [-1]], 4) == 0

    def test_out_of_range_var(self):
        with pytest.raises(ValueError):
            dpll_count([[5]], 3)

    def test_exhaustive_check(self):
        clauses = [(1, 2, 3), (-1, -2), (2, -3)]
        expected = 0
        for bits in itertools.product([False, True], repeat=3):
            assign = dict(zip((1, 2, 3), bits))
            if all(any((l > 0) == assign[abs(l)] for l in c) for c in clauses):
                expected += 1
        assert dpll_count([list(c) for c in clauses], 3) == expected


@given(random_cnf(max_vars=7, max_clauses=18))
@settings(max_examples=120, deadline=None)
def test_cdcl_agrees_with_dpll(instance):
    """Differential: the production CDCL solver vs the reference DPLL."""
    num_vars, clauses = instance
    reference = dpll_satisfiable(clauses, num_vars=num_vars)
    result, model = solve(clauses, num_vars=num_vars)
    assert (result is SatResult.SAT) == (reference is not None)
    if model is not None:
        for clause in clauses:
            assert any((l > 0) == model[abs(l)] for l in clause)


@given(random_cnf(max_vars=6, max_clauses=12))
@settings(max_examples=80, deadline=None)
def test_dpll_count_agrees_with_exact_counter(instance):
    from repro.counting import exact_count
    from repro.logic import CNF

    num_vars, clauses = instance
    cnf = CNF(clauses, num_vars=num_vars, projection=range(1, num_vars + 1))
    normalized = [list(c) for c in cnf.clauses]  # tautologies removed
    assert dpll_count(normalized, num_vars) == exact_count(cnf)
