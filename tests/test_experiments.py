"""Experiment-driver tests: every table/figure regenerates with the right
structure and reproduces the paper's qualitative claims at reduced scopes."""

import pytest

from repro.counting import closed_form_count
from repro.experiments.classification import classification_table
from repro.experiments.classification import render as render_classification
from repro.experiments.config import ExperimentConfig, make_counter
from repro.experiments.figures import figure1, figure2, render_figure2
from repro.experiments.generalization import generalization_table
from repro.experiments.generalization import render as render_generalization
from repro.experiments.render import fmt, render_matrix, render_table, sci
from repro.experiments.table1 import render as render_table1
from repro.experiments.table1 import table1
from repro.experiments.table8 import render as render_table8
from repro.experiments.table8 import table8
from repro.experiments.table9 import render as render_table9
from repro.experiments.table9 import table9


def fast_config(*properties, scope=3, counter="brute", **kwargs):
    return ExperimentConfig(
        properties=tuple(properties),
        scope=scope,
        counter=counter,
        **kwargs,
    )


class TestRender:
    def test_sci(self):
        assert sci(786000) == "7.86E+05"
        assert sci(0) == "0"

    def test_fmt(self):
        assert fmt(0.12345) == "0.1235"
        assert fmt(None) == "-"
        assert fmt(True) == "yes"
        assert fmt(7) == "7"

    def test_render_table_alignment(self):
        out = render_table(["A", "Blong"], [[1, 2.0], [333, 4.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert len(lines) == 5

    def test_render_matrix(self):
        assert render_matrix([1, 0, 0, 1], 2) == "1.\n.1"


class TestConfig:
    def test_counter_factory(self):
        assert make_counter("exact").name == "exact"
        assert make_counter("approx").name == "approxmc"
        assert make_counter("brute").name == "brute"
        with pytest.raises(ValueError):
            make_counter("quantum")

    def test_scope_override(self):
        from repro.spec import get_property

        config = ExperimentConfig(scope=7)
        assert config.scope_for(get_property("Reflexive")) == 7
        default = ExperimentConfig()
        assert default.scope_for(get_property("Reflexive")) == 4


class TestTable1:
    def test_columns_are_mutually_consistent(self):
        rows = table1(fast_config("Reflexive", "Function", "Equivalence"))
        for row in rows:
            # Exact count without symmetry breaking == closed form.
            assert row.valid_nosymbr_exact == row.closed_form
            # Enumeration with symmetry breaking == exact count with it.
            assert row.valid_symbr_alloy == row.valid_symbr_exact
            # Symmetry breaking never increases the count.
            assert row.valid_symbr_exact <= row.valid_nosymbr_exact
            # ApproxMC estimates are within its tolerance (eps = 0.8).
            assert row.est_valid_nosymbr <= row.closed_form * 1.8
            assert row.est_valid_nosymbr >= row.closed_form / 1.8

    def test_equivalence_scope3_symbr_is_fibonacci(self):
        rows = table1(fast_config("Equivalence"))
        assert rows[0].valid_symbr_exact == 3  # F(4)

    def test_paper_scope_mode_uses_closed_forms(self):
        rows = table1(fast_config("Transitive"), paper_scopes=True)
        row = rows[0]
        assert row.scope == 6
        assert row.valid_nosymbr_exact == closed_form_count("transitive", 6)
        assert row.valid_nosymbr_exact == 9_415_189  # Table 1, published

    def test_render(self):
        text = render_table1(table1(fast_config("Reflexive")))
        assert "Reflexive" in text and "2^9" in text


class TestClassification:
    def test_grid_shape(self):
        rows = classification_table(
            fast_config("PartialOrder", scope=3),
            ratios=(0.75, 0.25),
            models=("DT", "SVM"),
        )
        assert len(rows) == 4
        assert {r.model for r in rows} == {"DT", "SVM"}
        assert {r.ratio for r in rows} == {"75:25", "25:75"}

    def test_metrics_in_unit_interval(self):
        rows = classification_table(
            fast_config("PartialOrder", scope=3), ratios=(0.5,), models=("DT",)
        )
        for metric in rows[0].metrics:
            assert 0.0 <= metric <= 1.0

    def test_rq1_models_learn_well_at_mid_ratio(self):
        """RQ1's claim at reduced scope: balanced test metrics stay high."""
        rows = classification_table(
            fast_config("PartialOrder", scope=4),
            symmetry_breaking=False,
            ratios=(0.75,),
            models=("DT", "RFT"),
        )
        for row in rows:
            assert row.counts.accuracy >= 0.85

    def test_render(self):
        rows = classification_table(
            fast_config("PartialOrder", scope=3), ratios=(0.5,), models=("DT",)
        )
        assert "Table 2" in render_classification(rows, symmetry_breaking=True)
        assert "Table 4" in render_classification(rows, symmetry_breaking=False)


class TestGeneralization:
    @pytest.mark.parametrize("table_number", [3, 5, 6, 7])
    def test_tables_compute(self, table_number):
        rows = generalization_table(
            table_number, fast_config("Reflexive", "Function", scope=3)
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row.phi_precision <= 1.0
            assert 0.0 <= row.test_precision <= 1.0

    def test_invalid_table_number(self):
        with pytest.raises(ValueError):
            generalization_table(42)

    def test_rq2_precision_collapse(self):
        """The headline result: whole-space precision is far below test
        precision for a sparse property (Table 3/5 shape)."""
        rows = generalization_table(
            5, fast_config("Function", scope=4, train_fraction=0.10)
        )
        row = rows[0]
        assert row.test_precision >= 0.5
        assert row.phi_precision < 0.1  # paper reports 0.0001 at scope 8
        assert row.phi_recall >= 0.5  # recall survives, precision dies

    def test_reflexive_stays_perfect_in_table3(self):
        """Reflexive/Irreflexive rows of Table 3: 1.0 across the board when
        trained on enough data (diagonal check is exactly learnable)."""
        rows = generalization_table(
            3,
            fast_config(
                "Reflexive", "Irreflexive", scope=4, train_fraction=0.75
            ),
        )
        for row in rows:
            assert row.phi_precision == 1.0
            assert row.phi_recall == 1.0

    def test_render(self):
        rows = generalization_table(3, fast_config("Reflexive", scope=3))
        text = render_generalization(rows, 3)
        assert "Table 3" in text and "Reflexive" in text


class TestTable8:
    def test_rows_and_partition(self):
        rows = table8(fast_config("Function", "Reflexive", scope=3))
        assert len(rows) == 2
        for row in rows:
            r = row.result
            assert r.tt + r.tf + r.ft + r.ff == 2**9
            assert 0.0 <= r.diff <= 1.0

    def test_rq5_same_data_trees_are_similar(self):
        """Table 8's shape: two trees trained on the same data differ on a
        small fraction of the space."""
        rows = table8(fast_config("Reflexive", scope=4))
        assert rows[0].result.diff <= 0.25  # paper: ~0-2 percent

    def test_render(self):
        text = render_table8(table8(fast_config("Reflexive", scope=3)))
        assert "TT" in text and "Diff[%]" in text


class TestTable9:
    def test_shape_and_monotonic_trend(self):
        rows = table9(fast_config("Antisymmetric", scope=3))
        assert [r.ratio for r in rows] == [
            "99:1", "90:10", "75:25", "50:50", "25:75", "10:90", "1:99",
        ]
        # The paper's claim: MCML precision at the most skewed ratio is far
        # below the traditional estimate, and improves toward balance.
        first, last = rows[0], rows[-1]
        assert first.mcml_precision <= first.traditional_precision
        assert last.mcml_precision >= first.mcml_precision

    def test_render(self):
        text = render_table9(table9(fast_config("Antisymmetric", scope=3)))
        assert "MCML Precision" in text


class TestFigures:
    def test_figure1_parses_and_compiles(self):
        result = figure1()
        assert result.run_scope == 4
        assert result.primary_vars == 16
        assert set(result.predicates) == {
            "Equivalence", "Reflexive", "Symmetric", "Transitive",
        }
        assert result.clauses > 0

    def test_figure2_reproduces_five_solutions(self):
        solutions = figure2(scope=4)
        assert len(solutions) == 5  # the paper's Figure 2, exactly

    def test_figure2_render(self):
        text = render_figure2(figure2(scope=3), scope=3)
        assert "3 non-isomorphic" in text


class TestCli:
    def test_cli_figure2(self, capsys):
        from repro.experiments.cli import main

        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "5 non-isomorphic" in out

    def test_cli_table9_with_options(self, capsys):
        from repro.experiments.cli import main

        code = main(["table9", "--scope", "3", "--counter", "brute"])
        assert code == 0
        assert "MCML Precision" in capsys.readouterr().out

    def test_cli_rejects_unknown_artifact(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["table42"])

    def test_cli_all_expands_to_artifacts_only(self, monkeypatch, capsys):
        # "all" must never reach run_artifact with the pseudo-artifacts
        # ("all" itself, "serve", "cluster") — daemons are not tables to
        # render.
        from repro.experiments import cli

        seen = []
        monkeypatch.setattr(
            cli,
            "run_artifact",
            lambda artifact, config, paper_scopes=False, session=None: (
                seen.append(artifact) or f"<{artifact}>"
            ),
        )
        assert cli.main(["all"]) == 0
        assert seen == [
            a for a in cli.ARTIFACTS if a not in ("all", "serve", "cluster")
        ]
        out = capsys.readouterr().out
        assert "<table1>" in out and "<figure2>" in out
