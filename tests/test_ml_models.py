"""Tests for all six classifiers.

Shared behavioural contract plus model-specific structure tests (paths for
the decision tree, boosting dynamics, SVM margins, MLP convergence).
"""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LinearSVC,
    MLPClassifier,
    MODEL_REGISTRY,
    RandomForestClassifier,
)
from repro.ml.base import NotFittedError, check_Xy


def _xor_dataset(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, 2))
    y = (X[:, 0] ^ X[:, 1]).astype(int)
    return X.astype(float), y


def _parity3_dataset(n=400, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, 3))
    y = X.sum(axis=1) % 2
    return X.astype(float), y


def _linear_dataset(n=300, seed=2):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = ((X @ np.array([1.0, -2.0, 0.5, 0.0])) + 0.3 > 0).astype(int)
    return X, y


_FAST_PARAMS = {
    "DT": {},
    "RFT": {"n_estimators": 20},
    "GBDT": {"n_estimators": 30},
    "ABT": {"n_estimators": 20},
    "SVM": {"max_iter": 200},
    "MLP": {"max_iter": 60, "hidden_layer_sizes": (32,)},
}


@pytest.mark.parametrize("abbrev", sorted(MODEL_REGISTRY))
class TestSharedContract:
    def _make(self, abbrev):
        return MODEL_REGISTRY[abbrev](**_FAST_PARAMS[abbrev])

    def test_fits_separable_data(self, abbrev):
        X, y = _linear_dataset()
        model = self._make(abbrev).fit(X, y)
        assert model.score(X, y) >= 0.85

    def test_predict_shape_and_labels(self, abbrev):
        X, y = _linear_dataset(n=80)
        model = self._make(abbrev).fit(X, y)
        pred = model.predict(X)
        assert pred.shape == (80,)
        assert set(np.unique(pred)) <= {0, 1}

    def test_rejects_bad_labels(self, abbrev):
        X = np.zeros((4, 2))
        y = np.array([0, 1, 2, 1])
        with pytest.raises(ValueError):
            self._make(abbrev).fit(X, y)

    def test_rejects_wrong_feature_count_at_predict(self, abbrev):
        X, y = _linear_dataset(n=60)
        model = self._make(abbrev).fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 7)))

    def test_predict_before_fit_raises(self, abbrev):
        with pytest.raises((NotFittedError, RuntimeError)):
            self._make(abbrev).predict(np.zeros((2, 2)))

    def test_single_class_training(self, abbrev):
        # Degenerate but must not crash: all labels identical.
        X = np.array([[0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
        y = np.ones(4, dtype=int)
        model = self._make(abbrev).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {0, 1}


class TestCheckXy:
    def test_validations(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            check_Xy(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            check_Xy(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            check_Xy(np.zeros((0, 2)), np.zeros(0))


class TestDecisionTree:
    def test_learns_xor_exactly(self):
        X, y = _xor_dataset()
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_depth_limits_tree(self):
        X, y = _parity3_dataset()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert stump.depth() <= 1
        full = DecisionTreeClassifier().fit(X, y)
        assert full.depth() == 3  # parity needs all three features

    def test_paths_partition_binary_space(self):
        X, y = _parity3_dataset()
        tree = DecisionTreeClassifier().fit(X, y)
        paths = tree.decision_paths()
        # Every input must match exactly one path.
        for bits in range(8):
            x = [(bits >> k) & 1 for k in range(3)]
            matching = [
                p
                for p in paths
                if all(bool(x[f]) == v for f, v in p.conditions)
            ]
            assert len(matching) == 1
            # And the path label must equal predict().
            pred = tree.predict(np.array([x], dtype=float))[0]
            assert matching[0].label == pred

    def test_paths_require_binary_features(self):
        X, y = _linear_dataset()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        with pytest.raises(ValueError):
            tree.decision_paths()

    def test_sample_weight_changes_majority(self):
        X = np.array([[0.0], [0.0], [0.0]])
        y = np.array([1, 0, 0])
        # Unweighted: majority is 0.  Weighted towards the positive: 1.
        assert DecisionTreeClassifier().fit(X, y).predict(X)[0] == 0
        weighted = DecisionTreeClassifier().fit(
            X, y, sample_weight=np.array([10.0, 1.0, 1.0])
        )
        assert weighted.predict(X)[0] == 1

    def test_min_samples_split(self):
        X, y = _xor_dataset(n=40)
        tree = DecisionTreeClassifier(min_samples_split=1000).fit(X, y)
        assert tree.n_leaves() == 1

    def test_deterministic_given_seed(self):
        X, y = _parity3_dataset()
        a = DecisionTreeClassifier(max_features=2, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features=2, random_state=5).fit(X, y)
        assert a.predict(X).tolist() == b.predict(X).tolist()

    def test_invalid_max_features(self):
        X, y = _xor_dataset(n=20)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=99).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="log42").fit(X, y)


class TestRandomForest:
    def test_learns_xor(self):
        X, y = _xor_dataset()
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert forest.score(X, y) >= 0.95

    def test_no_bootstrap_mode(self):
        X, y = _xor_dataset(n=100)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) == 1.0

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_seeded_reproducibility(self):
        X, y = _parity3_dataset(n=150)
        a = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        assert a.predict(X).tolist() == b.predict(X).tolist()


class TestAdaBoost:
    def test_boosting_beats_single_stump(self):
        X, y = _xor_dataset()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=30, base_max_depth=2).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y)

    def test_early_stop_on_perfect_learner(self):
        X, y = _xor_dataset(n=50)
        model = AdaBoostClassifier(n_estimators=50, base_max_depth=3).fit(X, y)
        # A depth-3 tree nails XOR immediately; boosting should stop early.
        assert len(model.estimators_) == 1
        assert model.score(X, y) == 1.0

    def test_decision_function_sign_matches_predict(self):
        X, y = _linear_dataset(n=100)
        model = AdaBoostClassifier(n_estimators=10).fit(X, y)
        scores = model.decision_function(X)
        assert ((scores >= 0).astype(int) == model.predict(X)).all()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0)


class TestGradientBoosting:
    def test_learns_xor(self):
        X, y = _xor_dataset()
        model = GradientBoostingClassifier(n_estimators=40).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_staged_improvement(self):
        X, y = _parity3_dataset()
        few = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=60).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_predict_proba_in_unit_interval(self):
        X, y = _linear_dataset(n=100)
        model = GradientBoostingClassifier(n_estimators=15).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert (proba >= 0).all() and (proba <= 1).all()
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=-1)


class TestLinearSVC:
    def test_separable_margin(self):
        X, y = _linear_dataset()
        model = LinearSVC().fit(X, y)
        assert model.score(X, y) >= 0.97

    def test_decision_function_sign(self):
        X, y = _linear_dataset(n=100)
        model = LinearSVC().fit(X, y)
        assert (
            (model.decision_function(X) >= 0).astype(int) == model.predict(X)
        ).all()

    def test_weight_vector_direction(self):
        # Perfectly separable 1-D data: weight must be positive.
        X = np.array([[-2.0], [-1.5], [1.5], [2.0]])
        y = np.array([0, 0, 1, 1])
        model = LinearSVC().fit(X, y)
        assert model.coef_[0] > 0

    def test_c_validation(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0)


class TestMLP:
    def test_learns_xor(self):
        X, y = _xor_dataset()
        model = MLPClassifier(
            hidden_layer_sizes=(16,), max_iter=300, random_state=0
        ).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_loss_decreases(self):
        X, y = _linear_dataset()
        model = MLPClassifier(max_iter=40, random_state=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_two_hidden_layers(self):
        X, y = _xor_dataset(n=150)
        model = MLPClassifier(
            hidden_layer_sizes=(16, 8), max_iter=250, random_state=1
        ).fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_proba_rows_sum_to_one(self):
        X, y = _linear_dataset(n=60)
        model = MLPClassifier(max_iter=20, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=())
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,))

    def test_seeded_reproducibility(self):
        X, y = _linear_dataset(n=80)
        a = MLPClassifier(max_iter=15, random_state=9).fit(X, y)
        b = MLPClassifier(max_iter=15, random_state=9).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))
