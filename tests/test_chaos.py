"""Chaos suite: fault-injected tests of the counting stack's robustness layer.

Drives the failure machinery on demand through :mod:`repro.counting.faults`
and asserts the PR's acceptance criteria:

* wall-clock deadlines abort cooperatively (``CounterTimeout``) and, for a
  wedged worker, via the pool's kill-and-respawn watchdog — never by
  hanging;
* a SIGKILLed worker mid-batch neither hangs nor corrupts: the batch
  completes bit-identical to the serial reference and the respawn shows up
  in ``EngineStats``;
* the degradation ladder re-routes timeout/budget/worker-lost failures to
  the configured fallback backend with explicit provenance (an estimate
  can never masquerade as exact, and is never memoized or persisted);
* the disk tiers degrade (rotate, miss, swallow) instead of failing, and
  every such event is visible as ``store_degradations``;
* an unpicklable backend degrades to serial counting (``serial_fallbacks``)
  while a genuinely broken backend still raises loudly.

Every test disarms the fault registry on the way out (autouse fixture), and
the tests that could conceivably hang carry a SIGALRM hard timeout so a
regression fails fast instead of wedging the suite.
"""

import os
import pickle
import signal
import time
from contextlib import contextmanager

import pytest

from repro.counting import (
    ApproxMCCounter,
    CounterAbort,
    CounterBudgetExceeded,
    CounterTimeout,
    CountFailure,
    CountingEngine,
    CountStore,
    EngineConfig,
    ExactCounter,
    faults,
)
from repro.counting.api import CountRequest, CountResult
from repro.counting.parallel import TaskResult, WorkerPool, count_parallel
from repro.counting.store import STORE_FILENAME
from repro.logic import CNF
from repro.spec import get_property, translate

#: Pinned exact counts (scope 3 is cheap; scope 5 Transitive is the one
#: problem in the repro matrix big enough — ~1.8k search nodes — for the
#: every-128-nodes deadline probe to actually fire).
TRANSITIVE_3 = 171
TRANSITIVE_5 = 154303


@pytest.fixture(autouse=True)
def _clean_faults():
    """No chaos leaks in either direction: disarm before and after."""
    faults.clear()
    yield
    faults.clear()


@contextmanager
def hard_timeout(seconds: int):
    """SIGALRM backstop: a hang becomes a fast, attributable failure."""

    def _alarm(signum, frame):
        raise TimeoutError(f"chaos test exceeded its {seconds}s hard timeout")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def property_cnf(name: str, scope: int) -> CNF:
    return translate(get_property(name), scope).cnf


class SleepyCounter:
    """A picklable backend with no deadline knob that wedges forever."""

    name = "sleepy"

    def count(self, cnf):
        time.sleep(30)
        return 0


class ExplodingPickle:
    """A backend whose pickling fails with a *non*-serialization error."""

    def count(self, cnf):
        return 0

    def __reduce__(self):
        raise RuntimeError("boom: not a serialization failure")


# -- taxonomy and request validation --------------------------------------------------


class TestFailureTaxonomy:
    def test_aborts_share_a_base(self):
        assert issubclass(CounterTimeout, CounterAbort)
        assert issubclass(CounterBudgetExceeded, CounterAbort)
        assert issubclass(CounterAbort, Exception)

    def test_from_exception_classifies(self):
        timeout = CountFailure.from_exception(CounterTimeout("t"), backend="exact")
        budget = CountFailure.from_exception(CounterBudgetExceeded("b"))
        error = CountFailure.from_exception(ValueError("e"))
        assert timeout.kind == "timeout"
        assert timeout.backend == "exact"
        assert isinstance(timeout.cause, CounterTimeout)
        assert budget.kind == "budget"
        assert error.kind == "error"
        assert isinstance(error.cause, ValueError)

    def test_deadline_must_be_positive(self):
        cnf = CNF([[1]], num_vars=1)
        with pytest.raises(ValueError, match="deadline"):
            CountRequest.from_cnf(cnf, deadline=0)
        with pytest.raises(ValueError, match="deadline"):
            CountRequest.from_cnf(cnf, deadline=-1.5)

    def test_signature_ignores_limits(self):
        cnf = property_cnf("Transitive", 3)
        plain = CountRequest.from_cnf(cnf)
        limited = CountRequest.from_cnf(cnf, deadline=5.0, budget=10)
        assert plain.signature() == limited.signature()


class TestFaultHarness:
    def test_env_round_trip(self):
        faults.inject("store-read-corrupt")
        faults.inject("worker-kill", 2)
        assert os.environ[faults.ENV_VAR] == "store-read-corrupt,worker-kill:2"
        assert faults.active("worker-kill") == 2
        assert faults.active("store-read-corrupt") is True
        assert faults.active("not-armed") is None
        faults.clear("worker-kill")
        assert os.environ[faults.ENV_VAR] == "store-read-corrupt"
        faults.clear()
        assert faults.ENV_VAR not in os.environ
        assert faults.active("store-read-corrupt") is None

    def test_injected_context_manager(self):
        with faults.injected("worker-kill-marker", "/tmp/marker"):
            assert faults.active("worker-kill-marker") == "/tmp/marker"
        assert faults.active("worker-kill-marker") is None


# -- cooperative deadlines ------------------------------------------------------------


class TestCooperativeDeadline:
    def test_exact_counter_times_out(self):
        cnf = property_cnf("Transitive", 5)
        counter = ExactCounter(deadline=0.01)
        started = time.monotonic()
        with hard_timeout(60):
            with pytest.raises(CounterTimeout):
                counter.count(cnf)
        # The probe fires every 128 nodes, so the abort lands promptly —
        # generous bound, the unlimited count itself takes well under 1s.
        assert time.monotonic() - started < 5.0

    def test_unlimited_count_pins_the_value(self):
        assert ExactCounter().count(property_cnf("Transitive", 5)) == TRANSITIVE_5

    def test_approxmc_times_out(self):
        cnf = property_cnf("Transitive", 5)
        counter = ApproxMCCounter(seed=0, deadline=0.05)
        with hard_timeout(60):
            with pytest.raises(CounterTimeout):
                counter.count(cnf)

    def test_engine_deadline_raises_and_restores_the_knob(self):
        engine = CountingEngine(ExactCounter())
        request = CountRequest.from_cnf(property_cnf("Transitive", 5), deadline=0.01)
        with hard_timeout(60):
            with pytest.raises(CounterTimeout):
                engine.solve(request)
        assert engine.counter.deadline is None  # per-problem override restored
        assert engine.stats.timeouts == 1

    def test_timed_out_work_warms_the_resume(self):
        """A retry after a timeout resumes from the warm tiers, not scratch."""
        engine = CountingEngine(ExactCounter())
        cnf = property_cnf("Transitive", 5)
        with hard_timeout(60):
            with pytest.raises(CounterTimeout):
                engine.solve(CountRequest.from_cnf(cnf, deadline=0.02))
        # The aborted search already paid for components; they stayed.
        assert engine.component_cache is not None
        warmed = len(engine.component_cache)
        assert warmed > 0
        result = engine.solve(cnf)
        assert result.value == TRANSITIVE_5
        assert result.source == "backend"

    def test_mid_batch_failure_leaves_the_rest_typed(self):
        """on_failure="return": one bad problem cannot poison the batch."""
        engine = CountingEngine(ExactCounter())
        easy = property_cnf("Transitive", 3)
        easy2 = property_cnf("PartialOrder", 3)
        hard = CountRequest.from_cnf(property_cnf("Transitive", 5), budget=10)
        results = engine.solve_many([easy, hard, easy2], on_failure="return")
        assert isinstance(results[0], CountResult)
        assert results[0].value == TRANSITIVE_3
        assert isinstance(results[1], CountFailure)
        assert results[1].kind == "budget"
        assert isinstance(results[1].cause, CounterBudgetExceeded)
        assert isinstance(results[2], CountResult)
        # Completed counts reached the memo even though a sibling failed.
        assert engine.solve(easy).source == "memo"
        assert engine.stats.backend_calls == 2

    def test_raise_mode_reraises_the_original_exception(self):
        engine = CountingEngine(ExactCounter())
        hard = CountRequest.from_cnf(property_cnf("Transitive", 3), budget=5)
        with pytest.raises(CounterBudgetExceeded):
            engine.solve_many([hard])


# -- the degradation ladder -----------------------------------------------------------


class TestDegradationLadder:
    def _fallback_engine(self, **fallback_opts):
        opts = {"epsilon": 0.8, "rounds": 3, "seed": 0}
        opts.update(fallback_opts)
        return CountingEngine(
            ExactCounter(),
            config=EngineConfig(fallback="approxmc", fallback_opts=opts),
        )

    def test_budget_failure_degrades_to_estimate(self):
        engine = self._fallback_engine()
        request = CountRequest.from_cnf(property_cnf("Transitive", 3), budget=10)
        result = engine.solve(request)
        assert isinstance(result, CountResult)
        assert result.exact is False
        assert result.source == "fallback"
        assert result.fallback_from == "exact"
        assert result.backend == "approxmc"
        assert result.epsilon == 0.8
        assert result.exactness.startswith("approximate")
        # The (1+ε) guarantee around the true count.
        assert TRANSITIVE_3 / 1.8 <= result.value <= TRANSITIVE_3 * 1.8
        assert engine.stats.fallbacks == 1

    def test_estimates_are_never_memoized(self):
        engine = self._fallback_engine()
        cnf = property_cnf("Transitive", 3)
        engine.solve(CountRequest.from_cnf(cnf, budget=10))
        # The unlimited retry must recount exactly, not serve the estimate.
        retry = engine.solve(cnf)
        assert retry.exact is True
        assert retry.source == "backend"
        assert retry.value == TRANSITIVE_3
        if engine.store is not None:  # no cache_dir here, but be explicit
            pytest.fail("unexpected disk store")

    def test_inexact_fallback_refused_for_exact_precision(self):
        engine = self._fallback_engine()
        request = CountRequest.from_cnf(
            property_cnf("Transitive", 3), budget=10, precision="exact"
        )
        with pytest.raises(CounterBudgetExceeded):
            engine.solve(request)
        assert engine.stats.fallbacks == 0

    def test_deadline_failure_degrades_to_estimate(self):
        """The PR's acceptance path: deadline blown, approxmc answers."""
        engine = self._fallback_engine(epsilon=4.0, rounds=1)
        request = CountRequest.from_cnf(property_cnf("Transitive", 5), deadline=0.01)
        with hard_timeout(120):
            result = engine.solve(request)
        assert result.exact is False
        assert result.source == "fallback"
        assert result.fallback_from == "exact"
        assert result.epsilon == 4.0
        assert TRANSITIVE_5 / 5.0 <= result.value <= TRANSITIVE_5 * 5.0
        assert engine.stats.timeouts == 1
        assert engine.stats.fallbacks == 1

    def test_exact_fallback_is_memoized(self, tmp_path):
        engine = CountingEngine(
            ExactCounter(),
            config=EngineConfig(fallback="exact", cache_dir=tmp_path),
        )
        cnf = property_cnf("Transitive", 3)
        result = engine.solve(CountRequest.from_cnf(cnf, budget=10))
        assert result.exact is True
        assert result.source == "fallback"
        assert result.value == TRANSITIVE_3
        # Exact fallback counts are interchangeable: memoized and persisted.
        assert engine.solve(cnf).source == "memo"
        assert len(engine.store) == 1
        engine.close()

    def test_genuine_errors_are_not_absorbed(self):
        class BrokenCounter:
            name = "broken"

            def count(self, cnf):
                raise ValueError("not a resource failure")

        engine = CountingEngine(
            BrokenCounter(), config=EngineConfig(fallback="exact")
        )
        with pytest.raises(ValueError, match="not a resource failure"):
            engine.solve(property_cnf("Transitive", 3))
        assert engine.stats.fallbacks == 0

    def test_misconfigured_fallback_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown counter"):
            CountingEngine(ExactCounter(), config=EngineConfig(fallback="nope"))


# -- the self-healing worker pool -----------------------------------------------------


class TestSelfHealingPool:
    def test_sigkilled_worker_batch_matches_serial(self, tmp_path):
        """The PR's acceptance path: SIGKILL mid-batch, no hang, no drift."""
        names = [
            "Reflexive",
            "Transitive",
            "Connex",
            "Function",
            "PartialOrder",
            "Equivalence",
        ]
        cnfs = [property_cnf(name, 3) for name in names]
        serial = [ExactCounter().count(cnf) for cnf in cnfs]
        engine = CountingEngine(ExactCounter(), config=EngineConfig(workers=2))
        faults.inject("worker-kill", 2)
        faults.inject("worker-kill-marker", str(tmp_path / "killed-once"))
        try:
            with hard_timeout(120):
                results = engine.solve_many(cnfs)
        finally:
            faults.clear()
            engine.close()
        assert [r.value for r in results] == serial
        assert engine.stats.worker_respawns >= 1
        assert engine.stats.retries >= 1

    def test_worker_loss_exhausts_retries_then_recovers(self):
        cnf = property_cnf("Transitive", 3)
        pool = WorkerPool(
            pickle.dumps(ExactCounter()), 1, task_retries=1, backend_name="exact"
        )
        try:
            faults.inject("worker-kill", 1)  # no marker: every worker dies
            with hard_timeout(120):
                [outcome] = pool.run_tasks([cnf])
            assert isinstance(outcome, CountFailure)
            assert outcome.kind == "worker-lost"
            assert outcome.retries == 1
            assert outcome.cause is None  # the process died; nothing raised
            assert pool.respawns >= 2
            faults.clear()
            # The pool heals: one straggler worker forked under the armed
            # fault may still die once, but the retry budget covers it.
            with hard_timeout(120):
                [again] = pool.run_tasks([cnf])
            assert isinstance(again, TaskResult)
            assert again.value == TRANSITIVE_3
        finally:
            faults.clear()
            pool.close()

    def test_watchdog_kills_a_wedged_worker(self):
        request = CountRequest.from_cnf(CNF([[1]], num_vars=1), deadline=0.1)
        pool = WorkerPool(
            pickle.dumps(SleepyCounter()), 1, grace=0.2, backend_name="sleepy"
        )
        try:
            started = time.monotonic()
            with hard_timeout(60):
                [outcome] = pool.run_tasks([request])
            elapsed = time.monotonic() - started
            assert isinstance(outcome, CountFailure)
            assert outcome.kind == "timeout"
            assert outcome.cause is None  # watchdog kill, not a cooperative abort
            assert pool.timeouts == 1
            # deadline (0.1) + grace (0.2) plus scheduling slack — nowhere
            # near the 30s the worker wanted to sleep.
            assert elapsed < 10.0
        finally:
            pool.close()

    def test_per_path_requests_are_rejected_before_forking(self):
        request = CountRequest.from_cnf(
            property_cnf("Transitive", 3), strategy="per-path", cubes=((1,), (-1,))
        )
        pool = WorkerPool(pickle.dumps(ExactCounter()), 2)
        try:
            with pytest.raises(ValueError, match="solve_many"):
                pool.run_tasks([request])
            assert pool._handles == []  # validation ran before any fork
        finally:
            pool.close()

    def test_graceful_close_is_idempotent(self):
        cnfs = [property_cnf("Transitive", 3), property_cnf("PartialOrder", 3)]
        pool = WorkerPool(pickle.dumps(ExactCounter()), 2)
        with hard_timeout(120):
            outcomes = pool.run_tasks(cnfs)
        assert all(isinstance(o, TaskResult) for o in outcomes)
        processes = [handle.process for handle in pool._handles]
        pool.close()
        assert pool.closed
        assert all(not process.is_alive() for process in processes)
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_tasks(cnfs)


# -- serial fallback on unpicklable backends ------------------------------------------


class TestSerialFallback:
    def test_engine_counts_serially_when_backend_does_not_pickle(self):
        engine = CountingEngine(ExactCounter(), config=EngineConfig(workers=2))
        faults.inject("backend-unpicklable")
        results = engine.solve_many(
            [property_cnf("Transitive", 3), property_cnf("PartialOrder", 3)]
        )
        assert results[0].value == TRANSITIVE_3
        assert engine.stats.serial_fallbacks == 1
        assert engine._pool is None

    def test_count_parallel_probe_degrades_to_serial(self):
        cnfs = [property_cnf("Transitive", 3), property_cnf("PartialOrder", 3)]
        faults.inject("backend-unpicklable")
        values = count_parallel(ExactCounter(), cnfs, workers=2)
        assert values == [ExactCounter().count(cnf) for cnf in cnfs]

    def test_non_serialization_pickle_errors_raise_loudly(self):
        cnfs = [property_cnf("Transitive", 3), property_cnf("PartialOrder", 3)]
        with pytest.raises(RuntimeError, match="boom"):
            count_parallel(ExplodingPickle(), cnfs, workers=2)


# -- disk-tier degradations -----------------------------------------------------------


class TestStoreDegradations:
    def test_corrupt_database_rotation_is_counted(self, tmp_path):
        (tmp_path / STORE_FILENAME).write_bytes(b"this is not a sqlite file")
        with CountStore(tmp_path) as store:
            assert store.degradations == 1
            assert (tmp_path / (STORE_FILENAME + ".corrupt")).exists()
            store.put("k", 7)
            store.flush()
            assert store.get("k") == 7

    def test_injected_read_corruption_reads_as_miss(self, tmp_path):
        with CountStore(tmp_path) as store:
            store.put("k", 7)
            store.flush()
            with faults.injected("store-read-corrupt"):
                assert store.get("k") is None
            assert store.degradations == 1
            assert store.get("k") == 7  # healthy again once disarmed

    def test_injected_disk_full_is_swallowed(self, tmp_path):
        with CountStore(tmp_path) as store:
            with faults.injected("store-disk-full"):
                store.put_many([("k", 7)])
            assert store.degradations == 1
            # The failed write was dropped (a cache entry is recountable).
            assert store.get("k") is None
            store.put_many([("k", 7)])  # the "recount" repairs it
            assert store.get("k") == 7

    def test_engine_surfaces_store_degradations(self, tmp_path):
        engine = CountingEngine(
            ExactCounter(), config=EngineConfig(cache_dir=tmp_path)
        )
        with faults.injected("store-disk-full"):
            engine.solve(property_cnf("Transitive", 3))
        assert engine.stats.store_degradations >= 1
        engine.close()


# -- decomposition agreement under failure --------------------------------------------


class TestPerPathAgreementUnderFailure:
    def test_per_path_sum_survives_a_failed_sibling(self):
        engine = CountingEngine(ExactCounter())
        cnf = property_cnf("Transitive", 3)
        # Branching on variable 1 partitions the space, so the per-path
        # sum must equal the plain conjunction count exactly.
        per_path = CountRequest.from_cnf(cnf, strategy="per-path", cubes=((1,), (-1,)))
        doomed = CountRequest.from_cnf(property_cnf("Transitive", 5), budget=10)
        results = engine.solve_many([per_path, doomed], on_failure="return")
        assert isinstance(results[0], CountResult)
        assert results[0].value == TRANSITIVE_3
        assert isinstance(results[1], CountFailure)
        assert results[1].kind == "budget"

    def test_per_path_failure_is_represented_by_its_first_sub_failure(self):
        engine = CountingEngine(ExactCounter())
        cnf = property_cnf("Transitive", 5)
        per_path = CountRequest.from_cnf(
            cnf, strategy="per-path", cubes=((1,), (-1,)), budget=10
        )
        [outcome] = engine.solve_many([per_path], on_failure="return")
        assert isinstance(outcome, CountFailure)
        assert outcome.kind == "budget"
