"""Tests for the parallel counting service and its satellite bugfixes.

Covers:

* :class:`CountStore` — round-trips of arbitrary-precision counts, graceful
  handling of corrupted rows and corrupted database files;
* :mod:`repro.counting.parallel` — payload round-trips and the differential
  guarantee that ``count_many`` with ``workers=4`` is bit-identical to
  serial across the PR-1 property/scope matrix;
* the engine's disk persistence — a cold run populates the store, a warm
  run in a fresh engine performs *zero* backend calls (``EngineStats``);
* the ``translate``/``ground_truth`` memo-key regression — two distinct
  properties sharing a name must not collide;
* the ApproxMC ``m = 1`` frontier — no duplicated cell enumeration;
* the closed-form oracle audit — all 16 closed forms pinned to the exact
  counter at scopes 2–4 (the Injective = n^n reading included).
"""

import sqlite3

import pytest

from repro.counting import (
    ApproxMCCounter,
    CountingEngine,
    CountStore,
    EngineConfig,
    ExactCounter,
    closed_form_count,
    count_parallel,
    signature_key,
)
from repro.counting.parallel import cnf_to_payload, payload_to_cnf
from repro.counting.store import STORE_FILENAME
from repro.logic import CNF
from repro.spec import SymmetryBreaking, get_property, translate
from repro.spec.properties import PROPERTIES, Property

#: The PR-1 differential matrix (kept to the cheap scopes: parallelism does
#: not change the counter, so this pins plumbing, not search).
MATRIX_CASES = [
    (prop, scope, symmetry)
    for prop in PROPERTIES
    for scope in (2, 3)
    for symmetry in (None, SymmetryBreaking())
]


class TestCountStore:
    def test_round_trip_arbitrary_precision(self, tmp_path):
        store = CountStore(tmp_path)
        huge = 2**400 + 12345
        store.put("k1", huge)
        store.put_many([("k2", 0), ("k3", 7)])
        assert store.get("k1") == huge
        assert store.get_many(["k1", "k2", "k3", "k4"]) == {
            "k1": huge,
            "k2": 0,
            "k3": 7,
        }
        assert store.get("missing") is None
        assert len(store) == 3
        store.close()
        # A fresh handle over the same directory sees the same counts.
        with CountStore(tmp_path) as reopened:
            assert reopened.get("k1") == huge

    def test_signature_key_is_stable_and_projection_sensitive(self):
        narrow = CNF([[1]], num_vars=1, projection=[1])
        wide = CNF([[1]], num_vars=3, projection=[1, 2, 3])
        assert signature_key(narrow.signature()) == signature_key(
            narrow.copy().signature()
        )
        assert signature_key(narrow.signature()) != signature_key(wide.signature())

    def test_corrupted_row_reads_as_miss(self, tmp_path):
        store = CountStore(tmp_path)
        store.put("good", 42)
        store.put("bad", 7)
        store.flush()  # singles are buffered; corrupt the *written* row
        with sqlite3.connect(store.path) as raw:
            raw.execute("UPDATE counts SET value = 'not-a-number' WHERE key = 'bad'")
            raw.commit()
        assert store.get("good") == 42
        assert store.get("bad") is None
        # Recounting repairs the row.
        store.put("bad", 8)
        assert store.get("bad") == 8

    def test_corrupted_database_file_is_rotated(self, tmp_path):
        wreck = tmp_path / STORE_FILENAME
        wreck.write_bytes(b"this is definitely not a sqlite database")
        store = CountStore(tmp_path)
        assert len(store) == 0
        store.put("k", 3)
        assert store.get("k") == 3
        assert wreck.with_suffix(wreck.suffix + ".corrupt").exists()

    def test_clear_keeps_file(self, tmp_path):
        store = CountStore(tmp_path)
        store.put("k", 1)
        store.clear()
        assert len(store) == 0
        assert store.path.exists()


class TestParallelFanOut:
    def test_payload_round_trip_preserves_signature(self):
        cnf = translate(get_property("PartialOrder"), 3, symmetry=SymmetryBreaking()).cnf
        rebuilt = payload_to_cnf(cnf_to_payload(cnf))
        assert rebuilt.signature() == cnf.signature()
        assert rebuilt.num_vars == cnf.num_vars
        assert rebuilt.aux_unique == cnf.aux_unique

    def test_empty_batch(self):
        assert count_parallel(ExactCounter(), [], 4) == []

    def test_unpicklable_backend_falls_back_to_serial(self):
        class Unpicklable:
            name = "closure"

            def __init__(self):
                self.fn = lambda cnf: ExactCounter().count(cnf)  # defeats pickle

            def count(self, cnf):
                return self.fn(cnf)

        cnf = CNF([[1, 2]], projection=[1, 2])
        assert count_parallel(Unpicklable(), [cnf, cnf.copy()], 4) == [3, 3]

    def test_worker_exceptions_propagate(self):
        from repro.counting.exact import CounterBudgetExceeded

        hard = translate(get_property("Transitive"), 3).cnf
        with pytest.raises(CounterBudgetExceeded):
            count_parallel(ExactCounter(max_nodes=1), [hard, hard.copy()], 2)

    def test_count_many_workers4_bit_identical_to_serial(self):
        batch = [
            translate(prop, scope, symmetry=symmetry).cnf
            for prop, scope, symmetry in MATRIX_CASES
        ]
        serial = CountingEngine(config=EngineConfig(workers=1)).count_many(batch)
        parallel = CountingEngine(config=EngineConfig(workers=4)).count_many(batch)
        assert serial == parallel

    def test_workers_zero_means_one_per_core(self):
        batch = [translate(get_property(name), 2).cnf for name in ("Reflexive", "Connex")]
        engine = CountingEngine(config=EngineConfig(workers=0))
        assert engine._workers >= 1
        assert engine.count_many(batch) == CountingEngine().count_many(batch)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_completed_counts_survive_a_mid_batch_failure(self, workers, tmp_path):
        from repro.counting.exact import CounterBudgetExceeded

        easy = CNF([[1, 2]], projection=[1, 2])  # 3 models, two search nodes
        hard = translate(get_property("Transitive"), 3).cnf  # blows a 10-node budget
        config = EngineConfig(workers=workers, cache_dir=tmp_path)
        engine = CountingEngine(ExactCounter(max_nodes=10), config=config)
        with pytest.raises(CounterBudgetExceeded):
            engine.count_many([easy, hard])
        # The count paid for before the failure reached memo *and* store.
        assert engine.stats.backend_calls == 1
        assert engine.count(easy.copy()) == 3
        assert engine.stats.count_hits == 1
        assert engine.store.get(signature_key(easy.signature())) == 3
        engine.close()

    def test_parallel_results_merge_into_memo(self):
        batch = [
            translate(get_property(name), 3).cnf
            for name in ("Reflexive", "Transitive", "Connex", "Function")
        ]
        engine = CountingEngine(config=EngineConfig(workers=4))
        first = engine.count_many(batch)
        assert engine.stats.backend_calls == len(batch)
        second = engine.count_many(batch)
        assert second == first
        assert engine.stats.backend_calls == len(batch)  # all memo hits now
        assert engine.stats.count_hits == len(batch)


class TestDiskPersistentEngine:
    def _batch(self):
        return [
            translate(get_property(name), 3, symmetry=symmetry).cnf
            for name in ("PartialOrder", "Equivalence", "Function")
            for symmetry in (None, SymmetryBreaking())
        ]

    def test_cold_populates_warm_hits_with_zero_backend_calls(self, tmp_path):
        config = EngineConfig(cache_dir=tmp_path)
        batch = self._batch()

        cold = CountingEngine(config=config)
        first = cold.count_many(batch)
        assert cold.stats.backend_calls == len(batch)
        assert cold.stats.store_hits == 0
        assert len(cold.store) == len(batch)
        cold.close()

        warm = CountingEngine(config=config)
        second = warm.count_many(batch)
        assert second == first
        assert warm.stats.backend_calls == 0
        assert warm.stats.store_hits == len(batch)
        warm.close()

    def test_singular_count_uses_store(self, tmp_path):
        config = EngineConfig(cache_dir=tmp_path)
        cnf = translate(get_property("Transitive"), 3).cnf
        cold = CountingEngine(config=config)
        value = cold.count(cnf)
        cold.close()
        warm = CountingEngine(config=config)
        assert warm.count(cnf.copy()) == value
        assert warm.stats.backend_calls == 0
        assert warm.stats.store_hits == 1
        # Second call in the same engine is an in-memory memo hit.
        assert warm.count(cnf) == value
        assert warm.stats.count_hits == 1
        warm.close()

    def test_corrupted_entry_triggers_recount_and_repair(self, tmp_path):
        config = EngineConfig(cache_dir=tmp_path)
        cnf = translate(get_property("Connex"), 3).cnf
        cold = CountingEngine(config=config)
        value = cold.count(cnf)
        key = signature_key(cnf.signature())
        cold.close()
        with sqlite3.connect(tmp_path / STORE_FILENAME) as raw:
            raw.execute("UPDATE counts SET value = 'garbage' WHERE key = ?", (key,))
            raw.commit()
        warm = CountingEngine(config=config)
        assert warm.count(cnf) == value  # graceful miss → recount
        assert warm.stats.backend_calls == 1
        assert warm.store.get(key) == value  # …and the row is repaired
        warm.close()

    def test_clear_keeps_disk_store(self, tmp_path):
        config = EngineConfig(cache_dir=tmp_path)
        engine = CountingEngine(config=config)
        cnf = translate(get_property("Reflexive"), 2).cnf
        engine.count(cnf)
        engine.clear()
        assert engine.count(cnf) == 1 << 2  # reflexive scope 2: 2 free bits
        assert engine.stats.store_hits == 1
        assert engine.stats.backend_calls == 0
        engine.close()

    def test_approximate_backend_never_touches_the_store(self, tmp_path):
        # An (ε, δ) estimate persisted under a signature-only key would be
        # served to later *exact* runs sharing the cache_dir — so engines
        # over non-exact backends must neither write nor read the store.
        config = EngineConfig(cache_dir=tmp_path)
        cnf = CNF(num_vars=12, projection=range(1, 13))
        approx_engine = CountingEngine(ApproxMCCounter(seed=3), config=config)
        assert approx_engine.store is None
        approx_engine.count(cnf)  # would have persisted 4096±ε
        exact_engine = CountingEngine(config=config)
        assert exact_engine.count(cnf) == 4096
        assert exact_engine.stats.store_hits == 0
        assert exact_engine.stats.backend_calls == 1
        exact_engine.close()

    def test_approximate_backend_stays_serial_under_workers(self):
        # Worker clones of a seeded RNG diverge from the serial estimate
        # stream, so count_many must not fan a non-exact backend out.
        batch = [
            CNF(num_vars=n, projection=range(1, n + 1)) for n in (10, 11, 12, 13)
        ]
        serial = CountingEngine(ApproxMCCounter(seed=9)).count_many(batch)
        fanned = CountingEngine(
            ApproxMCCounter(seed=9), config=EngineConfig(workers=4)
        ).count_many(batch)
        assert fanned == serial

    def test_engines_share_a_cache_dir(self, tmp_path):
        config = EngineConfig(cache_dir=tmp_path, workers=2)
        batch = self._batch()
        producer = CountingEngine(config=config)
        counts = producer.count_many(batch)
        producer.close()
        consumer = CountingEngine(config=EngineConfig(cache_dir=tmp_path))
        assert consumer.count_many(batch) == counts
        assert consumer.stats.backend_calls == 0
        consumer.close()


class TestMemoKeyRegression:
    """Two distinct same-named properties must never share a memo entry."""

    def _twins(self):
        reflexive = get_property("Reflexive")
        transitive = get_property("Transitive")
        first = Property("Twin", reflexive.formula, 5, 3, "reflexive")
        second = Property("Twin", transitive.formula, 6, 3, "transitive")
        return first, second

    def test_translate_does_not_collide_on_names(self):
        first, second = self._twins()
        engine = CountingEngine()
        problem_first = engine.translate(first, 3)
        problem_second = engine.translate(second, 3)
        assert problem_first is not problem_second
        assert engine.stats.translate_hits == 0
        # Reflexive at scope 3 leaves the 6 off-diagonal bits free (2^6);
        # Transitive counts 171 — a name-keyed memo returns 64 for both.
        assert engine.count(problem_first.cnf) == 64
        assert engine.count(problem_second.cnf) == 171

    def test_translate_still_memoizes_structural_equals(self):
        first, _ = self._twins()
        clone = Property("Twin", first.formula, 5, 3, "reflexive")
        engine = CountingEngine()
        assert engine.translate(first, 3) is engine.translate(clone, 3)
        assert engine.stats.translate_hits == 1

    def test_ground_truth_does_not_collide_on_names(self):
        first, second = self._twins()
        engine = CountingEngine()
        gt_first = engine.ground_truth(first, 3)
        gt_second = engine.ground_truth(second, 3)
        assert gt_first is not gt_second
        assert engine.count(gt_first.positive().cnf) == 64
        assert engine.count(gt_second.positive().cnf) == 171


class TestApproxMCFrontier:
    """The m = 1 frontier must be enumerated exactly once per round."""

    def _spy(self, monkeypatch):
        calls: list[int] = []
        original = ApproxMCCounter._cell_size

        def recording(self, cnf, projection, xors, m):
            calls.append(m)
            return original(self, cnf, projection, xors, m)

        monkeypatch.setattr(ApproxMCCounter, "_cell_size", recording)
        return calls

    def test_no_duplicate_cell_enumeration_in_a_round(self, monkeypatch):
        calls = self._spy(monkeypatch)
        # 2^7 = 128 models > threshold 72; one hash halves the cell below
        # the pivot, so every round's frontier sits at m = 1.
        cnf = CNF(num_vars=7, projection=range(1, 8))
        counter = ApproxMCCounter(seed=5, rounds=1)
        counter.count(cnf)
        assert calls, "hashing rounds never ran"
        # One round: the walk-down may probe several distinct m values but
        # must never enumerate the same cell twice (the seed re-ran m=1).
        assert len(calls) == len(set(calls))

    def test_m1_frontier_estimate_is_sound(self):
        cnf = CNF(num_vars=7, projection=range(1, 8))
        epsilon = 0.8
        estimate = ApproxMCCounter(epsilon=epsilon, delta=0.2, seed=11).count(cnf)
        assert 128 / (1 + epsilon) <= estimate <= 128 * (1 + epsilon)


class TestClosedFormAudit:
    """All 16 closed forms pinned to the exact counter at scopes 2–4."""

    @pytest.mark.parametrize("prop", PROPERTIES, ids=lambda p: p.name)
    @pytest.mark.parametrize("scope", (2, 3, 4))
    def test_closed_form_matches_exact_counter(self, prop, scope):
        cnf = translate(prop, scope).cnf
        assert ExactCounter().count(cnf) == closed_form_count(prop.oracle, scope)

    def test_injective_reading_is_the_column_function(self):
        # The audit's conclusion, pinned explicitly: the study's Injective
        # predicate (one pre-image per atom) counts n^n like Function, and
        # both match the exact counter — not the injective-partial-function
        # count, which differs from scope 2 on (7 vs 4).
        assert closed_form_count("injective", 8) == closed_form_count("function", 8)
        injective_partial_functions_n2 = 7  # Σ_k C(2,k)²·k! = 1 + 4 + 2
        assert closed_form_count("injective", 2) == 4
        assert closed_form_count("injective", 2) != injective_partial_functions_n2
