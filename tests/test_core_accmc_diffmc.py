"""AccMC and DiffMC tests: whole-space metrics against brute-force truth."""

import itertools

import numpy as np
import pytest

from repro.core import AccMC, DiffMC
from repro.core.accmc import GroundTruth
from repro.counting import ApproxMCCounter, BDDCounter
from repro.data import generate_dataset
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.spec import SymmetryBreaking, get_property
from repro.spec.evaluate import evaluate_bits


def _tree_for(prop_name: str, scope: int, symmetry=None, seed=0, train_fraction=0.5):
    prop = get_property(prop_name)
    dataset = generate_dataset(prop, scope, symmetry=symmetry, rng=seed)
    train, _ = dataset.split(train_fraction, rng=seed)
    tree = DecisionTreeClassifier().fit(train.X.astype(float), train.y)
    return tree, prop


def _brute_confusion(tree, prop, scope):
    """Ground truth by enumerating all 2^(scope²) inputs."""
    m = scope * scope
    tp = fp = tn = fn = 0
    for bits in itertools.product([0, 1], repeat=m):
        actual = evaluate_bits(prop.formula, bits, scope)
        predicted = bool(tree.predict(np.array([bits], dtype=float))[0])
        if actual and predicted:
            tp += 1
        elif actual and not predicted:
            fn += 1
        elif not actual and predicted:
            fp += 1
        else:
            tn += 1
    return tp, fp, tn, fn


class TestAccMC:
    @pytest.mark.parametrize("prop_name", ["Reflexive", "Function", "Transitive"])
    def test_counts_match_brute_force_scope2(self, prop_name):
        tree, prop = _tree_for(prop_name, 2)
        result = AccMC().evaluate(tree, GroundTruth(prop, 2))
        tp, fp, tn, fn = _brute_confusion(tree, prop, 2)
        assert (result.counts.tp, result.counts.fp) == (tp, fp)
        assert (result.counts.tn, result.counts.fn) == (tn, fn)

    def test_counts_partition_space(self):
        tree, prop = _tree_for("PartialOrder", 3)
        result = AccMC().evaluate(tree, GroundTruth(prop, 3))
        assert result.counts.total == 2**9

    def test_modes_agree(self):
        tree, prop = _tree_for("Equivalence", 3)
        gt = GroundTruth(prop, 3)
        product = AccMC(mode="product").evaluate(tree, gt)
        derived = AccMC(mode="derived").evaluate(tree, gt)
        assert product.counts == derived.counts

    def test_with_symmetry_constrained_ground_truth(self):
        sb = SymmetryBreaking("adjacent")
        tree, prop = _tree_for("Equivalence", 3, symmetry=sb)
        result = AccMC().evaluate(tree, GroundTruth(prop, 3, symmetry=sb))
        # tp + fn = number of positives under symmetry breaking = F(4) = 3.
        assert result.counts.tp + result.counts.fn == 3
        # Both φ and ¬φ are evaluated inside the symmetry-reduced space
        # (Table 3 footnote), so the counts sum to that space's size —
        # computed independently with the vectorised lex-leader filter.
        from repro.counting.brute import iter_assignment_blocks

        space_size = sum(int(sb.mask(b, 3).sum()) for b in iter_assignment_blocks(9))
        assert result.counts.total == space_size

    def test_symmetry_space_reflexive_diagonal_tree_is_perfect(self):
        """Paper Table 3, Reflexive row: a diagonal-checking tree scores a
        perfect 1.0 precision *inside the symmetry-reduced space*."""
        import numpy as np

        prop = get_property("Reflexive")
        sb = SymmetryBreaking("adjacent")
        # Train on the full scope-2 space so CART recovers the exact check.
        dataset = generate_dataset(prop, 2, negative_ratio=3.0, rng=1)
        tree = DecisionTreeClassifier().fit(dataset.X.astype(float), dataset.y)
        result = AccMC().evaluate(tree, GroundTruth(prop, 2, symmetry=sb))
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_perfect_tree_for_reflexive(self):
        """A tree that checks the diagonal exactly scores 1.0 everywhere —
        the paper's explanation for Reflexive/Irreflexive rows.  Trained on
        the full scope-2 space (negative_ratio=3 pulls in all 12 negatives)
        so CART provably recovers the diagonal check."""
        prop = get_property("Reflexive")
        dataset = generate_dataset(prop, 2, negative_ratio=3.0, rng=1)
        assert len(dataset) == 16
        tree = DecisionTreeClassifier().fit(dataset.X.astype(float), dataset.y)
        result = AccMC().evaluate(tree, GroundTruth(prop, 2))
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.accuracy == 1.0

    def test_feature_count_mismatch_rejected(self):
        tree, prop = _tree_for("Reflexive", 2)
        with pytest.raises(ValueError):
            AccMC().evaluate(tree, GroundTruth(prop, 3))

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            AccMC(mode="magic")

    def test_result_row_fields(self):
        tree, prop = _tree_for("Irreflexive", 2)
        row = AccMC().evaluate(tree, GroundTruth(prop, 2)).as_row()
        assert set(row) == {"accuracy", "precision", "recall", "f1", "time"}

    def test_bdd_backend_agrees_in_derived_mode(self):
        """The OBDD ablation backend gives identical derived-mode counts on
        the aux-free region CNFs... via DiffMC-style region counting."""
        tree, prop = _tree_for("Function", 2)
        exact = AccMC(mode="product").evaluate(tree, GroundTruth(prop, 2))
        # BDD can't take Tseitin aux vars, so compare region counts only.
        from repro.core.tree2cnf import label_region_cnf

        bdd = BDDCounter()
        region = label_region_cnf(tree, 1, 4)
        assert bdd.count(region) == exact.counts.tp + exact.counts.fp


class TestDiffMC:
    def test_identical_trees_have_zero_diff(self):
        tree, _ = _tree_for("PreOrder", 2)
        result = DiffMC().evaluate(tree, tree)
        assert result.diff == 0.0
        assert result.sim == 1.0
        assert result.tf == 0 and result.ft == 0

    def test_counts_match_brute_force(self):
        tree1, _ = _tree_for("Transitive", 2, seed=0)
        tree2, _ = _tree_for("Transitive", 2, seed=7, train_fraction=0.3)
        result = DiffMC().evaluate(tree1, tree2)
        tt = tf = ft = ff = 0
        for bits in itertools.product([0, 1], repeat=4):
            x = np.array([bits], dtype=float)
            a = bool(tree1.predict(x)[0])
            b = bool(tree2.predict(x)[0])
            tt += a and b
            tf += a and not b
            ft += (not a) and b
            ff += (not a) and (not b)
        assert (result.tt, result.tf, result.ft, result.ff) == (tt, tf, ft, ff)

    def test_partition_and_sim_identity(self):
        tree1, _ = _tree_for("Connex", 3, seed=1)
        tree2, _ = _tree_for("Connex", 3, seed=9)
        result = DiffMC().evaluate(tree1, tree2)
        assert result.tt + result.tf + result.ft + result.ff == 2**9
        assert result.sim == pytest.approx(1.0 - result.diff)

    def test_symmetric_in_arguments(self):
        tree1, _ = _tree_for("Functional", 2, seed=2)
        tree2, _ = _tree_for("Functional", 2, seed=3)
        ab = DiffMC().evaluate(tree1, tree2)
        ba = DiffMC().evaluate(tree2, tree1)
        assert ab.diff == ba.diff
        assert (ab.tf, ab.ft) == (ba.ft, ba.tf)

    def test_feature_mismatch_rejected(self):
        tree2, _ = _tree_for("Reflexive", 2)
        tree3, _ = _tree_for("Reflexive", 3)
        with pytest.raises(ValueError):
            DiffMC().evaluate(tree2, tree3)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            DiffMC().evaluate(DecisionTreeClassifier(), DecisionTreeClassifier())

    def test_row_reports_percent(self):
        tree1, _ = _tree_for("Irreflexive", 2, seed=4)
        tree2, _ = _tree_for("Irreflexive", 2, seed=5)
        row = DiffMC().evaluate(tree1, tree2).as_row()
        assert 0.0 <= row["diff_percent"] <= 100.0


class TestApproxBackend:
    def test_accmc_with_approx_counter_is_close(self):
        tree, prop = _tree_for("Reflexive", 2)
        exact = AccMC().evaluate(tree, GroundTruth(prop, 2))
        approx = AccMC(counter=ApproxMCCounter(seed=1)).evaluate(
            tree, GroundTruth(prop, 2)
        )
        # Scope-2 counts are tiny, so ApproxMC's exact-small path applies.
        assert approx.counts == exact.counts
