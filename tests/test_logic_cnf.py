"""Unit tests for the CNF container, DIMACS I/O and Tseitin transform."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import CNF, FALSE, TRUE, Var, direct_cnf, tseitin_cnf
from repro.logic.cnf import unit_propagate
from repro.logic.formula import iter_assignments

from tests.test_logic_formula import formula_strategy, _MAX_VARS


class TestCNFContainer:
    def test_add_clause_and_num_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([3])
        assert cnf.num_vars == 3
        assert len(cnf) == 2

    def test_tautology_dropped(self):
        cnf = CNF()
        cnf.add_clause([1, -1, 2])
        assert len(cnf) == 0

    def test_duplicate_literals_merged(self):
        cnf = CNF([[1, 1, 2]])
        assert cnf.clauses == [(1, 2)]

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_evaluate_dict_and_sequence(self):
        cnf = CNF([[1, 2], [-1, 3]])
        assert cnf.evaluate({1: True, 2: False, 3: True})
        assert cnf.evaluate([True, False, True])
        assert not cnf.evaluate({1: True, 2: False, 3: False})

    def test_variables_and_projection(self):
        cnf = CNF([[1, 4]], projection=[1, 2])
        assert cnf.variables() == {1, 4}
        assert cnf.projected_vars() == {1, 2}
        cnf2 = CNF([[1, 4]])
        assert cnf2.projected_vars() == {1, 2, 3, 4}

    def test_conjoin(self):
        a = CNF([[1, 2]], projection=[1, 2])
        b = CNF([[-2, 3]], projection=[3])
        c = a.conjoin(b)
        assert len(c) == 2
        assert c.projected_vars() == {1, 2, 3}

    def test_is_horn(self):
        assert CNF([[-1, -2, 3], [-3]]).is_horn()
        assert not CNF([[1, 2]]).is_horn()

    def test_stats(self):
        cnf = CNF([[1, 2], [-1]], projection=[1])
        stats = cnf.stats()
        assert stats == {
            "primary_vars": 1,
            "total_vars": 2,
            "clauses": 2,
            "literals": 3,
        }


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF([[1, -2], [2, 3], [-3]], projection=[1, 2])
        text = cnf.to_dimacs()
        back = CNF.from_dimacs(text)
        assert back.clauses == cnf.clauses
        assert back.num_vars == cnf.num_vars
        assert back.projected_vars() == {1, 2}

    def test_parse_header_and_comments(self):
        text = "c a comment\nc ind 1 3 0\np cnf 3 2\n1 -2 0\n2 3 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 3
        assert cnf.clauses == [(1, -2), (2, 3)]
        assert cnf.projected_vars() == {1, 3}

    def test_malformed_problem_line(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p dnf 1 1\n1 0\n")


class TestUnitPropagate:
    def test_propagates_units(self):
        result = unit_propagate([(1,), (-1, 2), (-2, 3)], {})
        assert result is not None
        residual, assign = result
        assert residual == []
        assert assign == {1: True, 2: True, 3: True}

    def test_conflict(self):
        assert unit_propagate([(1,), (-1,)], {}) is None

    def test_respects_initial_assignment(self):
        result = unit_propagate([(-1, 2)], {1: True})
        assert result is not None
        _, assign = result
        assert assign[2] is True


class TestTseitin:
    def test_simple_and(self):
        x, y = Var(1), Var(2)
        cnf = tseitin_cnf(x & y)
        # Aux variables must come after inputs.
        assert cnf.num_vars == 3
        assert cnf.projected_vars() == {1, 2}
        assert _count_all_models(cnf) == 1

    def test_true_constant(self):
        cnf = tseitin_cnf(TRUE, num_input_vars=2)
        assert _count_all_models(cnf) == 4

    def test_false_constant(self):
        cnf = tseitin_cnf(FALSE, num_input_vars=2)
        assert _count_all_models(cnf) == 0

    def test_rejects_out_of_range_vars(self):
        with pytest.raises(ValueError):
            tseitin_cnf(Var(5), num_input_vars=2)

    @given(formula_strategy())
    @settings(max_examples=60)
    def test_equisatisfiable_and_unique_extension(self, f):
        """Every input assignment extends to exactly one model (DESIGN §5.2)."""
        cnf = tseitin_cnf(f, num_input_vars=_MAX_VARS)
        for assignment in iter_assignments(range(1, _MAX_VARS + 1)):
            extensions = _extensions(cnf, assignment)
            expected = 1 if f.evaluate(assignment) else 0
            assert len(extensions) == expected

    @given(formula_strategy())
    @settings(max_examples=60)
    def test_projected_count_matches_truth_table(self, f):
        cnf = tseitin_cnf(f, num_input_vars=_MAX_VARS)
        truth_count = sum(
            1
            for a in iter_assignments(range(1, _MAX_VARS + 1))
            if f.evaluate(a)
        )
        assert _count_all_models(cnf) == truth_count


class TestDirectCnf:
    @given(formula_strategy())
    @settings(max_examples=60)
    def test_equivalent_to_formula(self, f):
        clauses = direct_cnf(f)
        cnf = CNF(clauses, num_vars=_MAX_VARS)
        for assignment in iter_assignments(range(1, _MAX_VARS + 1)):
            assert cnf.evaluate(assignment) == f.evaluate(assignment)

    def test_blowup_guard(self):
        # (x1∧x2) ∨ (x3∧x4) ∨ ... with a tiny budget must raise.
        parts = [Var(2 * i + 1) & Var(2 * i + 2) for i in range(8)]
        from repro.logic.formula import Or

        with pytest.raises(ValueError):
            direct_cnf(Or(*parts), max_clauses=10)


def _count_all_models(cnf: CNF) -> int:
    """Brute-force count over all variables (tiny instances only)."""
    count = 0
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate(list(bits)):
            count += 1
    return count


def _extensions(cnf: CNF, assignment: dict[int, bool]) -> list[dict[int, bool]]:
    """All total models of cnf agreeing with ``assignment`` on its keys."""
    aux_vars = [v for v in range(1, cnf.num_vars + 1) if v not in assignment]
    found = []
    for bits in itertools.product([False, True], repeat=len(aux_vars)):
        total = dict(assignment)
        total.update(zip(aux_vars, bits))
        if cnf.evaluate(total):
            found.append(total)
    return found
