"""Tests for confusion counts and derived metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import ConfusionCounts, classification_metrics, confusion_counts


class TestConfusionCounts:
    def test_basic_metrics(self):
        c = ConfusionCounts(tp=8, fp=2, tn=7, fn=3)
        assert c.total == 20
        assert c.accuracy == pytest.approx(15 / 20)
        assert c.precision == pytest.approx(8 / 10)
        assert c.recall == pytest.approx(8 / 11)
        f1 = 2 * (8 / 10) * (8 / 11) / ((8 / 10) + (8 / 11))
        assert c.f1 == pytest.approx(f1)

    def test_zero_division_convention(self):
        # No predicted positives -> precision 0; no actual positives -> recall 0.
        c = ConfusionCounts(tp=0, fp=0, tn=5, fn=5)
        assert c.precision == 0.0
        assert c.f1 == 0.0
        c2 = ConfusionCounts(tp=0, fp=5, tn=5, fn=0)
        assert c2.recall == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ConfusionCounts(tp=-1, fp=0, tn=0, fn=0)

    def test_huge_counts_mcml_scale(self):
        # Whole-space counts at scope 20 exceed 2^400; metrics must not
        # overflow and must stay in [0, 1].
        tp = 10946
        fp = 2**400 - 10946
        c = ConfusionCounts(tp=tp, fp=int(fp), tn=0, fn=0)
        assert 0.0 <= c.precision <= 1e-100
        assert c.recall == 1.0

    def test_huge_balanced_counts(self):
        c = ConfusionCounts(tp=2**300, fp=2**300, tn=2**300, fn=2**300)
        assert c.accuracy == pytest.approx(0.5)
        assert c.precision == pytest.approx(0.5)

    def test_addition(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        assert a + b == ConfusionCounts(11, 22, 33, 44)

    def test_as_dict(self):
        d = ConfusionCounts(1, 0, 1, 0).as_dict()
        assert set(d) == {"accuracy", "precision", "recall", "f1"}
        assert d["accuracy"] == 1.0


class TestFromPredictions:
    def test_confusion_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        c = confusion_counts(y_true, y_pred)
        assert (c.tp, c.fp, c.tn, c.fn) == (2, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([1, 0]), np.array([1]))

    def test_classification_metrics_perfect(self):
        y = np.array([0, 1, 1, 0])
        metrics = classification_metrics(y, y)
        assert metrics == {"accuracy": 1.0, "precision": 1.0, "recall": 1.0, "f1": 1.0}

    @given(
        st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60)
    )
    def test_partition_invariant(self, pairs):
        y_true = np.array([a for a, _ in pairs], dtype=int)
        y_pred = np.array([b for _, b in pairs], dtype=int)
        c = confusion_counts(y_true, y_pred)
        assert c.total == len(pairs)
        assert 0.0 <= c.accuracy <= 1.0
        assert 0.0 <= c.precision <= 1.0
        assert 0.0 <= c.recall <= 1.0
        assert 0.0 <= c.f1 <= 1.0
        # F1 is between min and max of precision/recall (harmonic mean).
        if c.precision > 0 and c.recall > 0:
            assert min(c.precision, c.recall) - 1e-12 <= c.f1
            assert c.f1 <= max(c.precision, c.recall) + 1e-12
