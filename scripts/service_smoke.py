#!/usr/bin/env python
"""End-to-end smoke of the counting service daemon, as CI runs it.

Spawns a real ``mcml serve`` subprocess and drives it the way a hostile
afternoon would:

* several concurrent :class:`ServiceClient` threads counting distinct
  property CNFs, checked bit-for-bit against an in-process session;
* one client killed mid-request (half a JSON line, then an abrupt
  close) — the daemon must shrug, not crash;
* one client that trips admission control (the daemon runs with a tiny
  queue and per-client budget) and sees a typed ``overloaded`` error;
* a SIGTERM drain: the daemon must exit 0 within the timeout and emit a
  clean ``drained`` event.

Then the cluster leg: two more ``mcml serve`` daemons behind a
:class:`ShardedClient` — the batch must come back bit-identical to the
in-process session, one shard is SIGKILLed and the rerun batch must
complete on the survivor via rehash-failover, and the survivor must
still SIGTERM-drain clean.  The cluster daemons run with
``--solver-threads 2`` so the sharding story is exercised on multi-lane
daemons.

Then the lanes leg: a ``--solver-threads 2`` daemon over a sleeping
exact backend (sleep releases the GIL, so lane overlap is measurable
even on one core).  Two distinct slow requests submitted concurrently
must finish in well under the serial sum of their delays, the ``stats``
verb must report both lanes working, and the daemon must still
SIGTERM-drain clean with a traceback-free stderr.

Afterwards each daemon's stderr is scanned: any ``Traceback`` means an
exception escaped the typed error taxonomy (the in-process equivalent of
the ``bare-except-allowlist`` gate), and the smoke fails.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py

Exit status 0 on success; any failure prints the evidence and exits 1.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = str(REPO_ROOT / "src")
sys.path.insert(0, SRC_DIR)

from repro.core.session import MCMLSession  # noqa: E402
from repro.counting.exact import ExactCounter  # noqa: E402
from repro.counting.service import (  # noqa: E402
    ServiceClient,
    ServiceOverloaded,
    ShardedClient,
)
from repro.counting.service import protocol  # noqa: E402
from repro.logic import CNF  # noqa: E402
from repro.spec import SymmetryBreaking, get_property, translate  # noqa: E402
from repro.spec.properties import property_names  # noqa: E402

DRAIN_TIMEOUT_S = 30


def fail(message: str) -> None:
    print(f"service smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _await_listening(proc: subprocess.Popen) -> tuple[str, int]:
    ready = json.loads(proc.stdout.readline())
    if ready.get("event") != "listening":
        fail(f"daemon did not report listening: {ready}")
    print(f"  daemon up on {ready['host']}:{ready['port']} (pid {proc.pid})")
    return ready["host"], ready["port"]


def _daemon_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_daemon(
    cache_dir: str, *, tiny_limits: bool = True, extra_args: list[str] | None = None
) -> tuple[subprocess.Popen, str, int]:
    argv = [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        "serve",
        "--backend",
        "exact",
        "--cache-dir",
        cache_dir,
    ]
    if tiny_limits:
        # Tiny admission limits so the storm below reliably trips them.
        argv += ["--max-queue", "2", "--max-inflight", "2"]
    argv += extra_args or []
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_daemon_env(),
    )
    host, port = _await_listening(proc)
    return proc, host, port


def concurrent_clients(host: str, port: int, batch, expected) -> None:
    """N worker threads splitting the batch; bit-identity is the bar."""
    results: list[int | None] = [None] * len(batch)
    errors: list[str] = []
    workers = 3

    def worker(offset: int) -> None:
        # Generous retries: the admission limits are deliberately tiny,
        # so overloaded rejections are expected and must be ridden out.
        client = ServiceClient(host, port, retries=10, backoff_base=0.02)
        try:
            for index in range(offset, len(batch), workers):
                results[index] = client.solve(batch[index]).value
        except Exception as exc:  # noqa: BLE001 - reported as smoke failure
            errors.append(f"worker {offset}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        fail(f"concurrent clients errored: {errors}")
    if results != expected:
        fail(f"remote counts diverge from in-process: {results} != {expected}")
    print(f"  {workers} concurrent clients: {len(batch)} counts bit-identical")


def kill_client_mid_request(host: str, port: int, request_dict: dict) -> None:
    """Half a request line, then an abrupt close — the daemon must survive."""
    line = protocol.encode_line({"id": 1, "verb": "solve", "request": request_dict})
    sock = socket.create_connection((host, port), timeout=10)
    sock.sendall(line[: len(line) // 2])
    sock.close()
    print("  killed one client mid-request (half a line, abrupt close)")


def trip_admission_control(host: str, port: int, pin_dict: dict, probe_dict: dict) -> None:
    """Pipeline past the per-client budget; expect typed rejections.

    The daemon runs with ``--max-inflight 2``.  The burst leads with a
    *pin* — a slow, uncached request that occupies the single solver
    thread — then pipelines identical probe requests behind it.  While
    the pin computes, the first probe is admitted (coalesced waiters
    count against the budget too) and every later one deterministically
    gets the typed ``overloaded`` envelope.
    """
    burst = 6
    lines = [protocol.encode_line({"id": 0, "verb": "solve", "request": pin_dict})]
    lines += [
        protocol.encode_line({"id": i, "verb": "solve", "request": probe_dict})
        for i in range(1, burst)
    ]
    sock = socket.create_connection((host, port), timeout=10)
    try:
        sock.settimeout(30)
        sock.sendall(b"".join(lines))
        reader = protocol.LineReader(sock)
        responses = [protocol.decode_line(reader.readline()) for _ in range(burst)]
    finally:
        sock.close()
    rejected = [
        r for r in responses
        if not r.get("ok") and (r.get("error") or {}).get("code") == "overloaded"
    ]
    if len(rejected) != burst - 2:
        fail(
            f"expected {burst - 2} overloaded rejections (pin + one probe "
            f"admitted), got {len(rejected)}: {responses}"
        )
    if not all((r.get("error") or {}).get("retryable") for r in rejected):
        fail(f"overloaded rejection not marked retryable: {rejected}")
    # And a well-behaved client with no retry budget sees the typed error.
    client = ServiceClient(host, port, retries=0)
    try:
        client.solve(translate(get_property("PartialOrder"), 3).cnf)
    except ServiceOverloaded:
        pass  # also acceptable: the daemon may still be digesting the burst
    finally:
        client.close()
    print(f"  admission control tripped: {len(rejected)}/{burst} typed 'overloaded'")


def drain(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = proc.communicate(timeout=DRAIN_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        fail(f"daemon did not drain within {DRAIN_TIMEOUT_S}s of SIGTERM")
    if proc.returncode != 0:
        fail(f"daemon exited {proc.returncode} after SIGTERM:\n{stderr}")
    events = [json.loads(line) for line in stdout.splitlines() if line.strip()]
    drained = [e for e in events if e.get("event") == "drained"]
    if not drained or not drained[-1].get("clean"):
        fail(f"no clean drained event on stdout: {events}")
    print("  SIGTERM drain: exit 0, drained clean")
    return stderr


def check_stderr(stderr: str) -> None:
    """No exception may escape the typed taxonomy into the daemon's log."""
    if "Traceback (most recent call last)" in stderr:
        fail(f"daemon stderr contains a traceback:\n{stderr}")
    print("  daemon stderr: no tracebacks (typed errors only)")


#: Daemon program of the lanes leg: an exact backend behind a fixed
#: sleep (sleep releases the GIL, so two lanes overlap measurably even
#: on a single-core runner), registered and served with two solver
#: lanes.  argv: [delay_seconds].
LANES_DAEMON = """
import sys, time
from repro.counting.api import register_backend
from repro.counting.exact import ExactCounter

DELAY = float(sys.argv[1])

class SleepyCounter(ExactCounter):
    def count(self, cnf):
        time.sleep(DELAY)
        return super().count(cnf)

register_backend("sleepy", lambda **_: SleepyCounter())

from repro.experiments.cli import main
sys.exit(main(["serve", "--backend", "sleepy", "--solver-threads", "2"]))
"""


def lanes_leg() -> None:
    """A 2-lane daemon: distinct slow requests must overlap in wall-clock."""
    print("lanes leg: --solver-threads 2 over a sleeping backend")
    delay = 0.6
    problems = [
        CNF(num_vars=3, clauses=[(1,), (2, 3)]),
        CNF(num_vars=3, clauses=[(-1,), (2,)]),
    ]
    expected = [ExactCounter().count(problem) for problem in problems]
    proc = subprocess.Popen(
        [sys.executable, "-c", LANES_DAEMON, str(delay)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_daemon_env(),
    )
    try:
        host, port = _await_listening(proc)
        results: list[int | None] = [None] * len(problems)
        errors: list[str] = []

        def worker(index: int) -> None:
            client = ServiceClient(host, port, request_timeout=60)
            try:
                results[index] = client.solve(problems[index]).value
            except Exception as exc:  # noqa: BLE001 - reported as smoke failure
                errors.append(f"lane client {index}: {type(exc).__name__}: {exc}")
            finally:
                client.close()

        started = time.monotonic()
        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(problems))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        if errors:
            fail(f"lane clients errored: {errors}")
        if results != expected:
            fail(f"2-lane counts diverge from in-process: {results} != {expected}")
        serial = delay * len(problems)
        if elapsed >= 0.8 * serial:
            fail(
                f"no lane overlap: {len(problems)} distinct {delay}s requests "
                f"took {elapsed:.2f}s (serial sum {serial:.2f}s)"
            )
        print(
            f"  {len(problems)} distinct {delay}s requests overlapped: "
            f"{elapsed:.2f}s < 0.8 x {serial:.2f}s serial"
        )
        client = ServiceClient(host, port)
        try:
            payload = client.stats()
        finally:
            client.close()
        lanes = payload["service"]["lanes"]
        if payload["service"]["solver_threads"] != 2 or len(lanes) != 2:
            fail(f"expected 2 lanes in the stats verb, got {payload['service']}")
        if sum(lane["jobs"] for lane in lanes) < len(problems):
            fail(f"lanes report too few jobs: {lanes}")
        if payload["engine"]["backend_calls"] != len(problems):
            fail(
                "summed engine stats miss the lane split: backend_calls = "
                f"{payload['engine']['backend_calls']} != {len(problems)}"
            )
        print(f"  stats verb: 2 lanes, jobs split {[lane['jobs'] for lane in lanes]}")
    except BaseException:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        raise
    stderr = drain(proc)
    check_stderr(stderr)


def cluster_leg(batch, expected) -> None:
    """Two daemons, one SIGKILLed: failover must finish the batch.

    The cluster daemons run with default admission limits — the sharded
    client treats an exhausted retry budget as shard death, so only real
    deaths (the SIGKILL below) may look like one.
    """
    print("cluster leg: 2 shards behind a ShardedClient")
    with tempfile.TemporaryDirectory() as cache_root:
        procs: list[subprocess.Popen] = []
        shards: list[tuple[str, int]] = []
        try:
            for i in range(2):
                proc, host, port = spawn_daemon(
                    str(Path(cache_root) / f"shard-{i}"),
                    tiny_limits=False,
                    extra_args=["--solver-threads", "2"],
                )
                procs.append(proc)
                shards.append((host, port))
            with ShardedClient(shards, retries=2, backoff_base=0.02) as cluster:
                values = cluster.count_many(batch)
                if values != expected:
                    fail(f"cluster counts diverge: {values} != {expected}")
                owners = {cluster.shard_for(problem) for problem in batch}
                print(
                    f"  2-shard count_many bit-identical "
                    f"({len(batch)} problems over {len(owners)} shard(s))"
                )
                # SIGKILL whichever shard owns the first problem, then
                # rerun the batch: its positions must rehash onto the
                # survivor mid-batch and the values must not move.
                victim = cluster.shard_for(batch[0])
                victim_index = shards.index(victim)
                procs[victim_index].kill()
                procs[victim_index].communicate()
                again = cluster.count_many(batch)
                if again != expected:
                    fail(f"post-kill counts diverge: {again} != {expected}")
                if cluster.failovers != 1 or cluster.failed_shards != [victim]:
                    fail(
                        f"expected exactly one failover of {victim}, got "
                        f"failovers={cluster.failovers} "
                        f"dead={cluster.failed_shards}"
                    )
                print(
                    f"  SIGKILLed shard {victim_index}: batch completed on "
                    f"the survivor via rehash-failover"
                )
            survivor = procs[1 - victim_index]
            stderr = drain(survivor)
            check_stderr(stderr)
        except BaseException:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            raise


def main() -> None:
    print("counting-service smoke")
    symmetry = SymmetryBreaking()
    batch = []
    for name in tuple(property_names())[:3]:
        prop = get_property(name)
        batch.append(translate(prop, 3, symmetry=symmetry).cnf)
        batch.append(translate(prop, 3).cnf)
    with MCMLSession(backend="exact") as session:
        expected = [session.solve(problem).value for problem in batch]
    probe = ServiceClient._as_request(batch[0]).to_dict()
    # Slow and uncached on the daemon: pins the solver for the admission
    # storm (the scope-5 symbr instance takes over a second of real search,
    # dwarfing the microseconds the reader needs to dispatch the burst).
    pin = ServiceClient._as_request(
        translate(get_property("PartialOrder"), 5, symmetry=symmetry).cnf
    ).to_dict()

    with tempfile.TemporaryDirectory() as cache_dir:
        proc, host, port = spawn_daemon(cache_dir)
        try:
            concurrent_clients(host, port, batch, expected)
            kill_client_mid_request(host, port, probe)
            trip_admission_control(host, port, pin, probe)
            # The daemon must still answer correctly after the abuse.
            client = ServiceClient(host, port, retries=10)
            try:
                value = client.solve(batch[0]).value
            finally:
                client.close()
            if value != expected[0]:
                fail(f"post-abuse count diverged: {value} != {expected[0]}")
            print("  daemon still answers correctly after the abuse")
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        stderr = drain(proc)
        check_stderr(stderr)
    cluster_leg(batch, expected)
    lanes_leg()
    print("ok")


if __name__ == "__main__":
    main()
