"""Shared benchmark fixtures.

Benchmarks regenerate every table and figure of the paper at reduced scopes
(see EXPERIMENTS.md for the full-scale runs and the paper-vs-measured
comparison).  Table-level benchmarks run one round — they are end-to-end
experiments, not microbenchmarks — while the substrate benchmarks (solver,
counters, translation) use pytest-benchmark's default calibration.
"""

import pytest

from repro.experiments.config import ExperimentConfig

#: Properties used by the wide table benches: a sparse-order property, a
#: function-like property, and the two trivially-learnable diagonal ones.
BENCH_PROPERTIES = ("PartialOrder", "Function", "Reflexive", "Antisymmetric")


@pytest.fixture
def bench_config():
    """Reduced-scope config keeping each table bench in seconds."""
    return ExperimentConfig(
        properties=BENCH_PROPERTIES,
        scope=4,
        counter="brute",
        seed=0,
    )


@pytest.fixture
def exact_config():
    """Exact-counter config (the ProjMC stand-in) on a narrower slice."""
    return ExperimentConfig(
        properties=("PartialOrder", "Reflexive"),
        scope=4,
        counter="exact",
        seed=0,
    )


def once(benchmark, fn, *args, **kwargs):
    """Run an end-to-end experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
