"""Benchmark: regenerate Table 5 (no symmetry breaking anywhere)."""

from benchmarks.conftest import once
from repro.experiments.generalization import generalization_table


def test_table5_generalization(benchmark, bench_config):
    rows = once(benchmark, generalization_table, 5, bench_config)
    by_name = {r.property_name: r for r in rows}
    # Counts partition the full 2^16 space here (no symmetry constraint):
    assert by_name["Function"].phi_precision < 0.2
    # Test metrics remain high for the well-populated properties.
    assert by_name["Reflexive"].test_accuracy >= 0.9
