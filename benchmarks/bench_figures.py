"""Benchmarks: Figures 1 and 2 (spec compilation and solution enumeration)."""

from benchmarks.conftest import once
from repro.experiments.figures import figure1, figure2


def test_figure1_parse_and_compile(benchmark):
    result = benchmark(figure1)
    assert result.primary_vars == 16


def test_figure2_enumeration(benchmark):
    solutions = once(benchmark, figure2, 4)
    assert len(solutions) == 5  # the paper's Figure 2
