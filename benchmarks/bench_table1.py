"""Benchmark: regenerate Table 1 (subject properties and model counts)."""

from benchmarks.conftest import once
from repro.experiments.table1 import table1


def test_table1_counts(benchmark, bench_config):
    rows = once(benchmark, table1, bench_config)
    assert len(rows) == len(bench_config.properties)
    for row in rows:
        # The no-symmetry-breaking exact count must equal the closed form —
        # the same consistency the published table exhibits.
        assert row.valid_nosymbr_exact == row.closed_form
        assert row.valid_symbr_alloy == row.valid_symbr_exact


def test_table1_paper_scopes_analytic(benchmark, bench_config):
    rows = once(benchmark, table1, bench_config, paper_scopes=True)
    published = {
        "PartialOrder": 8_321_472,
        "Function": 16_777_216,
        "Reflexive": 1_048_576,
        "Antisymmetric": 1_889_568,
    }
    for row in rows:
        assert row.closed_form == published[row.property_name]
