"""Benchmark: regenerate Table 4 (six models × splits, symmetries intact)."""

from benchmarks.conftest import once
from repro.experiments.classification import classification_table


def test_table4_classification_grid(benchmark, bench_config):
    rows = once(
        benchmark,
        classification_table,
        bench_config,
        property_name="PartialOrder",
        symmetry_breaking=False,
        ratios=(0.75, 0.25),
    )
    assert len(rows) == 12
    for row in rows:
        assert 0.0 <= row.counts.f1 <= 1.0
