"""Benchmark package (a package so `pytest` resolves cross-file imports)."""
