"""Benchmark: regenerate Table 9 (class-ratio sweep, traditional vs MCML)."""

from benchmarks.conftest import once
from repro.experiments.table9 import table9


def test_table9_class_ratios(benchmark, bench_config):
    rows = once(benchmark, table9, bench_config)
    assert [r.ratio for r in rows][0] == "99:1"
    # Traditional precision stays flattering at every ratio while MCML
    # exposes the skew-trained model (the published Table 9 trend).
    most_skewed = rows[0]
    balanced = next(r for r in rows if r.ratio == "50:50")
    assert most_skewed.traditional_precision >= 0.9
    assert most_skewed.mcml_precision < balanced.mcml_precision + 1e-9
