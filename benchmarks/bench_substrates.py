"""Substrate microbenchmarks: SAT solving, counting back-ends, Tree2CNF.

These are the ablation measurements DESIGN.md §6 calls out: the counting
back-ends compared on identical problems, and the Håstad path-negation
translation against the naive distribution alternative it replaces.
"""

import numpy as np
import pytest

from repro.core.tree2cnf import label_cubes, label_region_cnf, tree_paths_formula
from repro.counting import (
    ApproxMCCounter,
    BDDCounter,
    CompiledCounter,
    CompositeCounter,
    CountingEngine,
    ExactCounter,
    FormulaBruteCounter,
    LegacyExactCounter,
)
from repro.logic.cnf import CNF
from repro.logic.tseitin import direct_cnf, tseitin_cnf
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.spec import SymmetryBreaking, get_property, translate


@pytest.fixture(scope="module")
def partial_order_cnf():
    return translate(get_property("PartialOrder"), 4, symmetry=SymmetryBreaking()).cnf


@pytest.fixture(scope="module")
def fitted_tree():
    rng = np.random.default_rng(0)
    X = rng.integers(0, 2, size=(600, 16)).astype(float)
    y = (X[:, 0].astype(int) & X[:, 5].astype(int)) | (
        X[:, 10].astype(int) ^ X[:, 15].astype(int)
    )
    return DecisionTreeClassifier().fit(X, y)


class TestSolverBench:
    def test_solve_partial_order(self, benchmark, partial_order_cnf):
        from repro.sat import SatResult, solve

        result, _ = benchmark(
            solve, partial_order_cnf.clauses, partial_order_cnf.num_vars
        )
        assert result is SatResult.SAT

    def test_enumerate_equivalence_scope4(self, benchmark):
        from repro.sat import count_models

        problem = translate(get_property("Equivalence"), 4, symmetry=SymmetryBreaking())
        count = benchmark(count_models, problem.cnf)
        assert count == 5


class TestCounterAblation:
    """The same counting problem through every backend (DESIGN.md §6)."""

    def test_exact_counter(self, benchmark, partial_order_cnf):
        count = benchmark(lambda: ExactCounter().count(partial_order_cnf))
        assert count > 0

    def test_legacy_exact_counter(self, benchmark, partial_order_cnf):
        """The seed's tuple-clause algorithm — the packed rewrite's baseline."""
        count = benchmark.pedantic(
            lambda: LegacyExactCounter().count(partial_order_cnf),
            rounds=3,
            iterations=1,
        )
        assert count == ExactCounter().count(partial_order_cnf)

    def test_counting_engine_warm(self, benchmark, partial_order_cnf):
        """A memo hit through the CountingEngine (the AccMC steady state)."""
        engine = CountingEngine()
        cold = engine.count(partial_order_cnf)
        warm = benchmark(lambda: engine.count(partial_order_cnf))
        assert warm == cold

    def test_approxmc_counter(self, benchmark, partial_order_cnf):
        exact = ExactCounter().count(partial_order_cnf)
        estimate = benchmark.pedantic(
            lambda: ApproxMCCounter(seed=0).count(partial_order_cnf),
            rounds=1,
            iterations=1,
        )
        assert exact / 1.8 <= estimate <= exact * 1.8

    def test_bdd_counter_on_tree_region(self, benchmark, fitted_tree):
        region = label_region_cnf(fitted_tree, 1, 16)
        exact = ExactCounter().count(region)
        count = benchmark(lambda: BDDCounter().count(region))
        assert count == exact

    def test_compiled_conditioning_on_tree_region(self, benchmark, fitted_tree):
        # The compile-once-query-forever query cost: the circuit is built
        # outside the timed region, so the measurement is one conditioning
        # pass — the marginal cost of each extra region on a warm circuit.
        region = label_region_cnf(fitted_tree, 1, 16)
        circuit = CompiledCounter().compile(region)
        cube = label_cubes(fitted_tree, 0, 16)[0]
        exact = ExactCounter().count(
            CNF(
                num_vars=region.num_vars,
                clauses=list(region.clauses) + [(lit,) for lit in cube],
                projection=region.projection,
            )
        )
        count = benchmark(lambda: circuit.condition(cube))
        assert count == exact

    def test_composite_router(self, benchmark, partial_order_cnf):
        # The routing backend on the ablation instance: the Tseitin
        # auxiliaries send it down the exact route, so the delta vs
        # test_exact_counter is the price of dispatch itself.
        backend = CompositeCounter()
        route = backend.route(partial_order_cnf)
        assert route.rule.target == "exact"
        count = benchmark(lambda: CompositeCounter().count(partial_order_cnf))
        assert count == ExactCounter().count(partial_order_cnf)

    def test_formula_brute_counter(self, benchmark):
        problem = translate(get_property("PartialOrder"), 4, symmetry=SymmetryBreaking())
        counter = FormulaBruteCounter()
        count = benchmark(lambda: counter.count_formula(problem.formula, 16))
        assert count == ExactCounter().count(problem.cnf)


class TestTree2CnfAblation:
    """Håstad path-negation vs alternatives on a real trained tree."""

    def test_hastad_translation(self, benchmark, fitted_tree):
        cnf = benchmark(label_region_cnf, fitted_tree, 1, 16)
        # Linear in the number of opposite-label leaves, no aux variables.
        assert cnf.num_vars == 16

    def test_tseitin_alternative(self, benchmark, fitted_tree):
        """Tseitin of the true-path DNF: linear too, but with aux variables
        (and therefore unusable for direct model counting conjunctions)."""
        dnf = tree_paths_formula(fitted_tree, 1)
        cnf = benchmark(tseitin_cnf, dnf, 16)
        assert cnf.num_vars > 16  # the aux-variable cost Håstad avoids

    def test_distribution_alternative_blows_up(self, fitted_tree):
        """Naive distribution exceeds any reasonable clause budget."""
        dnf = tree_paths_formula(fitted_tree, 1)
        with pytest.raises(ValueError):
            direct_cnf(dnf, max_clauses=20_000)


class TestTrainingBench:
    def test_decision_tree_training(self, benchmark):
        from repro.data import generate_dataset

        dataset = generate_dataset(get_property("PartialOrder"), 4, rng=0)
        X, y = dataset.X.astype(float), dataset.y
        tree = benchmark(lambda: DecisionTreeClassifier().fit(X, y))
        assert tree.score(X, y) >= 0.95
