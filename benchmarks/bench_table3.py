"""Benchmark: regenerate Table 3 (test set vs φ∧symbr, datasets broken)."""

from benchmarks.conftest import once
from repro.experiments.generalization import generalization_table


def test_table3_generalization(benchmark, bench_config):
    rows = once(benchmark, generalization_table, 3, bench_config)
    by_name = {r.property_name: r for r in rows}
    # The paper's headline: sparse properties lose precision on the whole
    # space while recall survives; diagonal properties can stay perfect.
    assert by_name["Function"].phi_precision < 0.2
    assert by_name["Function"].phi_recall >= 0.5


def test_table3_exact_counter_slice(benchmark, exact_config):
    """The same table through the real exact counter (ProjMC stand-in)."""
    rows = once(benchmark, generalization_table, 3, exact_config)
    assert len(rows) == 2
