#!/usr/bin/env python
"""Render a markdown diff of a --quick smoke record vs the recorded history.

CI runs ``run_bench.py --quick --smoke-output smoke.json`` and pipes this
script's output into ``$GITHUB_STEP_SUMMARY``, so a perf movement is
*visible* in the job summary — not just a pass/fail behind the 3x gate::

    python benchmarks/diff_smoke.py smoke.json >> "$GITHUB_STEP_SUMMARY"

The comparison baseline is the last ``history`` entry of
``BENCH_counting.json`` (the numbers the most recent PR recorded on the
recording machine).  CI hardware differs, so the ratios are context, not a
gate — the hard gate stays in ``run_bench.py --quick`` itself.
Exit code is always 0 unless the inputs are unreadable: this is a report,
not a check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: smoke-record field → (history field, unit, higher_is_better)
COMPARISONS = (
    ("exact_median_s", "exact_median_s", "s", False),
    ("workers_fanout.speedup_x", "workers_fanout_speedup_x", "x", True),
    ("disk_cache.speedup_x", "warm_cache_speedup_x", "x", True),
    ("component_cache.speedup_x", "component_cache_speedup_x", "x", True),
    ("component_spill.speedup_x", "component_spill_speedup_x", "x", True),
    ("compiled_conditioning.speedup_x", "compiled_conditioning_speedup_x", "x", True),
    ("cluster_sharding.speedup_x", "cluster_sharding_speedup_x", "x", True),
    ("store_roundtrip.puts_per_s", "store_roundtrip_puts_per_s", "/s", True),
)


def _smoke_value(smoke: dict, dotted: str):
    if "." not in dotted:
        return smoke.get(dotted)
    ablation, field = dotted.split(".", 1)
    return smoke.get("ablations", {}).get(ablation, {}).get(field)


def _fmt(value, unit: str) -> str:
    if value is None:
        return "—"
    if unit == "s":
        return f"{value * 1000:.1f} ms"
    if unit == "x":
        return f"{value}x"
    return f"{value:,.0f}{unit}"


def render(smoke: dict, history_entry: dict | None) -> str:
    lines = ["## Bench smoke vs recorded history", ""]
    if history_entry is None:
        lines.append("No recorded history entry to compare against.")
        return "\n".join(lines)
    label = history_entry.get("label", "?")
    cpu = smoke.get("cpu_count")
    lines.append(
        f"Baseline: **{label}** (recording machine) vs this runner "
        f"({cpu} cpu(s)).  Ratios are context — the hard 3x gate lives in "
        "`run_bench.py --quick`."
    )
    lines.append("")
    lines.append("| metric | smoke | recorded | ratio |")
    lines.append("|---|---|---|---|")
    for smoke_field, history_field, unit, higher_better in COMPARISONS:
        current = _smoke_value(smoke, smoke_field)
        recorded = history_entry.get(history_field)
        if current is None and recorded is None:
            continue
        ratio = "—"
        if current is not None and recorded:
            raw = current / recorded
            arrow = ""
            if raw > 1.05:
                arrow = " ⬆" if higher_better else " ⬇"
            elif raw < 0.95:
                arrow = " ⬇" if higher_better else " ⬆"
            ratio = f"{raw:.2f}{arrow}"
        lines.append(
            f"| {smoke_field} | {_fmt(current, unit)} | "
            f"{_fmt(recorded, unit)} | {ratio} |"
        )
    lines.append("")
    lines.append(
        "⬆ = better than recorded, ⬇ = worse (quick mode runs reduced "
        "instances, so absolute numbers differ from the full bench)."
    )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("smoke", type=Path, help="smoke JSON from --smoke-output")
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=REPO_ROOT / "BENCH_counting.json",
        help="recorded trajectory to diff against",
    )
    args = parser.parse_args()
    try:
        smoke = json.loads(args.smoke.read_text())
    except (OSError, ValueError) as error:
        print(f"unreadable smoke record {args.smoke}: {error}", file=sys.stderr)
        return 1
    history_entry = None
    try:
        history = json.loads(args.bench_json.read_text()).get("history", [])
        if history:
            history_entry = history[-1]
    except (OSError, ValueError):
        pass  # no baseline: render the no-comparison report
    print(render(smoke, history_entry))
    return 0


if __name__ == "__main__":
    sys.exit(main())
