#!/usr/bin/env python
"""Run the counting-substrate benchmarks and record BENCH_counting.json.

Runs the ``TestCounterAblation`` benchmarks of ``bench_substrates.py``
through pytest-benchmark, extracts the per-backend median times, runs the
counting-service ablations (1-vs-N worker fan-out on the AccMC
product-mode batch, warm-vs-cold disk cache on a Table 1 slice, shared
component cache on the same-φ/many-regions AccMC ratio sweep, cold-run
vs warm-restart component *spill* on the per-path variant of that sweep,
cold-compile vs warm-conditioned circuit counting on a DiffMC-shaped
ratio sweep, daemon-vs-in-process throughput plus a request-coalescing
probe for the TCP counting service, 1-vs-2-shard cluster counting under
the consistent-hash ``ShardedClient`` with warm-store dedup enforced, a
``CountStore`` round-trip micro-bench), and writes (or updates)
``BENCH_counting.json`` next to this script's repository root.  The JSON
keeps a ``history`` list so successive PRs append their numbers instead of
overwriting the trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py --label "PR 7 (…)"

``--quick`` runs only the ablations on small instances and never updates
the JSON — the CI smoke mode that keeps the harness from rotting.  It
also fails (exit 1) when the exact counter's median on the ablation
instance has regressed more than 3x against the last recorded ``history``
entry, which turns every CI push into a coarse perf-regression gate (3x
because CI hardware differs from the recording machine; a genuine
algorithmic regression is typically much larger).  ``--smoke-output
PATH`` additionally writes the quick run's measured medians as JSON; CI
uploads that as a workflow artifact and renders a median-vs-history diff
into the job summary via ``benchmarks/diff_smoke.py``.

``--profile`` cProfiles the exact counter on a scope-5-sized instance and
prints the hottest functions — the loop used to pick per-PR hot-path work
(PR 3 replaced the occurrence-list unit propagation this way).

See ``benchmarks/README.md`` for how to interpret the output.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from statistics import median
from time import perf_counter, sleep

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_counting.json"

#: benchmark test name -> backend label in the JSON
BACKENDS = {
    "test_exact_counter": "exact",
    "test_legacy_exact_counter": "exact-legacy",
    "test_counting_engine_warm": "engine-warm",
    "test_approxmc_counter": "approxmc",
    "test_bdd_counter_on_tree_region": "bdd",
    "test_compiled_conditioning_on_tree_region": "compiled-conditioning",
    "test_composite_router": "composite",
    "test_formula_brute_counter": "formula-brute",
}

INSTANCE = (
    "PartialOrder at scope 4 with adjacent symmetry breaking "
    "(translate(...).cnf: 290 vars, 933 clauses, 16 projected) — "
    "except 'bdd', which counts a trained tree's label region"
)


def run_benchmarks() -> dict[str, dict[str, float]]:
    """Execute the ablation benchmarks, return per-backend stats (seconds)."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "bench.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_substrates.py"),
            "-k",
            "TestCounterAblation",
            "-q",
            f"--benchmark-json={report}",
        ]
        completed = subprocess.run(command, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {completed.returncode}")
        payload = json.loads(report.read_text())
    backends: dict[str, dict[str, float]] = {}
    for bench in payload.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        label = BACKENDS.get(name)
        if label is None:
            continue
        stats = bench["stats"]
        backends[label] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "rounds": stats["rounds"],
        }
    return backends


# -- counting-service ablations ---------------------------------------------------------


def _accmc_product_batch(scope: int):
    """The four confusion problems AccMC product mode hands to ``count_many``.

    Built exactly as :meth:`repro.core.accmc.AccMC._evaluate_by_cnf` does:
    a decision tree trained on the property's own dataset, its true/false
    label regions conjoined with φ and ¬φ.
    """
    from repro.core.pipeline import MCMLPipeline
    from repro.core.tree2cnf import label_region_cnf
    from repro.spec import SymmetryBreaking, get_property, translate

    prop = get_property("PartialOrder")
    symmetry = SymmetryBreaking()
    pipeline = MCMLPipeline(seed=0)
    dataset = pipeline.make_dataset(prop, scope, symmetry=symmetry)
    train, _ = dataset.split(0.75, rng=0)
    tree = pipeline.train("DT", train)
    m = scope * scope
    paths = tree.decision_paths()
    true_region = label_region_cnf(paths, 1, m)
    false_region = label_region_cnf(paths, 0, m)
    phi = translate(prop, scope, symmetry=symmetry).cnf
    not_phi = translate(prop, scope, symmetry=symmetry, negate=True).cnf
    return [
        phi.conjoin(true_region),
        not_phi.conjoin(true_region),
        phi.conjoin(false_region),
        not_phi.conjoin(false_region),
    ]


def workers_ablation(workers: int, scope: int) -> dict:
    """1-vs-N-worker ``count_many`` on the AccMC product-mode batch.

    Bit-identity between the serial and parallel results is enforced hard;
    the speedup is reported as measured.  On a single-core machine the pool
    overhead makes the parallel run *slower* — ``cpu_count`` is recorded so
    the number stays interpretable across machines.
    """
    from repro.counting import CountingEngine, EngineConfig

    batch = _accmc_product_batch(scope)
    started = perf_counter()
    serial = [
        r.value
        for r in CountingEngine(config=EngineConfig(workers=1)).solve_many(batch)
    ]
    serial_s = perf_counter() - started
    started = perf_counter()
    parallel = [
        r.value
        for r in CountingEngine(config=EngineConfig(workers=workers)).solve_many(batch)
    ]
    parallel_s = perf_counter() - started
    if serial != parallel:
        raise SystemExit(
            f"parallel counts diverge from serial: {parallel} != {serial}"
        )
    return {
        "instance": (
            f"AccMC product-mode batch: PartialOrder scope {scope}, adjacent "
            "symmetry breaking, trained DT regions (4 counting problems)"
        ),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup_x": round(serial_s / parallel_s, 2),
        "bit_identical": True,
    }


def component_cache_ablation(scope: int, fractions: tuple[float, ...]) -> dict:
    """Shared-vs-per-call component cache on a same-φ/many-regions batch.

    The batch is an AccMC product-mode *training-ratio sweep*: one
    property's φ/¬φ conjoined with the true/false regions of a decision
    tree retrained at each fraction — the exact shape Tables 3–7 and 9
    produce, where successive trees overlap heavily.  Every problem is
    unique (the engine's count memo never hits), so the measured speedup
    isolates the cross-call component cache: the per-call run uses
    ``component_cache_mb=0``, the shared run the default budget.
    Bit-identity between the two runs is enforced hard.
    """
    from repro.core.pipeline import MCMLPipeline
    from repro.core.tree2cnf import label_region_cnf
    from repro.counting import CountingEngine, EngineConfig
    from repro.spec import SymmetryBreaking, get_property, translate

    prop = get_property("PartialOrder")
    symmetry = SymmetryBreaking()
    m = scope * scope
    phi = translate(prop, scope, symmetry=symmetry).cnf
    not_phi = translate(prop, scope, symmetry=symmetry, negate=True).cnf
    pipeline = MCMLPipeline(seed=0)
    dataset = pipeline.make_dataset(prop, scope, symmetry=symmetry)
    problems = []
    for fraction in fractions:
        train, _ = dataset.split(fraction, rng=0)
        tree = pipeline.train("DT", train)
        paths = tree.decision_paths()
        for region in (label_region_cnf(paths, 1, m), label_region_cnf(paths, 0, m)):
            problems.append(phi.conjoin(region))
            problems.append(not_phi.conjoin(region))

    per_call_engine = CountingEngine(config=EngineConfig(component_cache_mb=0))
    started = perf_counter()
    per_call = [r.value for r in per_call_engine.solve_many(problems)]
    per_call_s = perf_counter() - started
    shared_engine = CountingEngine(config=EngineConfig())
    started = perf_counter()
    shared = [r.value for r in shared_engine.solve_many(problems)]
    shared_s = perf_counter() - started
    if shared != per_call:
        raise SystemExit(
            f"shared-cache counts diverge from per-call: {shared} != {per_call}"
        )
    cache = shared_engine.component_cache
    return {
        "instance": (
            f"AccMC product-mode ratio sweep: PartialOrder scope {scope}, "
            f"adjacent symmetry breaking, DT retrained at {len(fractions)} "
            f"training fractions, φ/¬φ × true/false regions "
            f"({len(problems)} unique counting problems)"
        ),
        "problems": len(problems),
        "per_call_s": round(per_call_s, 4),
        "shared_s": round(shared_s, 4),
        "speedup_x": round(per_call_s / shared_s, 2),
        "cache_entries": len(cache),
        "cache_hits": cache.hits,
        "cache_evictions": cache.evictions,
        "cache_approx_mb": round(cache.approximate_bytes() / (1 << 20), 1),
        "bit_identical": True,
    }


def component_spill_ablation(scope: int, fractions: tuple[float, ...]) -> dict:
    """Cold-run vs warm-restart on the per-path same-φ/many-regions sweep.

    The sweep is the component-cache ablation's workload — one property's
    φ/¬φ against the regions of a decision tree retrained per fraction —
    but counted through the **per-path route**
    (``CountRequest(strategy="per-path")``: one φ-plus-unit-cube problem
    per tree path).  Three timed runs:

    * ``conjunction_s`` — the conjunction route, cold, for context;
    * ``cold_s`` — the per-path route, cold, on a fresh ``cache_dir``
      (close() spills the component cache to ``components.sqlite``);
    * ``warm_s`` — a *fresh engine on the same cache_dir* re-counting the
      sweep after ``counts.sqlite``/``memos.sqlite`` are deleted, so every
      whole count misses and the measured speedup isolates the spill tier:
      the engine performs real backend counts whose components promote
      from disk (``EngineStats.component_spill_hits``).

    Bit-identity of per-path vs conjunction and of warm vs cold is
    enforced hard.
    """
    from repro.core.pipeline import MCMLPipeline
    from repro.core.tree2cnf import label_cubes, label_region_cnf
    from repro.counting import CountingEngine, CountRequest, EngineConfig
    from repro.spec import SymmetryBreaking, get_property, translate

    prop = get_property("PartialOrder")
    symmetry = SymmetryBreaking()
    phi = translate(prop, scope, symmetry=symmetry).cnf
    not_phi = translate(prop, scope, symmetry=symmetry, negate=True).cnf
    pipeline = MCMLPipeline(seed=0)
    dataset = pipeline.make_dataset(prop, scope, symmetry=symmetry)
    conjunction: list = []
    per_path: list = []
    m = scope * scope
    for fraction in fractions:
        train, _ = dataset.split(fraction, rng=0)
        tree = pipeline.train("DT", train)
        paths = tree.decision_paths()
        for base in (phi, not_phi):
            for label in (1, 0):
                conjunction.append(base.conjoin(label_region_cnf(paths, label, m)))
                per_path.append(
                    CountRequest.from_cnf(
                        base, strategy="per-path", cubes=label_cubes(paths, label)
                    )
                )

    conjunction_engine = CountingEngine(config=EngineConfig())
    started = perf_counter()
    conjunction_counts = [r.value for r in conjunction_engine.solve_many(conjunction)]
    conjunction_s = perf_counter() - started

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_engine = CountingEngine(config=EngineConfig(cache_dir=cache_dir))
        started = perf_counter()
        cold_counts = [r.value for r in cold_engine.solve_many(per_path)]
        cold_s = perf_counter() - started
        cold_engine.close()  # spills the component cache
        spilled = len(cold_engine.component_store)
        # Drop the whole-count and compilation stores: the warm engine must
        # recount for real, so the timing isolates the component spill.
        for name in ("counts.sqlite", "memos.sqlite"):
            for suffix in ("", "-wal", "-shm"):
                (Path(cache_dir) / (name + suffix)).unlink(missing_ok=True)
        warm_engine = CountingEngine(config=EngineConfig(cache_dir=cache_dir))
        started = perf_counter()
        warm_counts = [r.value for r in warm_engine.solve_many(per_path)]
        warm_s = perf_counter() - started
        spill_hits = warm_engine.stats.component_spill_hits
        warm_backend = warm_engine.stats.backend_calls
        warm_engine.close()

    if cold_counts != conjunction_counts:
        raise SystemExit(
            f"per-path counts diverge from conjunction: "
            f"{cold_counts} != {conjunction_counts}"
        )
    if warm_counts != cold_counts:
        raise SystemExit("warm-restart per-path counts diverge from cold run")
    if warm_backend == 0:
        raise SystemExit(
            "warm restart performed no backend counts — the ablation is "
            "measuring the whole-count store, not the component spill"
        )
    if spill_hits == 0:
        raise SystemExit("warm restart promoted no spilled components")
    return {
        "instance": (
            f"per-path AccMC ratio sweep: PartialOrder scope {scope}, "
            f"adjacent symmetry breaking, DT retrained at {len(fractions)} "
            f"training fractions, φ/¬φ × true/false regions "
            f"({len(per_path)} region counts; warm restart re-counts with "
            "counts.sqlite removed so only components.sqlite is warm)"
        ),
        "problems": len(per_path),
        "conjunction_s": round(conjunction_s, 4),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_x": round(cold_s / warm_s, 2),
        "vs_conjunction_cold_x": round(conjunction_s / warm_s, 2),
        "spilled_entries": spilled,
        "spill_hits": spill_hits,
        "warm_backend_counts": warm_backend,
        "bit_identical": True,
    }


def compiled_conditioning_ablation(
    scope: int, fractions: tuple[float, ...], reps: int = 5
) -> dict:
    """Compile-once-query-forever vs cold per-region counting on a sweep.

    The workload is a *same-base/many-regions* ratio sweep in DiffMC's
    shape: a reference decision tree's true/false label regions
    (auxiliary-free CNFs) queried against the label cubes of a tree
    retrained at each training fraction.  A dense fraction grid makes
    adjacent sweep trees share path cubes — exactly the redundancy the
    circuit tier exploits and per-region counting cannot.  Timed legs:

    * ``region_recount_s`` — **cold per-region counting** on the
      ``compiled`` backend: every (base, sweep tree, label) region
      conjunction compiled-and-counted from scratch, no caches — the
      criterion denominator;
    * ``regions_exact_s`` — the same conjunctions through a shared
      ``exact``-backend engine (the conjunction route's realistic cost,
      reported as context);
    * ``cold_compile_s`` — the ``compiled`` backend on a fresh
      ``cache_dir``: compiles the two base circuits once, answers every
      region by unit-cube conditioning and persists the circuits to
      ``circuits.sqlite``;
    * ``warm_conditioned_s`` — a *fresh engine on the same cache_dir*
      re-answering the sweep after ``counts.sqlite``/``memos.sqlite``
      are deleted: the restart performs **zero compilations** (circuits
      warm from the store tier) and **zero backend counts**
      (conditioning passes only).

    The recount and warm legs repeat ``reps`` times *interleaved* (one
    recount then one warm restart per rep) and report medians:
    single-shot timings on a noisy shared-CPU runner would swing the
    ratio either way, and interleaving keeps slow machine phases from
    landing on only one leg.  Bit-identity of every leg and the
    compile-nothing/count-nothing shape of each warm restart are
    enforced hard; the speedup is reported as measured with
    ``cpu_count`` recorded for context.
    """
    from statistics import median

    from repro.core.pipeline import MCMLPipeline
    from repro.core.tree2cnf import label_cubes, label_region_cnf
    from repro.counting import CountingEngine, CountRequest, EngineConfig, make_backend
    from repro.spec import SymmetryBreaking, get_property

    prop = get_property("PartialOrder")
    symmetry = SymmetryBreaking()
    m = scope * scope
    pipeline = MCMLPipeline(seed=0)
    dataset = pipeline.make_dataset(prop, scope, symmetry=symmetry)
    reference_train, _ = dataset.split(0.8, rng=1)
    reference_paths = pipeline.train("DT", reference_train).decision_paths()
    bases = [label_region_cnf(reference_paths, label, m) for label in (1, 0)]

    conjunction: list = []
    per_path: list = []
    for fraction in fractions:
        train, _ = dataset.split(fraction, rng=0)
        paths = pipeline.train("DT", train).decision_paths()
        for base in bases:
            for label in (1, 0):
                conjunction.append(base.conjoin(label_region_cnf(paths, label, m)))
                per_path.append(
                    CountRequest.from_cnf(
                        base, strategy="per-path", cubes=label_cubes(paths, label)
                    )
                )

    exact_engine = CountingEngine(make_backend("exact"), EngineConfig())
    started = perf_counter()
    region_counts = [r.value for r in exact_engine.solve_many(conjunction)]
    regions_exact_s = perf_counter() - started

    recount_backend = make_backend("compiled")
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = CountingEngine(
            make_backend("compiled"), EngineConfig(cache_dir=cache_dir)
        )
        started = perf_counter()
        cold_counts = [r.value for r in cold.solve_many(per_path)]
        cold_compile_s = perf_counter() - started
        compilations_cold = cold.stats.circuit_compilations
        cold.close()
        if cold_counts != region_counts:
            raise SystemExit(
                f"conditioned counts diverge from per-region counting: "
                f"{cold_counts} != {region_counts}"
            )
        # Drop the whole-count and memo stores once: every warm restart
        # must re-answer every region, so the timing isolates the
        # circuit tier.
        for name in ("counts.sqlite", "memos.sqlite"):
            for suffix in ("", "-wal", "-shm"):
                (Path(cache_dir) / (name + suffix)).unlink(missing_ok=True)
        recount_times: list[float] = []
        warm_times: list[float] = []
        store_hits_warm = compilations_warm = backend_calls_warm = 0
        conditioned_warm = 0
        for _ in range(reps):
            started = perf_counter()
            recount = [recount_backend.count(c) for c in conjunction]
            recount_times.append(perf_counter() - started)
            if recount != region_counts:
                raise SystemExit("per-region recount diverges from exact counts")
            warm = CountingEngine(
                make_backend("compiled"), EngineConfig(cache_dir=cache_dir)
            )
            started = perf_counter()
            warm_counts = [r.value for r in warm.solve_many(per_path)]
            warm_times.append(perf_counter() - started)
            store_hits_warm = warm.stats.circuit_store_hits
            compilations_warm = warm.stats.circuit_compilations
            backend_calls_warm = warm.stats.backend_calls
            conditioned_warm = warm.stats.circuit_hits
            warm.close()
            if warm_counts != region_counts:
                raise SystemExit(
                    "warm-restart conditioned counts diverge from cold run"
                )
            if compilations_warm != 0:
                raise SystemExit(
                    f"warm restart compiled {compilations_warm} circuits "
                    "(expected 0)"
                )
            if backend_calls_warm != 0:
                raise SystemExit(
                    f"warm restart performed {backend_calls_warm} backend "
                    "counts (expected 0: conditioning only)"
                )
            if store_hits_warm == 0:
                raise SystemExit(
                    "warm restart warmed no circuits from circuits.sqlite"
                )
    region_recount_s = median(recount_times)
    warm_conditioned_s = median(warm_times)

    return {
        "instance": (
            f"compile-once ratio sweep: PartialOrder scope {scope}, adjacent "
            f"symmetry breaking, reference DT true/false regions as bases, "
            f"sweep DT retrained at {len(fractions)} training fractions "
            f"({len(per_path)} region counts; medians over {reps} interleaved "
            "recount/warm-restart reps, warm restarts re-answer with "
            "counts.sqlite removed so only circuits.sqlite is warm)"
        ),
        "problems": len(per_path),
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "region_recount_s": round(region_recount_s, 4),
        "regions_exact_s": round(regions_exact_s, 4),
        "cold_compile_s": round(cold_compile_s, 4),
        "warm_conditioned_s": round(warm_conditioned_s, 4),
        "speedup_x": round(region_recount_s / warm_conditioned_s, 2),
        "warm_vs_exact_x": round(regions_exact_s / warm_conditioned_s, 2),
        "compilations_cold": compilations_cold,
        "circuit_store_hits_warm": store_hits_warm,
        "warm_backend_counts": backend_calls_warm,
        "conditioned_subcounts_warm": conditioned_warm,
        "bit_identical": True,
    }


def service_throughput_ablation(
    scope: int,
    property_names: tuple[str, ...],
    clients: int = 4,
    coalesce_requests: int = 6,
) -> dict:
    """Daemon-vs-in-process throughput plus a deterministic coalescing probe.

    Two legs:

    * **throughput sweep** — a Table-1-shaped batch (each property's
      symbr + plain CNF at ``scope``) counted twice: sequentially through
      an in-process :class:`~repro.core.session.MCMLSession`, then through
      a live :class:`~repro.counting.service.CountingServer` by
      ``clients`` concurrent :class:`ServiceClient` threads splitting the
      batch round-robin.  The engine lock serializes the actual counting
      either way, so the ratio measures what the wire costs — JSON
      framing, loopback TCP, scheduling — not a parallelism win;
      ``cpu_count`` is recorded so the number stays interpretable.
      Bit-identity between the two legs is enforced hard.

    * **coalescing probe** — one raw connection pipelines a *pin* request
      (a slower, distinct problem that occupies the single solver thread)
      followed by ``coalesce_requests`` identical-φ requests in one write.
      While the pin computes, every φ request after the first coalesces
      onto the queued φ job, so the batch costs exactly **two** backend
      calls (pin + one φ) no matter how many φ requests rode the wire —
      enforced hard via the server's stats payload, which is the
      same-φ-costs-one-computation claim made measurable.
    """
    import socket as socket_mod
    import threading

    from repro.core.session import MCMLSession
    from repro.counting.api import CountRequest, CountResult
    from repro.counting.service import CountingServer, ServiceClient, protocol
    from repro.spec import SymmetryBreaking, get_property, translate

    symmetry = SymmetryBreaking()
    batch = []
    for name in property_names:
        prop = get_property(name)
        batch.append(translate(prop, scope, symmetry=symmetry).cnf)
        batch.append(translate(prop, scope).cnf)

    with MCMLSession(backend="exact") as session:
        started = perf_counter()
        inprocess = [session.solve(problem).value for problem in batch]
        inprocess_s = perf_counter() - started

    # -- throughput sweep: N concurrent clients against one warm daemon.
    server = CountingServer(
        MCMLSession(backend="exact"),
        host="127.0.0.1",
        port=0,
        max_queue=len(batch) + 8,
        max_inflight_per_client=len(batch) + 8,
    )
    host, port = server.start()
    remote: list[int | None] = [None] * len(batch)
    worker_errors: list[str] = []

    def _worker(offset: int) -> None:
        client = ServiceClient(host, port, retries=2)
        try:
            for index in range(offset, len(batch), clients):
                remote[index] = client.solve(batch[index]).value
        except Exception as exc:  # noqa: BLE001 - surfaced as a hard bench failure
            worker_errors.append(f"client {offset}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=_worker, args=(offset,), name=f"bench-client-{offset}")
        for offset in range(clients)
    ]
    started = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service_s = perf_counter() - started
    server.drain()
    if worker_errors:
        raise SystemExit(f"service sweep clients failed: {worker_errors}")
    if remote != inprocess:
        raise SystemExit(
            f"service counts diverge from in-process: {remote} != {inprocess}"
        )

    # -- coalescing probe: pin the solver, pipeline identical requests.
    server = CountingServer(
        MCMLSession(backend="exact"),
        host="127.0.0.1",
        port=0,
        max_queue=coalesce_requests + 4,
        max_inflight_per_client=coalesce_requests + 4,
    )
    host, port = server.start()
    # The pin must outlast the reader's dispatch of the pipelined lines
    # (milliseconds): the scope-5 symbr instance takes over a second of
    # real search on any machine, so the margin is ~three orders.
    pin = CountRequest.from_cnf(
        translate(get_property("PartialOrder"), 5, symmetry=symmetry).cnf
    )
    phi = CountRequest.from_cnf(batch[0])
    lines = [protocol.encode_line({"id": 0, "verb": "solve", "request": pin.to_dict()})]
    lines += [
        protocol.encode_line({"id": i, "verb": "solve", "request": phi.to_dict()})
        for i in range(1, coalesce_requests + 1)
    ]
    sock = socket_mod.create_connection((host, port), timeout=30)
    try:
        sock.settimeout(300)
        sock.sendall(b"".join(lines))
        reader = protocol.LineReader(sock)
        responses = [
            protocol.decode_line(reader.readline())
            for _ in range(coalesce_requests + 1)
        ]
    finally:
        sock.close()
    bad = [r for r in responses if not r.get("ok")]
    if bad:
        raise SystemExit(f"coalescing probe got error responses: {bad}")
    phi_values = {
        CountResult.from_dict(r["result"]).value for r in responses if r["id"] != 0
    }
    stats = server.stats_payload()
    server.drain()
    backend_calls = stats["engine"]["backend_calls"]
    coalesced = stats["service"]["counters"]["coalesced"]
    if phi_values != {inprocess[0]}:
        raise SystemExit(
            f"coalesced responses diverge: {phi_values} != {{{inprocess[0]}}}"
        )
    if backend_calls != 2:
        raise SystemExit(
            f"coalescing probe cost {backend_calls} backend calls "
            f"(expected 2: the pin plus one shared φ computation)"
        )
    if coalesced != coalesce_requests - 1:
        raise SystemExit(
            f"coalescing probe coalesced {coalesced} requests "
            f"(expected {coalesce_requests - 1})"
        )

    return {
        "instance": (
            f"counting-service sweep: symbr + plain CNFs for "
            f"{len(property_names)} properties at scope {scope} "
            f"({len(batch)} problems) served to {clients} concurrent "
            f"clients over loopback TCP vs one in-process session; "
            f"coalescing probe pipelines {coalesce_requests} identical-φ "
            "requests behind a solver-pinning request"
        ),
        "problems": len(batch),
        "clients": clients,
        "cpu_count": os.cpu_count(),
        "inprocess_s": round(inprocess_s, 4),
        "service_s": round(service_s, 4),
        "wire_overhead_x": round(service_s / inprocess_s, 2),
        "coalesce_requests": coalesce_requests,
        "coalesced": coalesced,
        "coalesce_backend_calls": backend_calls,
        "bit_identical": True,
    }


def cluster_sharding_ablation(scope: int, property_names: tuple[str, ...]) -> dict:
    """1 vs 2 counting daemons under the consistent-hash cluster client.

    Both legs run real ``mcml serve`` subprocesses (separate processes,
    separate GILs — an in-process pair could never scale), each with its
    own fresh ``--cache-dir``:

    * **single leg** — one daemon, one :class:`ServiceClient`, the
      Table-1-shaped batch shipped as one ``solve_many``.
    * **sharded leg** — two daemons, the batch partitioned by the
      :class:`ShardedClient` ring (consistent hashing on request
      signatures) and each shard's group driven from its own thread, the
      way a parallel cluster driver would.

    Three hardware-independent criteria are enforced hard; the wall
    times are recorded as measured (``cpu_count``/``shard_count`` ride
    along — a single-core machine documents scheduling overhead, not a
    speedup):

    * bit-identity — both legs and a follow-up
      :meth:`ShardedClient.count_many` warm pass must match the
      in-process session exactly;
    * warm-store dedup — after the cold pass *plus* the warm pass, the
      cluster-aggregated ``backend_calls`` must equal the number of
      unique signatures: every problem counted exactly once, cluster-wide;
    * store exclusivity — after draining, every signature's
      ``counts.sqlite`` row exists on exactly one shard (the warm tiers
      are disjoint by construction).
    """
    import signal as signal_mod
    import threading

    from repro.core.session import MCMLSession
    from repro.counting.service import ServiceClient, ShardedClient
    from repro.counting.store import CountStore, signature_key
    from repro.spec import SymmetryBreaking, get_property, translate

    symmetry = SymmetryBreaking()
    batch = []
    for name in property_names:
        prop = get_property(name)
        batch.append(translate(prop, scope, symmetry=symmetry).cnf)
        batch.append(translate(prop, scope).cnf)

    with MCMLSession(backend="exact") as session:
        expected = [session.solve(problem).value for problem in batch]

    def spawn_shard(cache_dir: Path) -> tuple[subprocess.Popen, tuple[str, int]]:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.cli", "serve",
                "--backend", "exact", "--cache-dir", str(cache_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        ready = json.loads(proc.stdout.readline())
        if ready.get("event") != "listening":
            proc.kill()
            raise SystemExit(f"cluster ablation daemon failed to start: {ready}")
        return proc, (ready["host"], ready["port"])

    def drain_shard(proc: subprocess.Popen) -> None:
        proc.send_signal(signal_mod.SIGTERM)
        try:
            proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
            raise SystemExit("cluster ablation daemon did not drain")
        if proc.returncode != 0:
            raise SystemExit(
                f"cluster ablation daemon exited {proc.returncode} on drain"
            )

    with tempfile.TemporaryDirectory() as tmp:
        # -- single leg: one daemon, one client, one batch.
        proc, shard = spawn_shard(Path(tmp) / "single")
        try:
            with ServiceClient(*shard, retries=2) as client:
                started = perf_counter()
                single_values = [r.value for r in client.solve_many(batch)]
                single_s = perf_counter() - started
        finally:
            drain_shard(proc)
        if single_values != expected:
            raise SystemExit(
                f"single-shard counts diverge: {single_values} != {expected}"
            )

        # -- sharded leg: two daemons, ring-partitioned, one thread each.
        procs, shards = [], []
        try:
            for i in range(2):
                proc, shard = spawn_shard(Path(tmp) / f"shard-{i}")
                procs.append(proc)
                shards.append(shard)
            cluster = ShardedClient(shards, retries=2)
            requests = [cluster._as_request(problem) for problem in batch]
            groups: dict[tuple[str, int], list[int]] = {}
            for index, request in enumerate(requests):
                groups.setdefault(cluster.shard_for(request), []).append(index)
            if len(groups) != 2:
                raise SystemExit(
                    f"ring put all {len(batch)} problems on one shard; "
                    "the partition cannot be measured"
                )
            sharded_values: list[int | None] = [None] * len(batch)
            errors: list[str] = []

            def drive(shard: tuple[str, int], positions: list[int]) -> None:
                try:
                    with ServiceClient(*shard, retries=2) as client:
                        answers = client.solve_many(
                            [requests[i] for i in positions]
                        )
                    for i, answer in zip(positions, answers):
                        sharded_values[i] = answer.value
                except Exception as exc:  # noqa: BLE001 - hard bench failure
                    errors.append(f"{shard}: {type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=drive, args=(shard, positions))
                for shard, positions in groups.items()
            ]
            started = perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sharded_s = perf_counter() - started
            if errors:
                raise SystemExit(f"sharded leg clients failed: {errors}")
            if sharded_values != expected:
                raise SystemExit(
                    f"sharded counts diverge: {sharded_values} != {expected}"
                )
            # Warm pass through the official client surface: bit-identity
            # again, and the dedup criterion — the cluster-wide backend
            # work must equal the unique signatures, cold + warm combined.
            if cluster.count_many(batch) != expected:
                raise SystemExit("warm cluster pass diverged")
            unique_signatures = len({r.signature() for r in requests})
            stats = cluster.stats()
            backend_calls = stats["aggregated"]["engine"]["backend_calls"]
            cluster.close()
            if backend_calls != unique_signatures:
                raise SystemExit(
                    f"cluster performed {backend_calls} backend calls for "
                    f"{unique_signatures} unique signatures (warm-store "
                    "dedup violated)"
                )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    drain_shard(proc)

        # -- store exclusivity, after the daemons flushed their tiers.
        shard_rows = [0, 0]
        stores = [CountStore(Path(tmp) / f"shard-{i}") for i in range(2)]
        try:
            for request in requests:
                key = signature_key(request.signature())
                present = [i for i in range(2) if stores[i].get(key) is not None]
                if len(present) != 1:
                    raise SystemExit(
                        f"signature on {len(present)} shards (expected exactly "
                        f"one): {request!r}"
                    )
                shard_rows[present[0]] += 1
        finally:
            for store in stores:
                store.close()

    return {
        "instance": (
            f"cluster sharding: symbr + plain CNFs for {len(property_names)} "
            f"properties at scope {scope} ({len(batch)} problems) through "
            "1 vs 2 mcml-serve daemons; 2-shard leg partitioned by the "
            "consistent-hash ring and driven one thread per shard"
        ),
        "problems": len(batch),
        "unique_signatures": unique_signatures,
        "shard_count": 2,
        "cpu_count": os.cpu_count(),
        "single_s": round(single_s, 4),
        "sharded_s": round(sharded_s, 4),
        "speedup_x": round(single_s / sharded_s, 2),
        "shard_rows": shard_rows,
        "cluster_backend_calls": backend_calls,
        "bit_identical": True,
    }


def solver_lanes_ablation(
    scope: int,
    property_names: tuple[str, ...],
    delay: float = 0.3,
    slow_problems: int = 4,
    reps: int = 3,
) -> dict:
    """1 vs 2 solver lanes on one daemon: overlap proof + real medians.

    Two legs against in-process :class:`CountingServer` instances (PR 10's
    ``mcml serve --solver-threads``):

    * **delay leg** — an exact backend behind a fixed ``delay`` sleep
      (sleep releases the GIL, so lane overlap is measurable even on one
      core).  ``slow_problems`` *distinct* slow requests are submitted by
      that many concurrent clients to a 1-lane and then a 2-lane daemon;
      the 2-lane wall time must land under 0.8x the 1-lane time — the
      acceptance bar, enforced hard — and both legs must be bit-identical
      to a bare :class:`ExactCounter`.
    * **real leg** — the Table-1-shaped batch (each property's symbr +
      plain CNF at ``scope``) through fresh 1-lane and 2-lane daemons,
      median of ``reps`` cold runs each.  Pure-Python exact counting is
      GIL-bound, so no speedup is *enforced* here; the medians and
      ``cpu_count`` are recorded so the ratio stays interpretable (a
      free-threaded or C-accelerated backend is where this leg moves).
    """
    import threading

    from repro.core.session import MCMLSession
    from repro.counting import CountingEngine, ExactCounter
    from repro.counting.service import CountingServer, ServiceClient
    from repro.logic import CNF
    from repro.spec import SymmetryBreaking, get_property, translate

    class _SleepyExact(ExactCounter):
        def __init__(self, seconds: float) -> None:
            super().__init__()
            self._seconds = seconds

        def count(self, cnf: CNF) -> int:
            sleep(self._seconds)
            return super().count(cnf)

    def timed_run(session_factory, problems, clients) -> tuple[float, list]:
        """Wall time of ``clients`` concurrent clients splitting ``problems``."""
        server = CountingServer(
            session_factory(),
            session_factory=session_factory,
            solver_threads=session_factory.lanes,
            host="127.0.0.1",
            port=0,
            max_queue=len(problems) + 8,
            max_inflight_per_client=len(problems) + 8,
        )
        host, port = server.start()
        values: list = [None] * len(problems)
        errors: list[str] = []

        def worker(offset: int) -> None:
            client = ServiceClient(host, port, retries=2, request_timeout=120)
            try:
                for index in range(offset, len(problems), clients):
                    values[index] = client.solve(problems[index]).value
            except Exception as exc:  # noqa: BLE001 - a hard bench failure
                errors.append(f"client {offset}: {type(exc).__name__}: {exc}")
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = perf_counter() - started
        server.drain()
        if errors:
            raise SystemExit(f"solver-lanes clients failed: {errors}")
        return elapsed, values

    def factory_for(lanes: int, make_session):
        make_session.lanes = lanes
        return make_session

    # -- delay leg: distinct slow problems, overlap is the whole point.
    slow_batch = [
        CNF(num_vars=3, clauses=[(var,)]) for var in range(1, slow_problems + 1)
    ]
    slow_truths = [ExactCounter().count(problem) for problem in slow_batch]
    lane_times: dict[int, float] = {}
    for lanes in (1, 2):
        factory = factory_for(
            lanes,
            lambda: MCMLSession(engine=CountingEngine(_SleepyExact(delay))),
        )
        elapsed, values = timed_run(factory, slow_batch, clients=slow_problems)
        if values != slow_truths:
            raise SystemExit(
                f"{lanes}-lane delay leg diverged: {values} != {slow_truths}"
            )
        lane_times[lanes] = elapsed
    overlap_ratio = lane_times[2] / lane_times[1]
    if overlap_ratio >= 0.8:
        raise SystemExit(
            f"no lane overlap: 2 lanes took {lane_times[2]:.2f}s vs "
            f"{lane_times[1]:.2f}s on 1 lane (ratio {overlap_ratio:.2f}, "
            "acceptance bar < 0.8)"
        )

    # -- real leg: GIL-bound exact counting, medians recorded not gated.
    symmetry = SymmetryBreaking()
    batch = []
    for name in property_names:
        prop = get_property(name)
        batch.append(translate(prop, scope, symmetry=symmetry).cnf)
        batch.append(translate(prop, scope).cnf)
    truths = [ExactCounter().count(problem) for problem in batch]
    medians: dict[int, float] = {}
    for lanes in (1, 2):
        factory = factory_for(lanes, lambda: MCMLSession(backend="exact"))
        times = []
        for _ in range(reps):
            elapsed, values = timed_run(factory, batch, clients=4)
            if values != truths:
                raise SystemExit(
                    f"{lanes}-lane real leg diverged: {values} != {truths}"
                )
            times.append(elapsed)
        medians[lanes] = median(times)

    return {
        "instance": (
            f"solver lanes: {slow_problems} distinct {delay}s-delay requests "
            f"from {slow_problems} concurrent clients through a 1- vs 2-lane "
            f"daemon (overlap leg), then symbr + plain CNFs for "
            f"{len(property_names)} properties at scope {scope} "
            f"({len(batch)} problems, 4 clients, median of {reps} cold runs)"
        ),
        "delay_s": delay,
        "slow_problems": slow_problems,
        "one_lane_delay_s": round(lane_times[1], 4),
        "two_lane_delay_s": round(lane_times[2], 4),
        "overlap_ratio": round(overlap_ratio, 3),
        "problems": len(batch),
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "one_lane_median_s": round(medians[1], 4),
        "two_lane_median_s": round(medians[2], 4),
        "real_ratio_x": round(medians[1] / medians[2], 2),
        "bit_identical": True,
    }


def store_roundtrip_bench(entries: int = 2000) -> dict:
    """CountStore micro-bench: buffered single puts, then a batch read-back.

    Writes ``entries`` counts through the single-``put`` path (exercising
    the WAL + one-transaction-per-AUTOFLUSH batching), flushes, reopens the
    store cold and reads everything back via ``get_many``.
    """
    from repro.counting.store import CountStore

    with tempfile.TemporaryDirectory() as tmp:
        keys = [f"bench-{i:06d}" for i in range(entries)]
        store = CountStore(tmp)
        started = perf_counter()
        for i, key in enumerate(keys):
            store.put(key, 1 << (i % 512))
        store.flush()
        put_s = perf_counter() - started
        store.close()
        store = CountStore(tmp)
        started = perf_counter()
        found = store.get_many(keys)
        get_s = perf_counter() - started
        store.close()
    if len(found) != entries:
        raise SystemExit(f"store round-trip lost entries: {len(found)} != {entries}")
    return {
        "entries": entries,
        "put_s": round(put_s, 4),
        "get_s": round(get_s, 4),
        "puts_per_s": round(entries / put_s),
        "gets_per_s": round(entries / get_s),
    }


def cache_ablation(scope: int, property_names: tuple[str, ...]) -> dict:
    """Warm-vs-cold disk cache on a Table 1 slice (the two exact columns).

    The warm re-run happens in a *fresh* engine pointed at the same cache
    directory; it must perform zero backend counts — enforced hard, since
    that criterion is hardware-independent.
    """
    from repro.counting import CountingEngine, EngineConfig
    from repro.spec import SymmetryBreaking, get_property, translate

    symmetry = SymmetryBreaking()
    batch = []
    for name in property_names:
        prop = get_property(name)
        batch.append(translate(prop, scope, symmetry=symmetry).cnf)
        batch.append(translate(prop, scope).cnf)

    with tempfile.TemporaryDirectory() as cache_dir:
        config = EngineConfig(cache_dir=cache_dir)
        cold_engine = CountingEngine(config=config)
        started = perf_counter()
        cold_counts = [r.value for r in cold_engine.solve_many(batch)]
        cold_s = perf_counter() - started
        cold_backend = cold_engine.stats.backend_calls
        cold_engine.close()

        warm_engine = CountingEngine(config=config)
        started = perf_counter()
        warm_counts = [r.value for r in warm_engine.solve_many(batch)]
        warm_s = perf_counter() - started
        warm_backend = warm_engine.stats.backend_calls
        warm_engine.close()

    if warm_counts != cold_counts:
        raise SystemExit("warm-cache counts diverge from cold run")
    if warm_backend != 0:
        raise SystemExit(
            f"warm re-run performed {warm_backend} backend counts (expected 0)"
        )
    return {
        "instance": (
            f"Table 1 slice, exact columns (symbr + plain) for "
            f"{len(property_names)} properties at scope {scope}"
        ),
        "problems": len(batch),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_x": round(cold_s / warm_s, 1),
        "cold_backend_counts": cold_backend,
        "warm_backend_counts": warm_backend,
    }


def _print_ablations(
    workers_result: dict,
    cache_result: dict,
    component_result: dict | None = None,
    store_result: dict | None = None,
    spill_result: dict | None = None,
    conditioning_result: dict | None = None,
    service_result: dict | None = None,
    cluster_result: dict | None = None,
    lanes_result: dict | None = None,
) -> None:
    print(
        f"  workers fan-out: serial {workers_result['serial_s']:.3f} s, "
        f"{workers_result['workers']} workers {workers_result['parallel_s']:.3f} s "
        f"({workers_result['speedup_x']}x on {workers_result['cpu_count']} cpu(s)), "
        "bit-identical"
    )
    print(
        f"  disk cache: cold {cache_result['cold_s']:.3f} s "
        f"({cache_result['cold_backend_counts']} backend counts), "
        f"warm {cache_result['warm_s']:.3f} s "
        f"({cache_result['warm_backend_counts']} backend counts)"
    )
    if component_result is not None:
        print(
            f"  component cache: per-call {component_result['per_call_s']:.3f} s, "
            f"shared {component_result['shared_s']:.3f} s "
            f"({component_result['speedup_x']}x over "
            f"{component_result['problems']} unique problems, "
            f"{component_result['cache_hits']} component hits), bit-identical"
        )
    if spill_result is not None:
        print(
            f"  component spill (per-path sweep): conjunction cold "
            f"{spill_result['conjunction_s']:.3f} s, per-path cold "
            f"{spill_result['cold_s']:.3f} s, warm restart "
            f"{spill_result['warm_s']:.3f} s ({spill_result['speedup_x']}x "
            f"cold->warm, {spill_result['spill_hits']} promotions from "
            f"{spill_result['spilled_entries']} spilled entries), bit-identical"
        )
    if conditioning_result is not None:
        print(
            f"  compiled conditioning (compile-once sweep): per-region recount "
            f"{conditioning_result['region_recount_s']:.3f} s, per-region exact "
            f"{conditioning_result['regions_exact_s']:.3f} s, cold compile "
            f"{conditioning_result['cold_compile_s']:.3f} s, warm conditioned "
            f"{conditioning_result['warm_conditioned_s']:.3f} s "
            f"({conditioning_result['speedup_x']}x vs per-region recount, "
            f"{conditioning_result['compilations_cold']} compilations cold / "
            f"{conditioning_result['warm_backend_counts']} backend counts warm, "
            f"medians over {conditioning_result['reps']} reps), bit-identical"
        )
    if service_result is not None:
        print(
            f"  service throughput: in-process {service_result['inprocess_s']:.3f} s, "
            f"{service_result['clients']} clients over TCP "
            f"{service_result['service_s']:.3f} s "
            f"({service_result['wire_overhead_x']}x wire overhead on "
            f"{service_result['cpu_count']} cpu(s)); coalescing: "
            f"{service_result['coalesce_requests']} same-φ requests -> "
            f"{service_result['coalesce_backend_calls']} backend calls "
            f"({service_result['coalesced']} coalesced), bit-identical"
        )
    if cluster_result is not None:
        print(
            f"  cluster sharding: 1 shard {cluster_result['single_s']:.3f} s, "
            f"{cluster_result['shard_count']} shards "
            f"{cluster_result['sharded_s']:.3f} s "
            f"({cluster_result['speedup_x']}x on "
            f"{cluster_result['cpu_count']} cpu(s)), store rows "
            f"{cluster_result['shard_rows']} (disjoint), "
            f"{cluster_result['cluster_backend_calls']} backend calls for "
            f"{cluster_result['unique_signatures']} signatures, bit-identical"
        )
    if lanes_result is not None:
        print(
            f"  solver lanes: {lanes_result['slow_problems']} distinct "
            f"{lanes_result['delay_s']}s requests — 1 lane "
            f"{lanes_result['one_lane_delay_s']:.3f} s, 2 lanes "
            f"{lanes_result['two_lane_delay_s']:.3f} s (overlap ratio "
            f"{lanes_result['overlap_ratio']}); real batch medians 1 lane "
            f"{lanes_result['one_lane_median_s']:.3f} s, 2 lanes "
            f"{lanes_result['two_lane_median_s']:.3f} s "
            f"({lanes_result['real_ratio_x']}x, GIL-bound, on "
            f"{lanes_result['cpu_count']} cpu(s)), bit-identical"
        )
    if store_result is not None:
        print(
            f"  store round-trip: {store_result['entries']} entries, "
            f"{store_result['puts_per_s']} puts/s, {store_result['gets_per_s']} gets/s"
        )


def backend_smoke(name: str, scope: int = 3) -> dict:
    """Exercise one registered backend end-to-end against ground truth.

    Builds the backend by registry name, picks an instance its declared
    capabilities can serve — a translated property CNF for
    projection-capable backends, the pre-Tseitin formula for
    formula-counting ones, a trained tree's label region for the rest —
    and checks the count: bit-identity against the closed form / exact
    counter for exact backends, the (ε, δ) envelope for approximate ones.
    CI runs this for a non-default backend so registry entries cannot rot
    silently.
    """
    from repro.core.pipeline import MCMLPipeline
    from repro.core.tree2cnf import label_region_cnf
    from repro.counting import ExactCounter, closed_form_count, make_backend
    from repro.counting.api import backend_capabilities
    from repro.counting.vector import count_formula as formula_count
    from repro.spec import get_property, translate

    prop = get_property("PartialOrder")
    caps = backend_capabilities(name)
    backend = make_backend(name)
    truth = closed_form_count(prop.oracle, scope)
    if caps.counts_formulas:
        instance = f"{prop.name} formula at scope {scope}"
        value = backend.count_formula(
            translate(prop, scope).formula, scope * scope
        )
    elif caps.supports_projection:
        instance = f"{prop.name} CNF at scope {scope}"
        value = backend.count(translate(prop, scope).cnf)
    else:
        # Auxiliary-free backends (OBDD) serve decision-tree regions.
        pipeline = MCMLPipeline(seed=0)
        dataset = pipeline.make_dataset(prop, scope)
        train, _ = dataset.split(0.75, rng=0)
        tree = pipeline.train("DT", train)
        region = label_region_cnf(tree.decision_paths(), 1, scope * scope)
        instance = f"{prop.name} scope-{scope} DT true-region CNF"
        truth = ExactCounter().count(region)
        value = backend.count(region)
    if caps.exact:
        if value != truth:
            raise SystemExit(
                f"backend {name!r} smoke failed: {value} != {truth} on {instance}"
            )
    elif not truth / 4 <= value <= truth * 4:
        raise SystemExit(
            f"backend {name!r} estimate {value} implausible vs {truth} on {instance}"
        )
    print(
        f"  backend smoke: {name!r} on {instance} -> {value} "
        f"({'bit-identical' if caps.exact else 'within (eps, delta) envelope'})"
    )
    return {"backend": name, "instance": instance, "capabilities": caps.as_dict()}


def perf_regression_smoke(
    output: Path, tolerance: float = 3.0
) -> tuple[float | None, str | None]:
    """Gate on the exact counter regressing > ``tolerance``x vs history.

    Re-times the ablation instance (median of three) and compares against
    the last recorded ``history`` entry of ``BENCH_counting.json``.  The
    wide tolerance absorbs hardware differences between CI and the
    recording machine — a genuine algorithmic regression (e.g. losing the
    packed representation) is orders of magnitude, not percents.  Returns
    ``(measured median, failure message or None)`` instead of raising, so
    the caller can persist the measurement (the ``--smoke-output`` record
    CI uploads) *before* failing the run — the numbers matter most on
    exactly the pushes that trip the gate.
    """
    from statistics import median

    from repro.counting import ExactCounter
    from repro.spec import SymmetryBreaking, get_property, translate

    if not output.exists():
        print("  perf gate: no BENCH_counting.json, skipping")
        return None, None
    history = json.loads(output.read_text()).get("history", [])
    if not history:
        print("  perf gate: empty history, skipping")
        return None, None
    recorded = history[-1]["exact_median_s"]
    cnf = translate(
        get_property("PartialOrder"), 4, symmetry=SymmetryBreaking()
    ).cnf
    timings = []
    for _ in range(3):
        started = perf_counter()
        ExactCounter().count(cnf)
        timings.append(perf_counter() - started)
    current = median(timings)
    ratio = current / recorded
    print(
        f"  perf gate: exact median {current * 1000:.1f} ms vs recorded "
        f"{recorded * 1000:.1f} ms ({ratio:.2f}x, tolerance {tolerance}x)"
    )
    if ratio > tolerance:
        return current, (
            f"exact counter regressed {ratio:.2f}x vs the last recorded "
            f"history entry {history[-1].get('label')!r} (tolerance {tolerance}x)"
        )
    return current, None


def profile_hot_path(scope: int = 5) -> None:
    """cProfile the exact counter on a scope-``scope`` instance and print.

    The instance (PartialOrder with adjacent symmetry breaking) has ~10x
    the clauses of the scope-4 ablation instance, which is what makes
    per-node costs visible — this is the loop that identified the
    occurrence-list propagation rebuild as the PR-3 hot spot.
    """
    import cProfile
    import io
    import pstats

    from repro.counting import ExactCounter
    from repro.spec import SymmetryBreaking, get_property, translate

    cnf = translate(
        get_property("PartialOrder"), scope, symmetry=SymmetryBreaking()
    ).cnf
    counter = ExactCounter(max_nodes=50_000_000, component_cache=None)
    print(f"profiling ExactCounter on PartialOrder scope {scope} ({cnf!r})")
    profile = cProfile.Profile()
    profile.enable()
    count = counter.count(cnf)
    profile.disable()
    stream = io.StringIO()
    pstats.Stats(profile, stream=stream).sort_stats("tottime").print_stats(15)
    print(f"count = {count}")
    print(stream.getvalue())


def _ablation_properties() -> tuple[str, ...]:
    """All registered property names (resolved after the sys.path insert)."""
    from repro.spec.properties import property_names

    return tuple(property_names())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label",
        default="current",
        help="history entry label, e.g. 'PR 7 (watched literals)'",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="where to write the JSON"
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the fan-out ablation (default 4)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: ablations on small instances, perf-regression "
        "gate vs the last history entry, no JSON update",
    )
    parser.add_argument(
        "--backend", action="append", default=None, metavar="NAME",
        help="additionally smoke a registered backend by name against "
        "ground truth; repeatable (CI smokes bdd and compiled so "
        "non-default backends cannot rot)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the exact counter on a scope-5 instance and exit",
    )
    parser.add_argument(
        "--smoke-output", type=Path, default=None, metavar="PATH",
        help="with --quick: additionally write the measured medians as "
        "JSON (CI uploads this as an artifact and diffs it against the "
        "last BENCH_counting.json history entry)",
    )
    args = parser.parse_args()

    sys.path.insert(0, str(REPO_ROOT / "src"))

    if args.profile:
        profile_hot_path()
        return

    if args.quick:
        print("quick smoke: counting-service ablations on reduced instances")
        workers_result = workers_ablation(workers=2, scope=3)
        cache_result = cache_ablation(scope=3, property_names=_ablation_properties()[:4])
        component_result = component_cache_ablation(
            scope=3, fractions=(0.75, 0.5, 0.25)
        )
        spill_result = component_spill_ablation(scope=3, fractions=(0.75, 0.5, 0.25))
        conditioning_result = compiled_conditioning_ablation(
            scope=3, fractions=(0.75, 0.5, 0.25), reps=3
        )
        service_result = service_throughput_ablation(
            scope=3, property_names=_ablation_properties()[:4],
            clients=2, coalesce_requests=4,
        )
        # 8 properties (16 signatures), not 4: with only 8 keys the ring
        # has sub-percent odds of putting everything on one shard, which
        # would flake the partition check. 16 keys make that ~2^-15.
        cluster_result = cluster_sharding_ablation(
            scope=3, property_names=_ablation_properties()[:8]
        )
        lanes_result = solver_lanes_ablation(
            scope=3, property_names=_ablation_properties()[:4],
            delay=0.2, slow_problems=2, reps=1,
        )
        store_result = store_roundtrip_bench(entries=500)
        _print_ablations(
            workers_result, cache_result, component_result, store_result,
            spill_result, conditioning_result, service_result, cluster_result,
            lanes_result,
        )
        for name in args.backend or ():
            backend_smoke(name)
        exact_median, gate_failure = perf_regression_smoke(args.output)
        if args.smoke_output is not None:
            # The machine-readable smoke record CI uploads as an artifact
            # and diffs against the recorded history (benchmarks/diff_smoke.py).
            # Written *before* the gate verdict fires so the numbers are
            # available precisely when the gate trips.
            smoke = {
                "mode": "quick",
                "cpu_count": os.cpu_count(),
                "exact_median_s": exact_median,
                "gate_failure": gate_failure,
                "ablations": {
                    "workers_fanout": workers_result,
                    "disk_cache": cache_result,
                    "component_cache": component_result,
                    "component_spill": spill_result,
                    "compiled_conditioning": conditioning_result,
                    "service_throughput": service_result,
                    "cluster_sharding": cluster_result,
                    "solver_lanes": lanes_result,
                    "store_roundtrip": store_result,
                },
            }
            args.smoke_output.write_text(json.dumps(smoke, indent=2) + "\n")
            print(f"  wrote smoke record to {args.smoke_output}")
        if gate_failure is not None:
            raise SystemExit(gate_failure)
        print("ok (quick mode never updates BENCH_counting.json)")
        return

    backends = run_benchmarks()
    if "exact" not in backends:
        raise SystemExit("no exact-counter benchmark result found")
    workers_result = workers_ablation(workers=args.workers, scope=4)
    cache_result = cache_ablation(scope=4, property_names=_ablation_properties())
    component_result = component_cache_ablation(
        scope=4,
        fractions=(
            0.75, 0.7, 0.65, 0.6, 0.55, 0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2,
            0.15, 0.1,
        ),
    )
    spill_result = component_spill_ablation(
        scope=4,
        fractions=(0.75, 0.65, 0.55, 0.45, 0.35, 0.25, 0.15),
    )
    conditioning_result = compiled_conditioning_ablation(
        scope=4,
        # A dense 28-step ratio grid: adjacent fractions retrain nearly
        # identical trees, so sweep regions share path cubes — the
        # conditioning memo's favourable (and DiffMC-realistic) regime.
        fractions=tuple(round(0.80 - 0.025 * i, 3) for i in range(28)),
    )
    service_result = service_throughput_ablation(
        scope=4, property_names=_ablation_properties(),
        clients=4, coalesce_requests=8,
    )
    cluster_result = cluster_sharding_ablation(
        scope=4, property_names=_ablation_properties()
    )
    lanes_result = solver_lanes_ablation(
        scope=4, property_names=_ablation_properties()[:8]
    )
    store_result = store_roundtrip_bench()

    document = {"instance": INSTANCE, "unit": "seconds", "history": []}
    if args.output.exists():
        document = json.loads(args.output.read_text())
    document["instance"] = INSTANCE
    document["unit"] = "seconds"
    document["backends"] = backends
    document["ablations"] = {
        "workers_fanout": workers_result,
        "disk_cache": cache_result,
        "component_cache": component_result,
        "component_spill": spill_result,
        "compiled_conditioning": conditioning_result,
        "service_throughput": service_result,
        "cluster_sharding": cluster_result,
        "solver_lanes": lanes_result,
        "store_roundtrip": store_result,
    }
    for name in args.backend or ():
        backend_smoke(name)

    # Backend + capability provenance: trajectory comparisons are only
    # apples-to-apples when successive entries counted with the same
    # contract, so each history entry records what produced its numbers.
    from repro.counting.api import backend_capabilities

    history = [
        entry for entry in document.get("history", []) if entry.get("label") != args.label
    ]
    history.append(
        {
            "label": args.label,
            "backend": "exact",
            "capabilities": backend_capabilities("exact").as_dict(),
            "exact_median_s": backends["exact"]["median_s"],
            "workers_fanout_speedup_x": workers_result["speedup_x"],
            "workers_fanout_cpu_count": workers_result["cpu_count"],
            "warm_cache_backend_counts": cache_result["warm_backend_counts"],
            "warm_cache_speedup_x": cache_result["speedup_x"],
            "component_cache_speedup_x": component_result["speedup_x"],
            "component_spill_speedup_x": spill_result["speedup_x"],
            "compiled_conditioning_speedup_x": conditioning_result["speedup_x"],
            "service_wire_overhead_x": service_result["wire_overhead_x"],
            "service_coalesce_backend_calls": service_result["coalesce_backend_calls"],
            "cluster_sharding_speedup_x": cluster_result["speedup_x"],
            "cluster_shard_count": cluster_result["shard_count"],
            "solver_lanes_overlap_ratio": lanes_result["overlap_ratio"],
            "solver_lanes_real_ratio_x": lanes_result["real_ratio_x"],
            "solver_lanes_cpu_count": lanes_result["cpu_count"],
            "store_roundtrip_puts_per_s": store_result["puts_per_s"],
        }
    )
    document["history"] = history
    baseline = history[0]["exact_median_s"]
    document["speedup_vs_first_entry"] = round(
        baseline / backends["exact"]["median_s"], 2
    )
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    for label, stats in sorted(backends.items()):
        print(f"  {label:>14}: median {stats['median_s'] * 1000:8.2f} ms")
    _print_ablations(
        workers_result, cache_result, component_result, store_result,
        spill_result, conditioning_result, service_result, cluster_result,
        lanes_result,
    )


if __name__ == "__main__":
    main()
