#!/usr/bin/env python
"""Run the counting-substrate benchmarks and record BENCH_counting.json.

Runs the ``TestCounterAblation`` benchmarks of ``bench_substrates.py``
through pytest-benchmark, extracts the per-backend median times, and writes
(or updates) ``BENCH_counting.json`` next to this script's repository root.
The JSON keeps a ``history`` list so successive PRs append their numbers
instead of overwriting the trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py --label "PR 7 (…)"

See ``benchmarks/README.md`` for how to interpret the output.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_counting.json"

#: benchmark test name -> backend label in the JSON
BACKENDS = {
    "test_exact_counter": "exact",
    "test_legacy_exact_counter": "exact-legacy",
    "test_counting_engine_warm": "engine-warm",
    "test_approxmc_counter": "approxmc",
    "test_bdd_counter_on_tree_region": "bdd",
    "test_formula_brute_counter": "formula-brute",
}

INSTANCE = (
    "PartialOrder at scope 4 with adjacent symmetry breaking "
    "(translate(...).cnf: 290 vars, 933 clauses, 16 projected) — "
    "except 'bdd', which counts a trained tree's label region"
)


def run_benchmarks() -> dict[str, dict[str, float]]:
    """Execute the ablation benchmarks, return per-backend stats (seconds)."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "bench.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_substrates.py"),
            "-k",
            "TestCounterAblation",
            "-q",
            f"--benchmark-json={report}",
        ]
        completed = subprocess.run(command, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {completed.returncode}")
        payload = json.loads(report.read_text())
    backends: dict[str, dict[str, float]] = {}
    for bench in payload.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        label = BACKENDS.get(name)
        if label is None:
            continue
        stats = bench["stats"]
        backends[label] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "rounds": stats["rounds"],
        }
    return backends


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label",
        default="current",
        help="history entry label, e.g. 'PR 7 (watched literals)'",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="where to write the JSON"
    )
    args = parser.parse_args()

    backends = run_benchmarks()
    if "exact" not in backends:
        raise SystemExit("no exact-counter benchmark result found")

    document = {"instance": INSTANCE, "unit": "seconds", "history": []}
    if args.output.exists():
        document = json.loads(args.output.read_text())
    document["instance"] = INSTANCE
    document["unit"] = "seconds"
    document["backends"] = backends
    history = [
        entry for entry in document.get("history", []) if entry.get("label") != args.label
    ]
    history.append(
        {
            "label": args.label,
            "exact_median_s": backends["exact"]["median_s"],
        }
    )
    document["history"] = history
    baseline = history[0]["exact_median_s"]
    document["speedup_vs_first_entry"] = round(
        baseline / backends["exact"]["median_s"], 2
    )
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    for label, stats in sorted(backends.items()):
        print(f"  {label:>14}: median {stats['median_s'] * 1000:8.2f} ms")


if __name__ == "__main__":
    main()
