"""Benchmark: regenerate Table 6 (train with symbr, evaluate on full space).

RQ4 scenario (1): symmetries absent from training but present in the
evaluation space — the worst case in the paper, where even recall drops.
"""

from benchmarks.conftest import once
from repro.experiments.generalization import generalization_table


def test_table6_symmetry_mismatch(benchmark, bench_config):
    rows = once(benchmark, generalization_table, 6, bench_config)
    by_name = {r.property_name: r for r in rows}
    # Trained on lex-min representatives only, the tree misses permuted
    # positives: whole-space recall falls below the test-set recall.
    sparse = by_name["PartialOrder"]
    assert sparse.phi_recall <= sparse.test_recall + 1e-9
