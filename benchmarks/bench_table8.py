"""Benchmark: regenerate Table 8 (DiffMC between two decision trees)."""

from benchmarks.conftest import once
from repro.experiments.table8 import table8


def test_table8_diffmc(benchmark, bench_config):
    rows = once(benchmark, table8, bench_config)
    assert len(rows) == len(bench_config.properties)
    for row in rows:
        result = row.result
        # Partition invariant and the paper's observation that two trees
        # trained on the same data are nearly identical semantically.
        assert result.tt + result.tf + result.ft + result.ff == 2**16
        assert result.diff <= 0.30
