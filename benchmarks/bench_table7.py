"""Benchmark: regenerate Table 7 (train without symbr, evaluate in the
symmetry-reduced space) — RQ4 scenario (2)."""

from benchmarks.conftest import once
from repro.experiments.generalization import generalization_table


def test_table7_symmetry_mismatch(benchmark, bench_config):
    rows = once(benchmark, generalization_table, 7, bench_config)
    by_name = {r.property_name: r for r in rows}
    # Richer training (with symmetric copies) keeps recall high in the
    # reduced space — Table 7's minimum recall stays at ~0.99 in the paper.
    assert by_name["Reflexive"].phi_recall >= 0.9
    assert len(rows) == len(bench_config.properties)
