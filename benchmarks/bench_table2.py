"""Benchmark: regenerate Table 2 (six models × splits, symmetry broken)."""

from benchmarks.conftest import once
from repro.experiments.classification import classification_table


def test_table2_classification_grid(benchmark, bench_config):
    rows = once(
        benchmark,
        classification_table,
        bench_config,
        property_name="PartialOrder",
        symmetry_breaking=True,
        ratios=(0.75, 0.25),
    )
    assert len(rows) == 12
    # RQ1 at reduced scope: every model clears 0.8 accuracy at 75:25.
    for row in rows:
        if row.ratio == "75:25":
            assert row.counts.accuracy >= 0.80
