"""Propositional-logic substrate.

This package provides the boolean building blocks every other subsystem rests
on:

* :mod:`repro.logic.formula` — a boolean formula AST (``Var``, ``Not``,
  ``And``, ``Or``, ``Implies``, ``Iff`` plus constants) with evaluation,
  negation-normal-form conversion and structural simplification.
* :mod:`repro.logic.cnf` — a CNF container with DIMACS-style integer
  literals, DIMACS text I/O, semantic evaluation and simple preprocessing.
* :mod:`repro.logic.tseitin` — the Tseitin transform.  All auxiliary
  variables are *biconditionally* defined so that every assignment of the
  original variables extends to exactly one model of the transformed
  formula; this is the invariant that lets the model counters treat
  ``#SAT`` and projected ``#SAT`` interchangeably (see DESIGN.md §5.2).
"""

from repro.logic.cnf import CNF, Clause
from repro.logic.formula import (
    And,
    FALSE,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    all_of,
    any_of,
    exactly_one,
    at_most_one,
    at_least_one,
)
from repro.logic.tseitin import tseitin_cnf, direct_cnf

__all__ = [
    "And",
    "CNF",
    "Clause",
    "FALSE",
    "Formula",
    "Iff",
    "Implies",
    "Not",
    "Or",
    "TRUE",
    "Var",
    "all_of",
    "any_of",
    "at_least_one",
    "at_most_one",
    "direct_cnf",
    "exactly_one",
    "tseitin_cnf",
]
