"""CNF formulas with DIMACS-style integer literals.

A literal is a non-zero int: ``v`` for the positive literal of variable ``v``
and ``-v`` for the negative one.  A clause is a tuple of literals, a CNF is a
list of clauses plus bookkeeping:

* ``num_vars`` — the highest variable id mentioned (or declared);
* ``projection`` — the *primary* variables.  For formulas produced by the
  relational layer these are the ``n²`` adjacency-matrix bits; auxiliary
  Tseitin variables come after them.  Model counters count distinct
  assignments to the projection set.

The class is intentionally a plain data container — solving and counting live
in :mod:`repro.sat` and :mod:`repro.counting`.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator, Mapping, Sequence

Clause = tuple[int, ...]

#: A clause as a pair of bitmasks over a dense variable index: bit ``i`` of
#: ``pos_mask``/``neg_mask`` is set when the positive/negative literal of the
#: ``i``-th packed variable occurs.  The two masks are disjoint (tautologies
#: are normalised away on construction).
MaskClause = tuple[int, int]


class PackedClauses:
    """Dense bitmask view of a clause list.

    The variables occurring in the clauses are renumbered ``0..k-1`` in
    sorted order and each clause becomes a ``(pos_mask, neg_mask)`` pair of
    Python ints.  Assignment, unit detection, subsumption checks, connected
    component splitting and cache keying then all reduce to O(1)-per-word
    integer ops instead of tuple rebuilding — this is the representation the
    exact counter's hot path runs on.
    """

    __slots__ = ("variables", "index", "clauses", "num_vars")

    def __init__(
        self,
        variables: tuple[int, ...],
        index: dict[int, int],
        clauses: list[MaskClause],
    ) -> None:
        self.variables = variables  #: packed bit i  ↔  DIMACS var variables[i]
        self.index = index  #: DIMACS var → packed bit index
        self.clauses = clauses
        self.num_vars = len(variables)

    def var_mask(self) -> int:
        """Union of all clause variable masks."""
        mask = 0
        for pos, neg in self.clauses:
            mask |= pos | neg
        return mask

    def literal_of(self, bit: int, positive: bool) -> int:
        """DIMACS literal for packed bit ``bit`` (a power of two)."""
        var = self.variables[bit.bit_length() - 1]
        return var if positive else -var

    def signature(self) -> frozenset[int]:
        """Order-independent packed signature of the clause set.

        Each clause is folded into the single integer
        ``(pos_mask << num_vars) | neg_mask``; the frozenset of those is a
        canonical key for component caching and count memoisation.
        """
        shift = self.num_vars
        return frozenset((pos << shift) | neg for pos, neg in self.clauses)


def pack_clauses(clauses: Sequence[Clause]) -> PackedClauses:
    """Pack tuple clauses into dense bitmask form (see :class:`PackedClauses`)."""
    occurring = sorted({abs(lit) for clause in clauses for lit in clause})
    index = {v: i for i, v in enumerate(occurring)}
    packed: list[MaskClause] = []
    for clause in clauses:
        pos = neg = 0
        for lit in clause:
            bit = 1 << index[abs(lit)]
            if lit > 0:
                pos |= bit
            else:
                neg |= bit
        packed.append((pos, neg))
    return PackedClauses(tuple(occurring), index, packed)


def _normalize_clause(literals: Iterable[int]) -> Clause | None:
    """Sort, dedupe, and detect tautologies.

    Returns ``None`` for tautological clauses (containing ``v`` and ``-v``).
    Raises on the literal ``0`` which DIMACS reserves as a terminator.
    """
    seen: set[int] = set()
    for lit in literals:
        if lit == 0:
            raise ValueError("0 is not a valid literal")
        if -lit in seen:
            return None
        seen.add(lit)
    return tuple(sorted(seen, key=abs))


class CNF:
    """A propositional formula in conjunctive normal form."""

    __slots__ = ("clauses", "num_vars", "projection", "aux_unique", "_signature")

    def __init__(
        self,
        clauses: Iterable[Iterable[int]] = (),
        num_vars: int = 0,
        projection: Iterable[int] | None = None,
        aux_unique: bool = False,
    ) -> None:
        self.clauses: list[Clause] = []
        self._signature: tuple | None = None
        self.num_vars = num_vars
        self.projection: frozenset[int] | None = (
            frozenset(projection) if projection is not None else None
        )
        # True when every assignment of the projection variables extends to
        # at most one model over the auxiliary variables (e.g. biconditional
        # Tseitin output).  Model counters may then count over all variables.
        self.aux_unique = aux_unique
        for clause in clauses:
            self.add_clause(clause)

    # -- construction ----------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause; tautologies are dropped silently."""
        clause = _normalize_clause(literals)
        if clause is None:
            return
        if clause:
            self.num_vars = max(self.num_vars, max(abs(l) for l in clause))
        self.clauses.append(clause)
        self._signature = None

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def new_var(self) -> int:
        """Allocate a fresh variable id."""
        self.num_vars += 1
        self._signature = None  # the ("all", num_vars) projection marker moved
        return self.num_vars

    def copy(self) -> "CNF":
        other = CNF(
            num_vars=self.num_vars,
            projection=self.projection,
            aux_unique=self.aux_unique,
        )
        other.clauses = list(self.clauses)
        return other

    def conjoin(self, other: "CNF") -> "CNF":
        """A new CNF equal to ``self ∧ other`` (variable ids must agree).

        The projection of the result is the union of projections (treating a
        missing projection as "all variables of that operand").
        """
        result = self.copy()
        result.num_vars = max(self.num_vars, other.num_vars)
        result.clauses.extend(other.clauses)
        result.aux_unique = self.counts_without_projection() and other.counts_without_projection()
        if self.projection is None and other.projection is None:
            result.projection = None
        else:
            mine = self.projection if self.projection is not None else self.variables()
            theirs = other.projection if other.projection is not None else other.variables()
            result.projection = frozenset(mine) | frozenset(theirs)
        return result

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def variables(self) -> frozenset[int]:
        """Variables actually occurring in clauses."""
        return frozenset(abs(l) for clause in self.clauses for l in clause)

    def projected_vars(self) -> frozenset[int]:
        """The counting projection: declared projection, else all of 1..num_vars."""
        if self.projection is not None:
            return self.projection
        return frozenset(range(1, self.num_vars + 1))

    def aux_vars(self) -> frozenset[int]:
        """Variables outside the projection (Tseitin/encoding auxiliaries)."""
        return self.variables() - self.projected_vars()

    def counts_without_projection(self) -> bool:
        """True when ``#models == #projected models`` is guaranteed.

        Holds when there are no auxiliary variables at all, or when the
        auxiliaries are flagged as uniquely extending (``aux_unique``).
        """
        return self.aux_unique or not self.aux_vars()

    def packed_view(self) -> PackedClauses:
        """Dense bitmask view of the clauses (see :class:`PackedClauses`)."""
        return pack_clauses(self.clauses)

    def signature(self) -> tuple:
        """Canonical hashable identity of the counting problem.

        Two CNFs with equal signatures have the same projected model count,
        so this is the memoisation key used by
        :class:`repro.counting.engine.CountingEngine`.  The clause body is a
        packed bitmask signature (order- and duplicate-insensitive); the
        projection is included because free projected variables multiply the
        count.

        Memoized on the instance — the engine consults the signature on
        every ``count``/``count_many`` call, typically for the same CNF
        object — and invalidated by the mutating methods (``add_clause``,
        ``new_var``).  Mutating ``clauses``/``num_vars`` *directly* after a
        signature has been taken is not supported.
        """
        if self._signature is not None:
            return self._signature
        packed = self.packed_view()
        projection: tuple | frozenset
        if self.projection is not None:
            projection = self.projection
        else:
            projection = ("all", self.num_vars)
        self._signature = (packed.variables, packed.signature(), projection)
        return self._signature

    def evaluate(self, assignment: Mapping[int, bool] | Sequence[bool]) -> bool:
        """Evaluate under a total assignment.

        ``assignment`` maps variable ids to booleans; a sequence is treated as
        0-indexed by ``var_id - 1``.
        """
        lookup = _assignment_lookup(assignment)
        return all(any(lookup(lit) for lit in clause) for clause in self.clauses)

    def is_horn(self) -> bool:
        """True when every clause has at most one positive literal."""
        return all(sum(1 for l in clause if l > 0) <= 1 for clause in self.clauses)

    def stats(self) -> dict[str, int]:
        """Size statistics as reported in the paper's metadata tables."""
        proj = self.projection or frozenset()
        return {
            "primary_vars": len(proj),
            "total_vars": self.num_vars,
            "clauses": len(self.clauses),
            "literals": sum(len(c) for c in self.clauses),
        }

    # -- DIMACS ----------------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format.

        The projection set is emitted as ``c ind`` comment lines, the
        convention ApproxMC and ProjMC use for projected counting.
        """
        out = io.StringIO()
        if self.projection is not None:
            ordered = sorted(self.projection)
            for start in range(0, len(ordered), 10):
                chunk = " ".join(map(str, ordered[start : start + 10]))
                out.write(f"c ind {chunk} 0\n")
        out.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        for clause in self.clauses:
            out.write(" ".join(map(str, clause)) + " 0\n")
        return out.getvalue()

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF, honouring ``c ind`` projection comments."""
        clauses: list[list[int]] = []
        projection: set[int] = set()
        declared_vars = 0
        pending: list[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith("c"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "ind":
                    projection.update(
                        int(tok) for tok in parts[2:] if tok != "0"
                    )
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for tok in line.split():
                lit = int(tok)
                if lit == 0:
                    clauses.append(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            clauses.append(pending)
        cnf = cls(clauses, num_vars=declared_vars, projection=projection or None)
        return cnf

    def __repr__(self) -> str:
        proj = len(self.projection) if self.projection is not None else "all"
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)}, proj={proj})"


def _assignment_lookup(assignment: Mapping[int, bool] | Sequence[bool]):
    """Uniform literal-truth lookup over dict- or sequence-style assignments."""
    if isinstance(assignment, Mapping):

        def lookup(lit: int) -> bool:
            value = assignment[abs(lit)]
            return bool(value) if lit > 0 else not value

    else:

        def lookup(lit: int) -> bool:
            value = assignment[abs(lit) - 1]
            return bool(value) if lit > 0 else not value

    return lookup


def unit_propagate(
    clauses: Sequence[Clause], assignment: dict[int, bool]
) -> tuple[list[Clause], dict[int, bool]] | None:
    """Simple (non-watched) unit propagation used by preprocessing and tests.

    Returns the residual clause list and the extended assignment, or ``None``
    on conflict.  The input ``assignment`` is not mutated.
    """
    assign = dict(assignment)
    work = list(clauses)
    changed = True
    while changed:
        changed = False
        residual: list[Clause] = []
        for clause in work:
            satisfied = False
            unassigned: list[int] = []
            for lit in clause:
                val = assign.get(abs(lit))
                if val is None:
                    unassigned.append(lit)
                elif (lit > 0) == val:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not unassigned:
                return None
            if len(unassigned) == 1:
                lit = unassigned[0]
                assign[abs(lit)] = lit > 0
                changed = True
            else:
                residual.append(tuple(unassigned))
        work = residual
    return work, assign
