"""Boolean formula AST.

Formulas are immutable trees built from :class:`Var`, :class:`Not`,
:class:`And`, :class:`Or`, :class:`Implies`, :class:`Iff` and the constants
:data:`TRUE` / :data:`FALSE`.  The AST is deliberately small: the relational
layer (:mod:`repro.spec`) grounds quantifiers itself and only ever needs this
propositional core.

Design notes
------------
* Nodes are hash-consed *structurally* via ``__eq__``/``__hash__`` so they can
  be used as dictionary keys by the Tseitin transform's common-subexpression
  cache.
* ``And``/``Or`` are n-ary and flatten nested applications of the same
  connective on construction; obvious constant folding (``x ∧ ⊥ = ⊥`` …) also
  happens on construction, which keeps grounded relational formulas compact.
* Operator overloading (``&``, ``|``, ``~``, ``>>`` for implication) is
  provided because grounded formulas are built in tight loops and the infix
  form keeps that code readable.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Mapping


class Formula:
    """Base class for all propositional formula nodes."""

    __slots__ = ("_hash",)

    # -- construction helpers -------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        return Iff(self, other)

    # -- queries ---------------------------------------------------------------

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under a total assignment mapping variable ids to bools."""
        raise NotImplementedError

    def variables(self) -> frozenset[int]:
        """The set of variable ids occurring in the formula."""
        raise NotImplementedError

    def children(self) -> tuple["Formula", ...]:
        return ()

    # -- transformations -------------------------------------------------------

    def to_nnf(self, *, negate: bool = False) -> "Formula":
        """Negation normal form (negations pushed down to variables)."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[int, "Formula"]) -> "Formula":
        """Replace variables by formulas."""
        raise NotImplementedError

    def walk(self) -> Iterator["Formula"]:
        """Pre-order traversal over all sub-formulas (including self)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def size(self) -> int:
        """Number of AST nodes."""
        return sum(1 for _ in self.walk())


class _Constant(Formula):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return self.value

    def variables(self) -> frozenset[int]:
        return frozenset()

    def to_nnf(self, *, negate: bool = False) -> Formula:
        return _Constant(self.value ^ negate)

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __reduce__(self):
        # __slots__ + argument-taking constructors defeat default pickling;
        # nodes reduce to their constructor calls instead (the constructors
        # re-apply the structural simplifications idempotently), which is
        # what lets formulas, RelationalProblems and CountRequests persist
        # to the engine's compilation memo store.
        return (_Constant, (self.value,))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Constant(True)
FALSE = _Constant(False)


class Var(Formula):
    """A propositional variable identified by a positive integer id.

    Integer ids double as DIMACS variable numbers, which makes the trip
    from the relational layer through Tseitin to the SAT/counting layer a
    no-op renaming.
    """

    __slots__ = ("id",)

    def __init__(self, var_id: int) -> None:
        if var_id <= 0:
            raise ValueError(f"variable ids must be positive, got {var_id}")
        self.id = var_id

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return bool(assignment[self.id])

    def variables(self) -> frozenset[int]:
        return frozenset((self.id,))

    def to_nnf(self, *, negate: bool = False) -> Formula:
        return Not(self) if negate else self

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return mapping.get(self.id, self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.id == other.id

    def __hash__(self) -> int:
        return hash(("var", self.id))

    def __reduce__(self):
        return (Var, (self.id,))

    def __repr__(self) -> str:
        return f"x{self.id}"


class Not(Formula):
    __slots__ = ("operand",)

    def __new__(cls, operand: Formula):
        # Constant folding and double-negation elimination.
        if operand is TRUE or operand == TRUE:
            return FALSE
        if operand is FALSE or operand == FALSE:
            return TRUE
        if isinstance(operand, Not):
            return operand.operand
        self = object.__new__(cls)
        self.operand = operand
        return self

    def __init__(self, operand: Formula) -> None:  # noqa: D107 - set in __new__
        pass

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> frozenset[int]:
        return self.operand.variables()

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def to_nnf(self, *, negate: bool = False) -> Formula:
        return self.operand.to_nnf(negate=not negate)

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return Not(self.operand.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))

    def __reduce__(self):
        return (Not, (self.operand,))

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


def _flatten(
    cls: type, operands: Iterable[Formula], absorbing: Formula, identity: Formula
) -> list[Formula] | Formula:
    """Flatten nested n-ary connectives and fold constants.

    Returns the absorbing constant if present, otherwise a de-duplicated
    operand list (order preserved).
    """
    seen: set[Formula] = set()
    flat: list[Formula] = []
    stack = list(reversed(list(operands)))
    while stack:
        op = stack.pop()
        if isinstance(op, cls):
            stack.extend(reversed(op.operands))
            continue
        if op == absorbing:
            return absorbing
        if op == identity:
            continue
        if op not in seen:
            seen.add(op)
            flat.append(op)
    return flat


class And(Formula):
    __slots__ = ("operands",)

    def __new__(cls, *operands: Formula):
        flat = _flatten(cls, operands, absorbing=FALSE, identity=TRUE)
        if isinstance(flat, Formula):
            return flat
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        self = object.__new__(cls)
        self.operands = tuple(flat)
        return self

    def __init__(self, *operands: Formula) -> None:
        pass

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> frozenset[int]:
        return frozenset(itertools.chain.from_iterable(op.variables() for op in self.operands))

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def to_nnf(self, *, negate: bool = False) -> Formula:
        parts = [op.to_nnf(negate=negate) for op in self.operands]
        return Or(*parts) if negate else And(*parts)

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return And(*(op.substitute(mapping) for op in self.operands))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash(("and", self.operands))

    def __reduce__(self):
        return (And, tuple(self.operands))

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.operands)) + ")"


class Or(Formula):
    __slots__ = ("operands",)

    def __new__(cls, *operands: Formula):
        flat = _flatten(cls, operands, absorbing=TRUE, identity=FALSE)
        if isinstance(flat, Formula):
            return flat
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        self = object.__new__(cls)
        self.operands = tuple(flat)
        return self

    def __init__(self, *operands: Formula) -> None:
        pass

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> frozenset[int]:
        return frozenset(itertools.chain.from_iterable(op.variables() for op in self.operands))

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def to_nnf(self, *, negate: bool = False) -> Formula:
        parts = [op.to_nnf(negate=negate) for op in self.operands]
        return And(*parts) if negate else Or(*parts)

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return Or(*(op.substitute(mapping) for op in self.operands))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash(("or", self.operands))

    def __reduce__(self):
        return (Or, tuple(self.operands))

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.operands)) + ")"


class Implies(Formula):
    __slots__ = ("antecedent", "consequent")

    def __new__(cls, antecedent: Formula, consequent: Formula):
        if antecedent == TRUE:
            return consequent
        if antecedent == FALSE or consequent == TRUE:
            return TRUE
        if consequent == FALSE:
            return Not(antecedent)
        self = object.__new__(cls)
        self.antecedent = antecedent
        self.consequent = consequent
        return self

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        pass

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return (not self.antecedent.evaluate(assignment)) or self.consequent.evaluate(assignment)

    def variables(self) -> frozenset[int]:
        return self.antecedent.variables() | self.consequent.variables()

    def children(self) -> tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def to_nnf(self, *, negate: bool = False) -> Formula:
        if negate:
            return And(self.antecedent.to_nnf(), self.consequent.to_nnf(negate=True))
        return Or(self.antecedent.to_nnf(negate=True), self.consequent.to_nnf())

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return Implies(self.antecedent.substitute(mapping), self.consequent.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Implies)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self) -> int:
        return hash(("implies", self.antecedent, self.consequent))

    def __reduce__(self):
        return (Implies, (self.antecedent, self.consequent))

    def __repr__(self) -> str:
        return f"({self.antecedent!r} >> {self.consequent!r})"


class Iff(Formula):
    __slots__ = ("left", "right")

    def __new__(cls, left: Formula, right: Formula):
        if left == right:
            return TRUE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == FALSE:
            return Not(right)
        if right == FALSE:
            return Not(left)
        self = object.__new__(cls)
        self.left = left
        self.right = right
        return self

    def __init__(self, left: Formula, right: Formula) -> None:
        pass

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def variables(self) -> frozenset[int]:
        return self.left.variables() | self.right.variables()

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def to_nnf(self, *, negate: bool = False) -> Formula:
        l, r = self.left, self.right
        if negate:
            # ¬(l ↔ r) = (l ∧ ¬r) ∨ (¬l ∧ r)
            return Or(
                And(l.to_nnf(), r.to_nnf(negate=True)),
                And(l.to_nnf(negate=True), r.to_nnf()),
            )
        return And(
            Or(l.to_nnf(negate=True), r.to_nnf()),
            Or(l.to_nnf(), r.to_nnf(negate=True)),
        )

    def substitute(self, mapping: Mapping[int, Formula]) -> Formula:
        return Iff(self.left.substitute(mapping), self.right.substitute(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Iff) and self.left == other.left and self.right == other.right

    def __hash__(self) -> int:
        return hash(("iff", self.left, self.right))

    def __reduce__(self):
        return (Iff, (self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} <-> {self.right!r})"


# ---------------------------------------------------------------------------
# Convenience constructors used heavily by the relational grounder.
# ---------------------------------------------------------------------------


def all_of(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of an iterable (TRUE when empty)."""
    return And(*formulas)


def any_of(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of an iterable (FALSE when empty)."""
    return Or(*formulas)


def at_least_one(formulas: Iterable[Formula]) -> Formula:
    return Or(*formulas)


def at_most_one(formulas: Iterable[Formula]) -> Formula:
    """Pairwise at-most-one constraint (quadratic; fine for row/column widths)."""
    items = list(formulas)
    return And(*(Not(And(a, b)) for a, b in itertools.combinations(items, 2)))


def exactly_one(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    return And(at_least_one(items), at_most_one(items))


def iter_assignments(variables: Iterable[int]) -> Iterator[dict[int, bool]]:
    """All total assignments over ``variables`` (for exhaustive small checks)."""
    ordered = sorted(set(variables))
    for bits in itertools.product((False, True), repeat=len(ordered)):
        yield dict(zip(ordered, bits))


def models(formula: Formula, variables: Iterable[int] | None = None) -> list[dict[int, bool]]:
    """Enumerate models by brute force.  Only for tests / tiny formulas."""
    if variables is None:
        variables = formula.variables()
    return [a for a in iter_assignments(variables) if formula.evaluate(a)]


def semantically_equal(
    f: Formula, g: Formula, variables: Iterable[int] | None = None
) -> bool:
    """Truth-table equivalence over the union of both variable sets."""
    if variables is None:
        variables = f.variables() | g.variables()
    return all(f.evaluate(a) == g.evaluate(a) for a in iter_assignments(variables))


def dag_size(formula: Formula) -> int:
    """Number of *distinct* subformulas (DAG nodes under structural sharing).

    ``Formula.size()`` counts the tree expansion, which explodes on shared
    DAGs like the threshold-gate DP of :mod:`repro.ml.bnn`; this walks each
    distinct node once.
    """
    visited: set[Formula] = set()
    stack = [formula]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        stack.extend(node.children())
    return len(visited)


def fold(formula: Formula, fn: Callable[[Formula, tuple], object]) -> object:
    """Bottom-up fold with memoisation over shared subtrees."""
    cache: dict[Formula, object] = {}

    def go(node: Formula) -> object:
        hit = cache.get(node)
        if hit is not None:
            return hit
        result = fn(node, tuple(go(c) for c in node.children()))
        cache[node] = result
        return result

    return go(formula)
