"""CNF conversion: Tseitin transform and small-formula direct conversion.

Two converters are provided:

* :func:`tseitin_cnf` — linear-size conversion introducing one auxiliary
  variable per connective node.  Auxiliaries are defined with *full
  biconditionals* (not Plaisted–Greenbaum implications).  This costs a few
  extra clauses but buys the key counting invariant: every assignment of the
  input variables extends to **exactly one** model of the output, so the
  model count projected onto the input variables equals the plain model
  count.  MCML's reduction to model counting relies on this (DESIGN.md §5.2).

* :func:`direct_cnf` — distribution-based conversion without auxiliary
  variables.  Exponential in the worst case; used for small formulas (lex
  constraints on tiny scopes, tests) where an equivalent — not merely
  equicountable — CNF is convenient.
"""

from __future__ import annotations

from repro.logic.cnf import CNF
from repro.logic.formula import (
    And,
    FALSE,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
)


def tseitin_cnf(
    formula: Formula,
    num_input_vars: int | None = None,
    projection: frozenset[int] | None = None,
) -> CNF:
    """Translate ``formula`` to CNF with biconditionally-defined auxiliaries.

    Parameters
    ----------
    formula:
        The propositional formula to translate.
    num_input_vars:
        Number of input (primary) variables.  Auxiliary variables are
        allocated starting at ``num_input_vars + 1``.  Defaults to the
        largest variable id in the formula.
    projection:
        Counting projection recorded on the resulting CNF.  Defaults to
        ``{1..num_input_vars}``.

    Shared subtrees are translated once (the cache is keyed on structural
    equality), so grounded relational formulas — which repeat row/column
    subformulas heavily — stay compact.
    """
    variables = formula.variables()
    if num_input_vars is None:
        num_input_vars = max(variables, default=0)
    if variables and max(variables) > num_input_vars:
        raise ValueError(
            f"formula mentions variable {max(variables)} > num_input_vars={num_input_vars}"
        )
    if projection is None:
        projection = frozenset(range(1, num_input_vars + 1))

    # Tseitin auxiliaries are biconditionally defined in terms of the input
    # variables, so the unique-extension flag holds whenever the projection
    # covers all inputs (the only mode this project uses).
    aux_unique = projection >= variables
    cnf = CNF(num_vars=num_input_vars, projection=projection, aux_unique=aux_unique)
    cache: dict[Formula, int] = {}

    def lit_for(node: Formula) -> int:
        """Return a literal equivalent to ``node``, emitting defining clauses."""
        if node is TRUE or node == TRUE:
            raise AssertionError("constants are folded away before translation")
        if isinstance(node, Var):
            return node.id
        if isinstance(node, Not):
            return -lit_for(node.operand)
        cached = cache.get(node)
        if cached is not None:
            return cached
        if isinstance(node, And):
            child_lits = [lit_for(c) for c in node.operands]
            aux = cnf.new_var()
            # aux ↔ ∧ children
            for cl in child_lits:
                cnf.add_clause((-aux, cl))
            cnf.add_clause(tuple([-cl for cl in child_lits] + [aux]))
        elif isinstance(node, Or):
            child_lits = [lit_for(c) for c in node.operands]
            aux = cnf.new_var()
            # aux ↔ ∨ children
            for cl in child_lits:
                cnf.add_clause((-cl, aux))
            cnf.add_clause(tuple([-aux] + child_lits))
        elif isinstance(node, Implies):
            a = lit_for(node.antecedent)
            b = lit_for(node.consequent)
            aux = cnf.new_var()
            # aux ↔ (a → b)
            cnf.add_clause((-aux, -a, b))
            cnf.add_clause((a, aux))
            cnf.add_clause((-b, aux))
        elif isinstance(node, Iff):
            a = lit_for(node.left)
            b = lit_for(node.right)
            aux = cnf.new_var()
            # aux ↔ (a ↔ b)
            cnf.add_clause((-aux, -a, b))
            cnf.add_clause((-aux, a, -b))
            cnf.add_clause((aux, a, b))
            cnf.add_clause((aux, -a, -b))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown formula node {type(node).__name__}")
        cache[node] = aux
        return aux

    if formula == TRUE:
        return cnf
    if formula == FALSE:
        # An unconditionally false CNF: assert both polarities of one variable
        # (allocating a fresh one if the formula had none).
        v = 1 if num_input_vars else cnf.new_var()
        cnf.add_clause((v,))
        cnf.add_clause((-v,))
        return cnf

    root = lit_for(formula)
    cnf.add_clause((root,))
    return cnf


def direct_cnf(formula: Formula, max_clauses: int = 100_000) -> list[tuple[int, ...]]:
    """Convert to an *equivalent* CNF clause list by distribution.

    No auxiliary variables are introduced, so the result can be conjoined
    into any other CNF over the same variables without renaming.  Raises
    ``ValueError`` if distribution would exceed ``max_clauses`` clauses —
    callers should fall back to :func:`tseitin_cnf` in that case.
    """
    nnf = formula.to_nnf()

    def go(node: Formula) -> list[frozenset[int]]:
        if node == TRUE:
            return []
        if node == FALSE:
            return [frozenset()]
        if isinstance(node, Var):
            return [frozenset((node.id,))]
        if isinstance(node, Not):
            operand = node.operand
            if not isinstance(operand, Var):  # pragma: no cover - NNF guarantees
                raise AssertionError("negation above non-variable survived NNF")
            return [frozenset((-operand.id,))]
        if isinstance(node, And):
            clauses: list[frozenset[int]] = []
            for child in node.operands:
                clauses.extend(go(child))
                if len(clauses) > max_clauses:
                    raise ValueError("direct CNF conversion blew up; use tseitin_cnf")
            return clauses
        if isinstance(node, Or):
            # Distribute: cross product of child clause sets.
            product: list[frozenset[int]] = [frozenset()]
            for child in node.operands:
                child_clauses = go(child)
                product = [
                    acc | extra for acc in product for extra in child_clauses
                ]
                if len(product) > max_clauses:
                    raise ValueError("direct CNF conversion blew up; use tseitin_cnf")
            return product
        raise TypeError(f"unexpected node in NNF: {type(node).__name__}")

    clauses = go(nnf)
    result: list[tuple[int, ...]] = []
    seen: set[frozenset[int]] = set()
    for clause in clauses:
        # Drop tautologies and duplicates.
        if any(-lit in clause for lit in clause):
            continue
        if clause in seen:
            continue
        seen.add(clause)
        result.append(tuple(sorted(clause, key=abs)))
    return result
