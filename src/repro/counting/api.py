"""Counting service API v2: typed requests/results, capabilities, registry.

MCML's substrate serves many consumers — AccMC confusion counts, DiffMC
model diffs, BNN quantification — and before this module their contract
with the backends was informal: duck-typed ``count`` objects, capability
sniffing via ``hasattr``/class attributes, and hard-coded construction.
This module makes the contract explicit:

* :class:`CountRequest` / :class:`CountResult` — a frozen, picklable
  description of one projected counting problem (CNF payload + precision
  mode + node budget) and the typed answer (count, exactness, backend
  name, wall time, cache provenance, engine-stats delta).  The
  :class:`~repro.counting.engine.CountingEngine`'s ``solve``/``solve_many``
  speak these; the historical ``count``/``count_many`` survive as thin
  bare-``int`` shims over them.
* :class:`Capabilities` — what a backend can actually do, declared once as
  a dataclass instead of being sniffed per call site: exactness (counts
  portable across backends/sessions), formula counting (AccMC's
  vectorised fast path), projection support (Tseitin auxiliaries allowed
  in clauses), parallel safety (worker clones reproduce the serial
  stream), and component-cache ownership (the engine may install a shared
  cache).  Engine routing, store/parallel gating and consumer fast paths
  all negotiate through these flags only.
* :class:`CounterBackend` — the structural protocol every backend
  satisfies: ``name``, ``capabilities``, ``count(cnf) -> int``.
* the **backend registry** — every backend is constructible by name via
  :func:`make_backend` (``exact``, ``legacy``, ``brute``, ``bdd``,
  ``approxmc``, plus aliases) and enumerable via
  :func:`available_backends`, which is what ``mcml --backend NAME`` and
  the conformance suite iterate over.  A new backend is a registry entry
  plus a conformance-suite run.

The module sits below the engine (it imports only :mod:`repro.logic.cnf`),
so backends and the engine can both import from it without cycles; the
concrete backend factories are imported lazily inside the registry.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, fields
from typing import Protocol, runtime_checkable

from repro.logic.cnf import CNF, Clause

__all__ = [
    "Capabilities",
    "CountFailure",
    "CountRequest",
    "CountResult",
    "CounterBackend",
    "CountingSurface",
    "EngineStats",
    "available_backends",
    "backend_capabilities",
    "capabilities_of",
    "make_backend",
    "register_backend",
]

#: Attribute-absence sentinel (capability inference never uses ``hasattr``).
_MISSING = object()


# -- capabilities ---------------------------------------------------------------------


@dataclass(frozen=True)
class Capabilities:
    """What a counting backend can do, declared instead of sniffed.

    Parameters
    ----------
    exact:
        Counts are exact, hence portable across backends and sessions: the
        engine may persist them to a shared disk store and fan batches out
        to worker clones.  Approximate (ε, δ) estimates are neither.
    counts_formulas:
        The backend exposes ``count_formula(formula, num_vars)``; AccMC's
        formula-sweep fast path and the engine's memoized
        ``count_formula`` route negotiate on this flag.
    supports_projection:
        Clauses may mention variables outside the projection (Tseitin
        auxiliaries); backends without it (brute sweep, OBDD) reject such
        CNFs, so they only serve auxiliary-free problems like tree
        regions.
    parallel_safe:
        A pickled clone reproduces the original's count stream, so the
        engine may fan cold batches out over worker processes.  False for
        seeded approximate backends (each clone restarts the RNG).
    owns_component_cache:
        The backend exposes a ``component_cache`` attribute the engine may
        replace with a shared :class:`~repro.counting.component_cache.ComponentCache`.
    conditions_cubes:
        The backend exposes ``compile(cnf) ->``
        :class:`~repro.counting.circuit.Circuit`: the engine compiles a
        per-path base formula once (persisting it in the circuit disk
        tier) and answers every ``mc(φ∧path)`` sub-problem by unit-cube
        conditioning on the cached circuit instead of independent counts.
        Implies ``exact`` — conditioning results carry
        ``source="circuit"`` provenance and are persisted like any exact
        count.
    routes:
        The backend exposes ``route(cnf, prefer_exact=…) ->``
        :class:`~repro.counting.router.Route`: it is a dispatcher over
        other registered backends rather than a counter of its own, and
        the engine asks it *where* each problem should go before counting
        so the decision can be surfaced as provenance
        (:attr:`CountResult.routed_to`, per-route :class:`EngineStats`
        counters) and so approximate routes are never memoized or
        persisted even though the routing backend declares ``exact``
        (its exact routes are).
    decomposes:
        The backend exposes ``decompose(cnf, min_component_vars=…) ->
        (multiplier, sub_cnfs) | None``: its top-level simplification can
        split one hard problem into independent connected components whose
        counts multiply (``count(cnf) == multiplier × Π count(sub)``), so
        the engine may fan the sub-problems of a *single* count out over
        its worker pool (``EngineConfig(fanout_min_vars=…)``) instead of
        only parallelising across batch positions.  Implies ``exact`` —
        multiplying estimates compounds their error.
    """

    exact: bool
    counts_formulas: bool = False
    supports_projection: bool = False
    parallel_safe: bool = False
    owns_component_cache: bool = False
    conditions_cubes: bool = False
    routes: bool = False
    decomposes: bool = False

    def as_dict(self) -> dict[str, bool]:
        """Flag mapping, e.g. for benchmark/CLI provenance records."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """Compact ``flag+flag-…`` rendering for CLI listings."""
        return " ".join(
            f"{name}={'yes' if value else 'no'}"
            for name, value in self.as_dict().items()
        )


@runtime_checkable
class CounterBackend(Protocol):
    """The structural contract of a counting backend.

    Anything with a ``name``, declared :class:`Capabilities` and a
    ``count(cnf) -> int`` method is a backend; registered implementations
    additionally construct via :func:`make_backend`.
    """

    name: str
    capabilities: Capabilities

    def count(self, cnf: CNF) -> int:  # pragma: no cover - protocol stub
        ...


@runtime_checkable
class CountingSurface(Protocol):
    """The one client surface every counting front end speaks.

    :class:`~repro.core.session.MCMLSession` (in-process),
    :class:`~repro.counting.service.client.ServiceClient` (one daemon
    over TCP) and :class:`~repro.counting.service.cluster.ShardedClient`
    (a consistent-hash daemon cluster) all declare this protocol, so
    drivers (AccMC, DiffMC, the table runners, the CLI) accept any of the
    three interchangeably — where the counts are produced is a deployment
    decision, not an API one.

    The contract:

    * ``solve(problem, *, on_failure="raise")`` /
      ``solve_many(problems, *, on_failure="raise")`` — the typed front
      door.  ``problem`` is a :class:`CountRequest` or a raw CNF; returns
      :class:`CountResult` objects.  ``on_failure="raise"`` re-raises a
      failed problem's original exception (:class:`~repro.counting.exact.CounterAbort`
      subclasses included, in-process and over the wire alike);
      ``on_failure="return"`` yields the typed :class:`CountFailure` in
      the problem's batch position instead.
    * ``count(problem) -> int`` / ``count_many(problems) -> list[int]`` —
      bare-int conveniences over the typed path (always ``raise``
      semantics).
    * ``stats() -> dict`` — a JSON-safe telemetry payload.  Every
      implementation nests the engine counters under an ``"engine"`` key
      (remote surfaces aggregate across lanes/shards); other keys are
      implementation-specific.
    * ``close()`` + context manager — releases pools, sockets and disk
      store handles; closing twice is safe.
    """

    def solve(self, problem, *, on_failure: str = "raise") -> "CountResult":
        ...  # pragma: no cover - protocol stub

    def solve_many(self, problems, *, on_failure: str = "raise") -> list:
        ...  # pragma: no cover - protocol stub

    def count(self, problem) -> int:
        ...  # pragma: no cover - protocol stub

    def count_many(self, problems) -> list[int]:
        ...  # pragma: no cover - protocol stub

    def stats(self) -> dict:
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        ...  # pragma: no cover - protocol stub

    def __enter__(self):
        ...  # pragma: no cover - protocol stub

    def __exit__(self, *exc_info) -> None:
        ...  # pragma: no cover - protocol stub


def capabilities_of(counter) -> Capabilities:
    """The backend's declared capabilities, inferred for foreign objects.

    Registered backends declare a ``capabilities`` class attribute and get
    it back verbatim.  Duck-typed third-party counters (anything with a
    ``count`` method handed straight to an engine) are profiled
    conservatively from their public surface: an ``exact = True``
    attribute in the historical convention, a callable ``count_formula``,
    a ``component_cache`` attribute.  Projection support is assumed — a
    foreign counter that cannot handle auxiliaries should declare
    capabilities itself.
    """
    declared = getattr(counter, "capabilities", None)
    if isinstance(declared, Capabilities):
        return declared
    exact = bool(getattr(counter, "exact", False))
    return Capabilities(
        exact=exact,
        counts_formulas=callable(getattr(counter, "count_formula", None)),
        supports_projection=True,
        parallel_safe=exact,
        owns_component_cache=getattr(counter, "component_cache", _MISSING)
        is not _MISSING,
    )


# -- typed request / result -----------------------------------------------------------


@dataclass(frozen=True)
class CountRequest:
    """One projected model-counting problem, frozen and picklable.

    The CNF payload is flattened to hashable tuples (the same shape the
    worker-pool protocol ships across processes), plus the two knobs a
    caller can put on a single problem:

    ``precision``
        ``"exact"`` demands a backend whose counts are exact (the engine
        raises otherwise); ``"any"`` (default) accepts whatever the
        configured backend produces.
    ``budget``
        Per-problem search-node budget overriding the backend's default
        (``max_nodes``); ``None`` keeps the backend's own.  The override
        is applied per problem and restored afterwards, in-process and in
        worker clones alike.
    ``deadline``
        Per-problem wall-clock seconds.  Backends with a ``deadline``
        knob (the exact and approxmc counters) enforce it cooperatively
        and raise :class:`~repro.counting.exact.CounterTimeout`; the
        worker pool additionally backstops it with a kill-and-respawn
        watchdog at deadline + grace, so even a wedged worker cannot hang
        a batch.  For per-path requests the deadline applies to each
        sub-problem.  Like ``budget`` it never changes a count's value —
        only whether the count finishes — so it is excluded from the
        request's :meth:`signature`.
    ``strategy`` / ``cubes``
        How the problem is decomposed.  ``"conjunction"`` (default) counts
        the CNF as-is — the paper's construction.  ``"per-path"`` declares
        that the requested value is ``Σ_cubes mc(clauses ∧ cube)`` over
        the *disjoint* unit ``cubes`` (tuples of DIMACS literals —
        decision-tree path conditions, see
        :func:`repro.core.tree2cnf.label_cubes`): the engine expands the
        request into one sub-problem per cube and sums.  Summing estimates
        compounds their error, so per-path requests require an exact
        backend; consumers negotiate on ``capabilities.exact`` and fall
        back to the conjunction route.
    """

    clauses: tuple[Clause, ...]
    num_vars: int
    projection: tuple[int, ...] | None = None
    aux_unique: bool = False
    precision: str = "any"
    budget: int | None = None
    deadline: float | None = None
    strategy: str = "conjunction"
    cubes: tuple[tuple[int, ...], ...] | None = None

    def __post_init__(self) -> None:
        if self.precision not in ("any", "exact"):
            raise ValueError(
                f"precision must be 'any' or 'exact', got {self.precision!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")
        if self.strategy not in ("conjunction", "per-path"):
            raise ValueError(
                f"strategy must be 'conjunction' or 'per-path', "
                f"got {self.strategy!r}"
            )
        if self.strategy == "per-path" and self.cubes is None:
            raise ValueError("strategy='per-path' requires cubes")
        if self.strategy == "conjunction" and self.cubes is not None:
            raise ValueError("cubes are only meaningful with strategy='per-path'")

    @classmethod
    def from_cnf(
        cls,
        cnf: CNF,
        *,
        precision: str = "any",
        budget: int | None = None,
        deadline: float | None = None,
        strategy: str = "conjunction",
        cubes: tuple[tuple[int, ...], ...] | None = None,
    ) -> "CountRequest":
        """Freeze a :class:`CNF` into a request."""
        projection = (
            tuple(sorted(cnf.projection)) if cnf.projection is not None else None
        )
        return cls(
            clauses=tuple(cnf.clauses),
            num_vars=cnf.num_vars,
            projection=projection,
            aux_unique=cnf.aux_unique,
            precision=precision,
            budget=budget,
            deadline=deadline,
            strategy=strategy,
            cubes=cubes,
        )

    def cnf(self) -> CNF:
        """Rebuild the CNF this request describes (clauses are normalised).

        For per-path requests this is the *base* CNF (φ without any cube);
        :meth:`expand` materialises the sub-problems.

        Memoized on the request: repeated calls return the *same* CNF
        object, so its signature memo survives across the engine's uses
        (per-path conditioning consults it per cube) — treat the returned
        CNF as frozen.  The memo never travels in pickles (worker
        payloads rebuild it on first use).
        """
        memo = self.__dict__.get("_cnf_memo")
        if memo is not None:
            return memo
        cnf = CNF(
            num_vars=self.num_vars,
            projection=self.projection,
            aux_unique=self.aux_unique,
        )
        cnf.clauses = [tuple(clause) for clause in self.clauses]
        object.__setattr__(self, "_cnf_memo", cnf)
        return cnf

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_cnf_memo", None)
        return state

    def expand(self) -> list[CNF]:
        """The per-path sub-problems: base CNF plus one unit clause per literal.

        Only meaningful for ``strategy="per-path"``.  Each cube's literals
        land as unit clauses, which the counter's first propagation pass
        absorbs wholesale — a sub-problem is φ restricted to one path.
        """
        if self.cubes is None:
            raise ValueError("expand() needs a per-path request with cubes")
        base = self.cnf()
        out: list[CNF] = []
        for cube in self.cubes:
            sub = base.copy()
            for literal in cube:
                sub.add_clause((literal,))
            out.append(sub)
        return out

    def signature(self) -> tuple:
        """The canonical counting identity (see :meth:`CNF.signature`).

        Deliberately excludes ``precision``, ``budget`` and ``deadline``:
        they control *how* the count is produced, never its value, so
        requests differing only in them share memo/store entries.  A per-path request's
        identity *does* include its cubes (they define the counted region);
        the engine never memoizes the summed parent, only the sub-problems.
        """
        if self.strategy == "per-path":
            return ("per-path", self.cnf().signature(), tuple(sorted(self.cubes)))
        return self.cnf().signature()

    def to_dict(self) -> dict:
        """JSON-safe encoding of this request (tuples become lists).

        The counting service's wire format: everything the worker-pool
        pickle protocol carries, but as plain JSON values so requests
        cross machine (and language) boundaries.  :meth:`from_dict`
        inverts it exactly — limits, strategy and cubes included.
        """
        out: dict = {
            "clauses": [list(clause) for clause in self.clauses],
            "num_vars": self.num_vars,
        }
        if self.projection is not None:
            out["projection"] = list(self.projection)
        if self.aux_unique:
            out["aux_unique"] = True
        if self.precision != "any":
            out["precision"] = self.precision
        if self.budget is not None:
            out["budget"] = self.budget
        if self.deadline is not None:
            out["deadline"] = self.deadline
        if self.strategy != "conjunction":
            out["strategy"] = self.strategy
        if self.cubes is not None:
            out["cubes"] = [list(cube) for cube in self.cubes]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "CountRequest":
        """Rebuild a request from :meth:`to_dict` output (validates afresh)."""
        cubes = payload.get("cubes")
        projection = payload.get("projection")
        return cls(
            clauses=tuple(tuple(clause) for clause in payload["clauses"]),
            num_vars=int(payload["num_vars"]),
            projection=tuple(projection) if projection is not None else None,
            aux_unique=bool(payload.get("aux_unique", False)),
            precision=payload.get("precision", "any"),
            budget=payload.get("budget"),
            deadline=payload.get("deadline"),
            strategy=payload.get("strategy", "conjunction"),
            cubes=tuple(tuple(cube) for cube in cubes) if cubes is not None else None,
        )


@dataclass(frozen=True)
class CountResult:
    """A typed model count with provenance.

    ``value`` is the projected model count; ``exact`` whether the backend
    guarantees it bit-exactly; ``backend`` the producing backend's
    registered name; ``source`` where the answer came from (``"memo"``,
    ``"store"``, ``"circuit"``, ``"backend"`` or ``"fallback"``);
    ``source == "circuit"`` marks a count answered by conditioning a
    compiled circuit on a cube (a ``conditions_cubes`` backend) rather
    than by a fresh backend invocation; ``elapsed_seconds`` the
    wall time this problem cost (≈0 for cache hits); ``stats_delta`` the
    :class:`EngineStats` movement the solving call caused (per batch for
    ``solve_many``).  ``int(result)`` returns the bare count.

    A result produced by the engine's degradation ladder (the primary
    backend timed out or blew its budget and ``EngineConfig(fallback=…)``
    re-routed the problem) carries explicit provenance so an estimate can
    never masquerade as exact: ``source == "fallback"``,
    ``fallback_from`` names the backend that failed, ``exact`` reflects
    the *fallback* backend's guarantee, and ``epsilon``/``delta`` carry
    its (ε, δ) tolerance when it is approximate.

    A result produced through a routing backend (``capabilities.routes``,
    e.g. ``composite``) additionally carries ``routed_to``: the name of
    the concrete backend the router dispatched the problem to.
    ``backend`` stays the routing backend's own name (the session-level
    provenance), ``exact``/``epsilon``/``delta`` reflect the *target*
    backend's guarantee.
    """

    value: int
    exact: bool
    backend: str
    source: str
    elapsed_seconds: float = 0.0
    fallback_from: str | None = None
    routed_to: str | None = None
    epsilon: float | None = None
    delta: float | None = None
    stats_delta: "EngineStats | None" = field(default=None, compare=False)

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    @property
    def cached(self) -> bool:
        """True when no backend work was performed for this problem.

        Conditioning a compiled circuit (``source == "circuit"``) counts
        as work: the pass is linear in the circuit, not a table lookup.
        """
        return self.source not in ("backend", "fallback", "circuit")

    @property
    def exactness(self) -> str:
        """Human-readable exactness: ``"exact"`` or ``"approximate(ε,δ)"``."""
        if self.exact:
            return "exact"
        if self.epsilon is not None and self.delta is not None:
            return f"approximate(ε={self.epsilon:g}, δ={self.delta:g})"
        return "approximate"

    def to_dict(self) -> dict:
        """JSON-safe encoding with full provenance.

        ``value`` is rendered as a decimal string — projected counts
        overflow IEEE doubles long before they overflow Python ints, and
        a JSON number would silently round through a double on the far
        side of the wire.  ``stats_delta`` flattens via
        :meth:`EngineStats.as_dict`.
        """
        out: dict = {
            "value": str(self.value),
            "exact": self.exact,
            "backend": self.backend,
            "source": self.source,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.fallback_from is not None:
            out["fallback_from"] = self.fallback_from
        if self.routed_to is not None:
            out["routed_to"] = self.routed_to
        if self.epsilon is not None:
            out["epsilon"] = self.epsilon
        if self.delta is not None:
            out["delta"] = self.delta
        if self.stats_delta is not None:
            out["stats_delta"] = self.stats_delta.as_dict()
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "CountResult":
        """Rebuild a result from :meth:`to_dict` output."""
        delta = payload.get("stats_delta")
        return cls(
            value=int(payload["value"]),
            exact=bool(payload["exact"]),
            backend=payload["backend"],
            source=payload["source"],
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            fallback_from=payload.get("fallback_from"),
            routed_to=payload.get("routed_to"),
            epsilon=payload.get("epsilon"),
            delta=payload.get("delta"),
            stats_delta=EngineStats(**delta) if delta is not None else None,
        )


class CountFailure(Exception):
    """A counting problem that could not be answered, as a typed outcome.

    Raised (or returned, with ``solve_many(..., on_failure="return")``)
    by the engine when a problem exhausts its budget or deadline with no
    configured fallback, when a worker died and the retry budget ran out,
    or when the backend itself raised.  Carries enough provenance for the
    caller to decide what to do next:

    ``kind``
        ``"timeout"`` (wall-clock deadline), ``"budget"`` (node budget),
        ``"worker-lost"`` (worker died, retries exhausted) or ``"error"``
        (any other backend exception).
    ``backend``
        The backend that was counting when the problem failed.
    ``cause``
        The original exception when one exists (``CounterTimeout``,
        ``CounterBudgetExceeded``, …); ``None`` for watchdog kills and
        lost workers, where no in-process exception ever fired.
    ``elapsed_seconds`` / ``retries``
        Wall time burned on the problem and how many times it was
        re-dispatched after a worker loss.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        *,
        backend: str = "?",
        cause: BaseException | None = None,
        elapsed_seconds: float = 0.0,
        retries: int = 0,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.backend = backend
        self.cause = cause
        self.elapsed_seconds = elapsed_seconds
        self.retries = retries

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        *,
        backend: str = "?",
        elapsed_seconds: float = 0.0,
        retries: int = 0,
    ) -> "CountFailure":
        """Classify a backend exception into its failure kind."""
        from repro.counting.exact import CounterBudgetExceeded, CounterTimeout

        if isinstance(exc, CounterTimeout):
            kind = "timeout"
        elif isinstance(exc, CounterBudgetExceeded):
            kind = "budget"
        else:
            kind = "error"
        return cls(
            kind,
            f"{kind} on backend {backend!r}: {exc}",
            backend=backend,
            cause=exc,
            elapsed_seconds=elapsed_seconds,
            retries=retries,
        )

    def to_dict(self) -> dict:
        """JSON-safe encoding of this failure (``cause`` flattened to a string).

        The worker pool's pickle wire format cannot cross machines (or a
        JSON socket), so the service serializes failures through this:
        kind, backend, elapsed and retries survive verbatim, and the
        original exception is flattened to ``"TypeName: message"`` —
        enough for triage without shipping arbitrary picklable state.
        :meth:`from_dict` rehydrates the cause as the matching typed abort
        (:class:`~repro.counting.exact.CounterTimeout` /
        :class:`~repro.counting.exact.CounterBudgetExceeded`) so client
        code catching the taxonomy behaves identically on either side of
        the wire.
        """
        return {
            "kind": self.kind,
            "message": str(self.args[0]) if self.args else "",
            "backend": self.backend,
            "cause": (
                f"{type(self.cause).__name__}: {self.cause}"
                if self.cause is not None
                else None
            ),
            "elapsed_seconds": self.elapsed_seconds,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CountFailure":
        """Rebuild a failure from :meth:`to_dict` output.

        The flattened ``cause`` string is rehydrated as the typed abort
        matching ``kind`` (timeout → ``CounterTimeout``, budget →
        ``CounterBudgetExceeded``, error → ``RuntimeError``); kinds that
        never had an in-process exception (watchdog kills, lost workers)
        stay ``cause=None``.
        """
        from repro.counting.exact import CounterBudgetExceeded, CounterTimeout

        kind = payload["kind"]
        cause_text = payload.get("cause")
        cause: BaseException | None = None
        if cause_text is not None:
            if kind == "timeout":
                cause = CounterTimeout(cause_text)
            elif kind == "budget":
                cause = CounterBudgetExceeded(cause_text)
            else:
                cause = RuntimeError(cause_text)
        return cls(
            kind,
            payload.get("message", ""),
            backend=payload.get("backend", "?"),
            cause=cause,
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            retries=int(payload.get("retries", 0)),
        )

    def __repr__(self) -> str:
        return (
            f"CountFailure(kind={self.kind!r}, backend={self.backend!r}, "
            f"retries={self.retries}, {self.args[0]!r})"
        )


@dataclass
class EngineStats:
    """Cache telemetry: calls vs hits per memo table.

    ``count_calls`` splits exactly into ``count_hits`` (in-memory memo),
    ``store_hits`` (disk store), ``circuit_hits`` (answered by
    conditioning a compiled circuit on a cube) and ``backend_calls``
    (actual counting work, serial or parallel) — a warm re-run shows
    ``backend_calls == 0``.

    The circuit tier has its own counters: ``circuit_compilations``
    counts base formulas compiled to a circuit this session (compiling is
    *not* a ``backend_call`` — it produces a reusable artifact, not a
    count), and ``circuit_store_hits`` counts circuits warmed from the
    disk-persistent :class:`~repro.counting.store.CircuitStore` instead
    of recompiled — a warm restart sweeping known bases shows
    ``circuit_store_hits > 0`` and ``circuit_compilations == 0``.
    ``translate_store_hits``/``region_store_hits`` count compilations
    warmed from the disk-persistent memo store rather than recompiled.
    ``component_spill_hits`` counts *sub-problem* components promoted from
    the disk spill tier (:class:`~repro.counting.store.ComponentStore`)
    back into the shared component cache — a warm-restarted engine doing
    genuinely new counts over a known φ shows ``backend_calls > 0`` but
    large ``component_spill_hits``.

    The failure-path counters observe the robustness layer:
    ``timeouts`` counts problems aborted by a wall-clock deadline
    (cooperative ``CounterTimeout`` or the pool watchdog);
    ``worker_respawns`` dead workers replaced by the self-healing pool;
    ``retries`` problems re-dispatched after a worker loss;
    ``fallbacks`` problems the degradation ladder re-routed to the
    configured fallback backend; ``serial_fallbacks`` batches counted
    serially because the backend did not pickle;
    ``store_degradations`` disk-tier degradation events (corrupt database
    rotated aside, unreadable row read as a miss, swallowed write
    failure) across all four disk tiers.

    The routing counters observe a ``routes`` backend (``composite``):
    ``route_exact``/``route_compiled``/``route_approx`` count cold
    problems dispatched to each target backend, so a session's routing
    mix is auditable after the fact (cache hits never route — only
    ``backend_calls`` show up here, and
    ``route_exact + route_compiled + route_approx == backend_calls``
    for a pure-routing session).

    The intra-problem fan-out counters observe a ``decomposes`` backend
    under ``EngineConfig(fanout_min_vars=…)``: ``component_fanouts``
    counts cold problems whose component split was shipped through the
    worker pool (the parent still reports as one ``backend_call`` — the
    fan-out is *how* the call was served, sub-counts multiply back into
    one value), and ``fanout_subproblems`` the total sub-components those
    fan-outs produced.
    """

    count_calls: int = 0
    count_hits: int = 0
    store_hits: int = 0
    circuit_hits: int = 0
    backend_calls: int = 0
    circuit_compilations: int = 0
    circuit_store_hits: int = 0
    component_spill_hits: int = 0
    translate_calls: int = 0
    translate_hits: int = 0
    translate_store_hits: int = 0
    region_calls: int = 0
    region_hits: int = 0
    region_store_hits: int = 0
    timeouts: int = 0
    worker_respawns: int = 0
    retries: int = 0
    fallbacks: int = 0
    serial_fallbacks: int = 0
    store_degradations: int = 0
    route_exact: int = 0
    route_compiled: int = 0
    route_approx: int = 0
    component_fanouts: int = 0
    fanout_subproblems: int = 0

    @property
    def count_misses(self) -> int:
        return self.count_calls - self.count_hits

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def copy(self) -> "EngineStats":
        return EngineStats(**self.as_dict())

    def delta_since(self, before: "EngineStats") -> "EngineStats":
        """Field-wise ``self - before`` (the movement a call caused)."""
        return EngineStats(
            **{
                name: value - getattr(before, name)
                for name, value in self.as_dict().items()
            }
        )


# -- registry -------------------------------------------------------------------------


@dataclass(frozen=True)
class _BackendEntry:
    factory: Callable[..., object]
    aliases: tuple[str, ...] = ()


#: canonical name -> entry; aliases resolve through :func:`_resolve`.
_REGISTRY: dict[str, _BackendEntry] = {}


def register_backend(
    name: str,
    factory: Callable[..., object],
    *,
    aliases: Iterable[str] = (),
) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory(**opts)`` must return an object satisfying
    :class:`CounterBackend`.  Aliases resolve to the canonical name but do
    not show up in :func:`available_backends`.
    """
    _REGISTRY[name] = _BackendEntry(factory=factory, aliases=tuple(aliases))
    _CAPABILITY_CACHE.pop(name, None)


def _resolve(name: str) -> str:
    if name in _REGISTRY:
        return name
    for canonical, entry in _REGISTRY.items():
        if name in entry.aliases:
            return canonical
    known = ", ".join(sorted(_REGISTRY))
    raise ValueError(f"unknown counter {name!r} (use one of: {known})")


def make_backend(name: str, **opts):
    """Construct a registered backend by (canonical or alias) name."""
    return _REGISTRY[_resolve(name)].factory(**opts)


def available_backends() -> list[str]:
    """Canonical registered backend names, sorted."""
    return sorted(_REGISTRY)


def backend_aliases(name: str) -> tuple[str, ...]:
    """The aliases a canonical name is also reachable under."""
    return _REGISTRY[_resolve(name)].aliases


#: canonical name -> resolved Capabilities (declarations are class-level
#: constants, so one default construction per backend suffices forever).
_CAPABILITY_CACHE: dict[str, Capabilities] = {}


def backend_capabilities(name: str) -> Capabilities:
    """Capabilities of a registered backend without keeping an instance.

    Factory callables may carry a ``capabilities`` attribute (classes
    registered directly do); lazy function factories fall back to one
    throwaway default construction, cached per canonical name.
    """
    canonical = _resolve(name)
    cached = _CAPABILITY_CACHE.get(canonical)
    if cached is not None:
        return cached
    entry = _REGISTRY[canonical]
    declared = getattr(entry.factory, "capabilities", None)
    caps = (
        declared
        if isinstance(declared, Capabilities)
        else capabilities_of(entry.factory())
    )
    _CAPABILITY_CACHE[canonical] = caps
    return caps


# The built-in backends.  Factories import lazily so this module stays
# importable from the backend modules themselves (they only need
# :class:`Capabilities`).
def _exact_factory(**opts):
    from repro.counting.exact import ExactCounter

    return ExactCounter(**opts)


def _legacy_factory(**opts):
    from repro.counting.legacy import LegacyExactCounter

    return LegacyExactCounter(**opts)


def _brute_factory(**opts):
    from repro.counting.vector import FormulaBruteCounter

    return FormulaBruteCounter(**opts)


def _bdd_factory(**opts):
    from repro.counting.bdd import BDDCounter

    return BDDCounter(**opts)


def _approxmc_factory(**opts):
    from repro.counting.approxmc import ApproxMCCounter

    return ApproxMCCounter(**opts)


def _compiled_factory(**opts):
    from repro.counting.circuit import CompiledCounter

    return CompiledCounter(**opts)


def _composite_factory(**opts):
    from repro.counting.router import CompositeCounter

    return CompositeCounter(**opts)


register_backend("exact", _exact_factory)
register_backend("legacy", _legacy_factory, aliases=("exact-legacy",))
# "brute" is the numpy whole-space sweep over formulas and aux-free CNFs
# (repro.counting.vector); "vector" is its descriptive alias.
register_backend("brute", _brute_factory, aliases=("vector",))
register_backend("bdd", _bdd_factory)
register_backend("approxmc", _approxmc_factory, aliases=("approx",))
# "compiled" keeps the circuit: compile once, answer per-path queries by
# unit-cube conditioning (conditions_cubes=True); "circuit" is its alias.
register_backend("compiled", _compiled_factory, aliases=("circuit",))
# "composite" routes each problem to the best-suited backend above by
# inspectable rules (routes=True); "router" is its alias.
register_backend("composite", _composite_factory, aliases=("router",))


# -- timing helper --------------------------------------------------------------------


def timed(fn: Callable[[], int]) -> tuple[int, float]:
    """Run ``fn`` and return ``(value, elapsed_seconds)``."""
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started
