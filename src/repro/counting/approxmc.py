"""Approximate model counting (ApproxMC-style backend).

Implements the hashing-based (ε, δ) counting algorithm of
Chakraborty–Meel–Vardi as engineered in ApproxMC2/4 (the tool the paper
calls):

1. pick ``m`` random XOR constraints over the projection variables — each
   constraint includes every projection variable independently with
   probability ½ plus a random parity bit — partitioning the solution space
   into ~``2^m`` cells;
2. enumerate the cell containing up to ``thresh`` solutions (projected
   AllSAT with a cutoff);
3. find the ``m`` at which the cell size falls below ``thresh`` (galloping
   search seeded by the previous round's ``m``);
4. report ``cell_size × 2^m``, taking the median over ``t`` rounds.

The (ε, δ) guarantee is inherited from the published analysis:
``thresh = 1 + 9.84·(1 + ε/(1+ε))·(1 + 1/ε)²`` and a number of rounds that
grows with ``log(1/δ)``.  XOR constraints are CNF-encoded with a chain of
biconditionally defined parity auxiliaries, preserving the unique-extension
invariant, and cells are enumerated projected on the primary variables so the
auxiliaries never influence counts.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from time import monotonic

from repro.counting.api import Capabilities
from repro.counting.exact import CounterTimeout
from repro.logic.cnf import CNF
from repro.sat.enumerate import count_models


@dataclass(frozen=True)
class XorConstraint:
    """A parity constraint ``xor(variables) = rhs``."""

    variables: tuple[int, ...]
    rhs: bool

    def holds(self, assignment: dict[int, bool]) -> bool:
        parity = False
        for v in self.variables:
            parity ^= assignment[v]
        return parity == self.rhs


def random_xor(projection: Sequence[int], rng: random.Random) -> XorConstraint:
    """Draw one hash constraint: each variable with probability ½, random rhs."""
    chosen = tuple(v for v in projection if rng.random() < 0.5)
    return XorConstraint(chosen, rng.random() < 0.5)


def encode_xor(cnf: CNF, constraint: XorConstraint) -> None:
    """Append the CNF encoding of ``constraint`` to ``cnf`` in place.

    Uses a linear chain: ``c₁ = x₁``, ``cᵢ = cᵢ₋₁ ⊕ xᵢ``, asserting the final
    chain variable equal to the parity bit.  Each ⊕ definition is four
    clauses; auxiliaries are biconditional so unique extension is preserved.
    """
    variables = constraint.variables
    if not variables:
        if constraint.rhs:
            # xor() = 0, so requiring rhs=1 is unsatisfiable.
            fresh = cnf.new_var()
            cnf.add_clause((fresh,))
            cnf.add_clause((-fresh,))
        return
    prev = variables[0]
    for v in variables[1:]:
        parity = cnf.new_var()
        # parity ↔ prev ⊕ v
        cnf.add_clause((-parity, prev, v))
        cnf.add_clause((-parity, -prev, -v))
        cnf.add_clause((parity, prev, -v))
        cnf.add_clause((parity, -prev, v))
        prev = parity
    cnf.add_clause((prev,) if constraint.rhs else (-prev,))


def compute_threshold(epsilon: float) -> int:
    """Cell-size pivot from the ApproxMC analysis."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return int(1 + 9.84 * (1 + epsilon / (1 + epsilon)) * (1 + 1 / epsilon) ** 2)


def compute_rounds(delta: float) -> int:
    """Number of median rounds for confidence 1 − δ (odd, ≥ 1).

    Uses the standard Chernoff-style bound ``t = ⌈17·log₂(3/δ)⌉`` from the
    ApproxMC papers, capped for practicality on a pure-Python stack; callers
    wanting the full published guarantee can pass ``rounds`` explicitly.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    t = math.ceil(17 * math.log2(3 / delta))
    t = min(t, 21)
    return t if t % 2 == 1 else t + 1


class ApproxMCCounter:
    """(ε, δ) approximate projected model counter."""

    name = "approxmc"
    #: (ε, δ) estimates: not portable across backends, not persisted, and
    #: not fanned out by the engine (worker RNG clones would diverge from
    #: the serial estimate stream).
    exact = False
    capabilities = Capabilities(
        exact=False,
        counts_formulas=False,
        supports_projection=True,
        parallel_safe=False,
        owns_component_cache=False,
    )

    def __init__(
        self,
        epsilon: float = 0.8,
        delta: float = 0.2,
        seed: int | None = 0,
        rounds: int | None = None,
        deadline: float | None = None,
    ) -> None:
        self.epsilon = epsilon
        self.delta = delta
        self.threshold = compute_threshold(epsilon)
        self.rounds = rounds if rounds is not None else compute_rounds(delta)
        self.deadline = deadline
        self._deadline_at: float | None = None
        self._rng = random.Random(seed)

    def _check_deadline(self) -> None:
        # Probed between cell enumerations (the unit of work here), so the
        # abort granularity is one bounded AllSAT call, not one round.
        if self._deadline_at is not None and monotonic() > self._deadline_at:
            raise CounterTimeout(f"exceeded {self.deadline}s wall-clock deadline")

    def count(self, cnf: CNF) -> int:
        """Approximate number of projected models."""
        self._deadline_at = (
            monotonic() + self.deadline if self.deadline is not None else None
        )
        projection = sorted(cnf.projected_vars())
        # Quick exit: fewer than `threshold` solutions are counted exactly.
        exact_small = count_models(cnf, projection=projection, limit=self.threshold)
        if exact_small < self.threshold:
            return exact_small

        estimates: list[int] = []
        prev_m = 0
        for _ in range(self.rounds):
            estimate, prev_m = self._one_round(cnf, projection, prev_m)
            if estimate is not None:
                estimates.append(estimate)
        if not estimates:
            raise RuntimeError("all ApproxMC rounds failed to converge")
        estimates.sort()
        return estimates[len(estimates) // 2]

    # -- internals -----------------------------------------------------------------

    def _cell_size(
        self, cnf: CNF, projection: Sequence[int], xors: Sequence[XorConstraint], m: int
    ) -> int:
        """Solutions in the cell carved by the first ``m`` hashes, capped."""
        self._check_deadline()
        hashed = cnf.copy()
        for constraint in xors[:m]:
            encode_xor(hashed, constraint)
        return count_models(hashed, projection=projection, limit=self.threshold)

    def _one_round(
        self, cnf: CNF, projection: Sequence[int], prev_m: int
    ) -> tuple[int | None, int]:
        """One ApproxMCCore invocation: returns (estimate or None, final m)."""
        max_m = len(projection)
        xors = [random_xor(projection, self._rng) for _ in range(max_m)]

        def small_enough(m: int) -> tuple[bool, int]:
            size = self._cell_size(cnf, projection, xors, m)
            return size < self.threshold, size

        # Galloping search for the frontier m*: cell(m*) < thresh ≤ cell(m*-1).
        m = min(max(prev_m, 1), max_m)
        ok, size = small_enough(m)
        if ok:
            # Walk down until the cell saturates again.  When the walk
            # reaches m = 1, ``size`` already holds cell(1) — either from
            # the initial probe (m started at 1) or from the last
            # successful ``small_enough(m - 1)`` — so no re-enumeration.
            while m > 1:
                ok_below, size_below = small_enough(m - 1)
                if ok_below:
                    m -= 1
                    size = size_below
                else:
                    break
            return size * (1 << m), m
        # Walk up until the cell becomes small.
        while m < max_m:
            m += 1
            ok, size = small_enough(m)
            if ok:
                return size * (1 << m), m
        return None, prev_m


def approx_count(
    cnf: CNF,
    epsilon: float = 0.8,
    delta: float = 0.2,
    seed: int | None = 0,
) -> int:
    """One-shot approximate projected model count."""
    return ApproxMCCounter(epsilon=epsilon, delta=delta, seed=seed).count(cnf)
