"""The tuple-based exact counter the packed rewrite replaced.

This is the original DPLL-style #SAT procedure of
:mod:`repro.counting.exact` — clauses as tuples of DIMACS literals,
component caching on ``frozenset`` keys — kept as a differential baseline:
the packed counter must produce bit-identical counts on every instance
(:mod:`tests.test_counting_packed` enforces this).  Two defects of the
original are fixed here because they were bugs, not behaviour:

* the redundant ``total = multiplier`` double-assignment in ``_sharp``
  (a dead store) is gone;
* unit propagation batches all units found in a pass into a single clause
  rebuild instead of calling ``_assign`` over the full clause list once per
  unit (quadratic in the number of units).

Do not use this backend in new code — it exists for tests and for the
counter-ablation benchmark that records how much the packed rewrite buys.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections.abc import Iterable, Sequence

from repro.counting.api import Capabilities
from repro.logic.cnf import CNF, Clause


class LegacyExactCounter:
    """Exact (projected) model counter over tuple clauses.

    Same contract as :class:`repro.counting.exact.ExactCounter`; kept only
    as the differential/ablation baseline.
    """

    name = "exact-legacy"
    exact = True
    #: Exact and clone-deterministic like the packed counter, but its
    #: per-call scratch cache is private — the engine must not install a
    #: shared component cache on it.
    capabilities = Capabilities(
        exact=True,
        counts_formulas=False,
        supports_projection=True,
        parallel_safe=True,
        owns_component_cache=False,
    )

    def __init__(self, max_nodes: int = 5_000_000) -> None:
        self.max_nodes = max_nodes
        self._nodes = 0
        self._cache: dict[frozenset[Clause], int] = {}

    def count(self, cnf: CNF) -> int:
        """Number of models of ``cnf`` projected onto ``cnf.projected_vars()``."""
        self._nodes = 0
        self._cache = {}
        if any(len(clause) == 0 for clause in cnf.clauses):
            return 0
        projection = cnf.projected_vars()
        if cnf.counts_without_projection():
            clause_vars = cnf.variables()
            free = len(projection - clause_vars)
            clauses = [tuple(c) for c in cnf.clauses]
            return (1 << free) * self._sharp(clauses)
        # The unconditionally correct fallback lives with the packed counter.
        from repro.counting.exact import ExactCounter

        return ExactCounter(max_nodes=self.max_nodes).count(cnf)

    def _sharp(self, clauses: list[Clause]) -> int:
        """#models over exactly the variables occurring in ``clauses``."""
        if not clauses:
            return 1
        key = frozenset(clauses)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise _budget_error(self.max_nodes)

        simplified = _propagate_units(clauses)
        if simplified is None:
            self._cache[key] = 0
            return 0
        residual, eliminated = simplified
        # Variables fixed by propagation contribute a single assignment each;
        # variables that *disappeared* without being fixed are free.
        vanished = _vars_of(clauses) - _vars_of(residual) - eliminated
        total = 1 << len(vanished)
        if residual:
            product = 1
            for component in _components(residual):
                product *= self._count_component(component)
                if product == 0:
                    break
            total *= product
        self._cache[key] = total
        return total

    def _count_component(self, clauses: list[Clause]) -> int:
        key = frozenset(clauses)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = _most_frequent_var(clauses)
        total = 0
        for polarity in (var, -var):
            branch = _assign(clauses, polarity)
            if branch is None:
                continue
            residual_vars = _vars_of(clauses) - {var}
            branch_vars = _vars_of(branch)
            free = len(residual_vars - branch_vars)
            total += (1 << free) * self._sharp(branch)
        self._cache[key] = total
        return total


def _budget_error(max_nodes: int):
    from repro.counting.exact import CounterBudgetExceeded

    return CounterBudgetExceeded(f"exceeded {max_nodes} nodes")


# -- clause-level helpers --------------------------------------------------------------


def _vars_of(clauses: Iterable[Clause]) -> set[int]:
    return {abs(l) for clause in clauses for l in clause}


def _assign(clauses: Sequence[Clause], literal: int) -> list[Clause] | None:
    """Residual clauses after asserting ``literal``; None on an empty clause."""
    out: list[Clause] = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            shrunk = tuple(l for l in clause if l != -literal)
            if not shrunk:
                return None
            out.append(shrunk)
        else:
            out.append(clause)
    return out


def _propagate_units(
    clauses: Sequence[Clause],
) -> tuple[list[Clause], set[int]] | None:
    """Exhaustive unit propagation, batching all units per pass.

    Returns (residual clauses, set of variables fixed by propagation), or
    ``None`` on conflict.
    """
    work = list(clauses)
    fixed: set[int] = set()
    while True:
        units: set[int] = set()
        for clause in work:
            if len(clause) == 1:
                lit = clause[0]
                if -lit in units:
                    return None  # both polarities forced in the same pass
                units.add(lit)
        if not units:
            return work, fixed
        fixed.update(abs(lit) for lit in units)
        rebuilt: list[Clause] = []
        for clause in work:
            if any(lit in units for lit in clause):
                continue  # satisfied by some asserted unit
            shrunk = tuple(lit for lit in clause if -lit not in units)
            if not shrunk:
                return None
            rebuilt.append(shrunk)
        work = rebuilt


def _components(clauses: Sequence[Clause]) -> list[list[Clause]]:
    """Partition clauses into connected components by shared variables."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for clause in clauses:
        variables = [abs(l) for l in clause]
        for v in variables:
            parent.setdefault(v, v)
        for v in variables[1:]:
            union(variables[0], v)

    groups: dict[int, list[Clause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, []).append(clause)
    return list(groups.values())


def _most_frequent_var(clauses: Sequence[Clause]) -> int:
    counts: _Counter[int] = _Counter()
    for clause in clauses:
        for l in clause:
            counts[abs(l)] += 1
    return counts.most_common(1)[0][0]
