"""Vectorised whole-space formula counting.

Evaluates a propositional :class:`~repro.logic.formula.Formula` over *every*
assignment of its input variables using numpy blocks — no CNF conversion, no
search.  For the reduced scopes the default experiments run (16–25 primary
variables) this is an exact counting backend that is immune to the
structure-sensitivity of DPLL-style counters, and it doubles as an
independent oracle for differential tests of the exact counter.

The per-block evaluator memoises on structural formula equality, so shared
subformulas (heavily produced by quantifier grounding) are evaluated once.
"""

from __future__ import annotations

import numpy as np

from repro.counting.api import Capabilities
from repro.counting.brute import MAX_BRUTE_VARS, brute_force_count, iter_assignment_blocks
from repro.logic.cnf import CNF
from repro.logic.formula import (
    And,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    _Constant,
)


def evaluate_formula_block(formula: Formula, block: np.ndarray) -> np.ndarray:
    """Evaluate ``formula`` on every row of a (rows, num_vars) bool block."""
    rows = block.shape[0]
    cache: dict[Formula, np.ndarray] = {}

    def go(node: Formula) -> np.ndarray:
        hit = cache.get(node)
        if hit is not None:
            return hit
        if isinstance(node, _Constant):
            result = np.full(rows, node.value, dtype=bool)
        elif isinstance(node, Var):
            result = block[:, node.id - 1]
        elif isinstance(node, Not):
            result = ~go(node.operand)
        elif isinstance(node, And):
            result = np.ones(rows, dtype=bool)
            for child in node.operands:
                result = result & go(child)
        elif isinstance(node, Or):
            result = np.zeros(rows, dtype=bool)
            for child in node.operands:
                result = result | go(child)
        elif isinstance(node, Implies):
            result = ~go(node.antecedent) | go(node.consequent)
        elif isinstance(node, Iff):
            result = go(node.left) == go(node.right)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown formula node {type(node).__name__}")
        cache[node] = result
        return result

    return go(formula)


def count_formula(formula: Formula, num_vars: int) -> int:
    """Exact number of satisfying assignments over variables 1..num_vars."""
    variables = formula.variables()
    if variables and max(variables) > num_vars:
        raise ValueError(
            f"formula mentions variable {max(variables)} > num_vars={num_vars}"
        )
    if num_vars > MAX_BRUTE_VARS:
        raise ValueError(
            f"{num_vars} variables exceeds the vectorised limit {MAX_BRUTE_VARS}"
        )
    total = 0
    for block in iter_assignment_blocks(num_vars):
        total += int(evaluate_formula_block(formula, block).sum())
    return total


class FormulaBruteCounter:
    """Counting backend over formulas (and aux-free CNFs).

    Satisfies the same ``count(cnf)`` protocol as the other backends for
    CNFs whose clauses stay inside the projection, and adds
    ``count_formula`` for direct whole-space formula counting — the fast
    path :class:`repro.core.accmc.AccMC` uses at reduced scopes.
    """

    name = "brute"
    exact = True
    #: Exact full-space sweep; counts pre-Tseitin formulas directly (the
    #: AccMC fast path) but rejects CNFs with auxiliary variables.
    capabilities = Capabilities(
        exact=True,
        counts_formulas=True,
        supports_projection=False,
        parallel_safe=True,
        owns_component_cache=False,
    )

    def count(self, cnf: CNF) -> int:
        return brute_force_count(cnf)

    def count_formula(self, formula: Formula, num_vars: int) -> int:
        return count_formula(formula, num_vars)
