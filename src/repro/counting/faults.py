"""Fault-injection harness for the counting stack's chaos tests.

The robustness layer — corrupt-store rotation, disk-full degradation,
worker-crash recovery, serial fallback on unpicklable backends — exists to
survive events that are hard to produce on demand.  This module makes them
producible: named *injection points* scattered through the stores, the
worker pool and the engine consult a tiny activation registry and misbehave
on purpose when their point is armed.

Activation is either programmatic (:func:`inject` / the :func:`injected`
context manager, what the chaos suite uses) or environmental: the
``REPRO_FAULTS`` variable holds a comma-separated spec like
``"store-read-corrupt,worker-kill:2"`` and is parsed at import.  Armed
points are mirrored back into ``os.environ`` so worker processes observe
them regardless of start method — ``fork`` children inherit the registry
itself, ``spawn`` children re-parse the environment on import.

Injection points currently wired in:

``store-read-corrupt``
    Store reads (:class:`~repro.counting.store.CountStore`,
    :class:`~repro.counting.store.BlobStore`,
    :class:`~repro.counting.store.ComponentStore`) raise
    ``sqlite3.DatabaseError`` — exercising the corrupt-row miss path and
    the ``degradations`` counters.
``store-disk-full``
    Store writes/flushes raise ``sqlite3.OperationalError`` ("disk full"),
    exercising the swallow-and-degrade write path.
``worker-kill`` (value: N)
    A pool worker SIGKILLs itself when its per-process task counter
    reaches N — the OOM-killer stand-in driving the self-healing pool
    tests.  With ``worker-kill-marker`` set to a path, the kill fires at
    most once across the pool (the first worker to atomically create the
    marker file dies; respawned replacements survive), so a batch can
    complete within the retry budget.  Without a marker every worker dies
    at its Nth task, which is how the retry-exhaustion path is tested.
``backend-unpicklable``
    The engine's (and :func:`~repro.counting.parallel.count_parallel`'s)
    pickle probe fails as if the backend did not pickle, forcing the
    serial-fallback degradation.

Network points, consulted by the counting service
(:mod:`repro.counting.service`) and its client:

``service-accept-drop`` (value: N)
    The server closes the first N accepted connections before reading a
    byte — the transient listen-queue/SYN-flood stand-in.  Clients see a
    reset and must retry with backoff.
``service-reset-mid-response``
    The server writes roughly half of each response line and then aborts
    the connection with an RST (``SO_LINGER`` 0), exercising the client's
    partial-read detection and idempotent retry.
``service-slow-loris``
    :class:`~repro.counting.service.client.ServiceClient` dribbles its
    request bytes one at a time with delays, wedging the connection the
    way a slow-loris client would — the server's read deadline must drop
    it without affecting other clients.
``service-oversize-payload``
    The client pads its request envelope past the server's
    ``max_line_bytes``, exercising the typed ``oversized`` rejection
    (never an unbounded buffer).

The registry check is one dict lookup; with nothing armed (the default,
always, outside chaos tests) the hooks cost nothing measurable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["ENV_VAR", "active", "clear", "inject", "injected"]

#: Environment variable carrying the fault spec across process boundaries.
ENV_VAR = "REPRO_FAULTS"

#: Armed injection points: name -> value (True for plain flags).
_ACTIVE: dict[str, object] = {}


def _parse(spec: str) -> dict[str, object]:
    """Parse ``"point,point:arg,..."`` into the registry mapping."""
    out: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, arg = part.partition(":")
        if not arg:
            out[name] = True
            continue
        try:
            out[name] = int(arg)
        except ValueError:
            out[name] = arg
    return out


def _render() -> str:
    """Inverse of :func:`_parse` for the environment mirror."""
    parts = []
    for name, value in sorted(_ACTIVE.items()):
        parts.append(name if value is True else f"{name}:{value}")
    return ",".join(parts)


def _sync_env() -> None:
    if _ACTIVE:
        os.environ[ENV_VAR] = _render()
    else:
        os.environ.pop(ENV_VAR, None)


def active(point: str):
    """The armed value for ``point`` (True for plain flags), or None."""
    if not _ACTIVE:  # the hot-path guard: one truthiness check when clean
        return None
    return _ACTIVE.get(point)


def inject(point: str, value: object = True) -> None:
    """Arm an injection point (mirrored into the environment)."""
    _ACTIVE[point] = value
    _sync_env()


def clear(point: str | None = None) -> None:
    """Disarm one point, or every point when ``point`` is None."""
    if point is None:
        _ACTIVE.clear()
    else:
        _ACTIVE.pop(point, None)
    _sync_env()


@contextmanager
def injected(point: str, value: object = True):
    """Arm ``point`` for the duration of a ``with`` block."""
    inject(point, value)
    try:
        yield
    finally:
        clear(point)


# Spawn-started workers (and subprocesses generally) arm themselves from
# the environment their parent mirrored the registry into.
_env_spec = os.environ.get(ENV_VAR)
if _env_spec:
    _ACTIVE.update(_parse(_env_spec))
