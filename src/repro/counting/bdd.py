"""Reduced OBDD compilation counter (ablation backend).

The paper's related-work section contrasts MCML's direct CNF translation with
*compilation* approaches (ODDs/OBDDs).  This module implements that
alternative so the trade-off can be measured: clauses are compiled bottom-up
into a reduced ordered BDD (with an apply cache), and models are counted by a
single DP pass over the DAG.

The construction kernel lives in :mod:`repro.counting.circuit`
(:class:`~repro.counting.circuit.CircuitBuilder`), shared with the
``compiled`` backend; this module keeps the historical one-shot
compile-and-count surface.  Compilation cost can blow up on formulas where
the fixed variable order is bad — exactly the caveat the paper raises — so
the counter takes a node budget and raises
:class:`repro.counting.exact.CounterBudgetExceeded` when it is exceeded.
"""

from __future__ import annotations

from repro.counting.api import Capabilities
from repro.counting.circuit import ONE, ZERO, CircuitBuilder, compile_cnf
from repro.logic.cnf import CNF

# Historical spellings, kept for callers of the pre-extraction module.
_ZERO = ZERO
_ONE = ONE
_BDD = CircuitBuilder


class BDDCounter:
    """Exact projected counter by OBDD compilation.

    Restricted to CNFs without auxiliary variables (the MCML decision-tree
    formulas): compiling Tseitin auxiliaries into a BDD and then projecting
    would require existential quantification, which defeats the purpose of
    this simple ablation backend.  Unlike ``compiled``, the circuit is
    discarded after the count — this backend exists to measure the
    compile-per-query trade-off, so it deliberately does not declare
    ``conditions_cubes``.
    """

    name = "bdd"
    exact = True
    #: Exact by compilation, but restricted to auxiliary-free CNFs (no
    #: existential projection over a BDD here).
    capabilities = Capabilities(
        exact=True,
        counts_formulas=False,
        supports_projection=False,
        parallel_safe=True,
        owns_component_cache=False,
    )

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        self.max_nodes = max_nodes

    def count(self, cnf: CNF) -> int:
        return compile_cnf(cnf, max_nodes=self.max_nodes).model_count()


def bdd_count(cnf: CNF, max_nodes: int = 2_000_000) -> int:
    """One-shot OBDD-based exact count."""
    return BDDCounter(max_nodes=max_nodes).count(cnf)
