"""Reduced OBDD compilation counter (ablation backend).

The paper's related-work section contrasts MCML's direct CNF translation with
*compilation* approaches (ODDs/OBDDs).  This module implements that
alternative so the trade-off can be measured: clauses are compiled bottom-up
into a reduced ordered BDD (with an apply cache), and models are counted by a
single DP pass over the DAG.

Compilation cost can blow up on formulas where the fixed variable order is
bad — exactly the caveat the paper raises — so the counter takes a node
budget and raises :class:`repro.counting.exact.CounterBudgetExceeded` when
it is exceeded.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.counting.api import Capabilities
from repro.counting.exact import CounterBudgetExceeded
from repro.logic.cnf import CNF

# Terminal node ids.
_ZERO = 0
_ONE = 1


class _BDD:
    """A reduced ordered BDD forest over variables 0..k-1 (order = index)."""

    def __init__(self, num_levels: int, max_nodes: int) -> None:
        self.num_levels = num_levels
        self.max_nodes = max_nodes
        # node id -> (level, low, high); terminals are implicit.
        self.level: list[int] = [num_levels, num_levels]
        self.low: list[int] = [-1, -1]
        self.high: list[int] = [-1, -1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[int, int], int] = {}

    def node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self.level)
        if node_id > self.max_nodes:
            raise CounterBudgetExceeded(f"BDD exceeded {self.max_nodes} nodes")
        self.level.append(level)
        self.low.append(low)
        self.high.append(high)
        self._unique[key] = node_id
        return node_id

    def literal(self, level: int, positive: bool) -> int:
        if positive:
            return self.node(level, _ZERO, _ONE)
        return self.node(level, _ONE, _ZERO)

    def conjoin(self, a: int, b: int) -> int:
        """apply(AND, a, b) with memoisation."""
        if a == _ZERO or b == _ZERO:
            return _ZERO
        if a == _ONE:
            return b
        if b == _ONE:
            return a
        if a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        la, lb = self.level[a], self.level[b]
        top = min(la, lb)
        a_low, a_high = (self.low[a], self.high[a]) if la == top else (a, a)
        b_low, b_high = (self.low[b], self.high[b]) if lb == top else (b, b)
        result = self.node(top, self.conjoin(a_low, b_low), self.conjoin(a_high, b_high))
        self._apply_cache[key] = result
        return result

    def disjoin_literals(self, literals: Sequence[tuple[int, bool]]) -> int:
        """BDD for a clause: literals as (level, positive), any order."""
        # Build bottom-up in descending level order for linear size.
        root = _ZERO
        for level, positive in sorted(literals, reverse=True):
            if positive:
                root = self.node(level, root, _ONE)
            else:
                root = self.node(level, _ONE, root)
        return root

    def count(self, root: int) -> int:
        """Number of models over all ``num_levels`` variables."""
        if root == _ZERO:
            return 0
        memo: dict[int, int] = {_ZERO: 0, _ONE: 1}

        def models_below(node: int) -> int:
            """Models over variables at levels ≥ level(node)."""
            cached = memo.get(node)
            if cached is None:
                lvl = self.level[node]
                lo, hi = self.low[node], self.high[node]
                lo_models = models_below(lo) << (self.level[lo] - lvl - 1)
                hi_models = models_below(hi) << (self.level[hi] - lvl - 1)
                cached = lo_models + hi_models
                memo[node] = cached
            return cached

        return models_below(root) << self.level[root]


class BDDCounter:
    """Exact projected counter by OBDD compilation.

    Restricted to CNFs without auxiliary variables (the MCML decision-tree
    formulas): compiling Tseitin auxiliaries into a BDD and then projecting
    would require existential quantification, which defeats the purpose of
    this simple ablation backend.
    """

    name = "bdd"
    exact = True
    #: Exact by compilation, but restricted to auxiliary-free CNFs (no
    #: existential projection over a BDD here).
    capabilities = Capabilities(
        exact=True,
        counts_formulas=False,
        supports_projection=False,
        parallel_safe=True,
        owns_component_cache=False,
    )

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        self.max_nodes = max_nodes

    def count(self, cnf: CNF) -> int:
        projection = sorted(cnf.projected_vars())
        if not cnf.variables() <= set(projection):
            raise ValueError("BDD backend requires clause variables ⊆ projection")
        index = {v: i for i, v in enumerate(projection)}
        bdd = _BDD(num_levels=len(projection), max_nodes=self.max_nodes)
        root = _ONE
        # Conjoin widest clauses first: keeps intermediate BDDs smaller on
        # the path-condition formulas MCML generates.
        for clause in sorted(cnf.clauses, key=len, reverse=True):
            literals = [(index[abs(l)], l > 0) for l in clause]
            root = bdd.conjoin(root, bdd.disjoin_literals(literals))
            if root == _ZERO:
                return 0
        return bdd.count(root)


def bdd_count(cnf: CNF, max_nodes: int = 2_000_000) -> int:
    """One-shot OBDD-based exact count."""
    return BDDCounter(max_nodes=max_nodes).count(cnf)
