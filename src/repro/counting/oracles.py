"""Closed-form combinatorial counts for the 16 relational properties.

Table 1 of the paper reports exact model counts at scopes up to 20.  A pure
Python counter cannot reach some of those scopes, but every property studied
has a known closed form or OEIS sequence, so the paper's numbers can be
verified analytically (DESIGN.md §2 reverse-engineers the predicate
definitions from exactly these values).

Sequences used:

* labeled posets — OEIS A001035 (`NonStrictOrder`, `StrictOrder`,
  `PartialOrder` via the ×2^n diagonal factor);
* labeled preorders / finite topologies — OEIS A000798 (`PreOrder`);
* transitive relations — OEIS A006905 (`Transitive`);
* Bell numbers (`Equivalence`), factorials (`TotalOrder`, `Bijective`,
  `Surjective`), and elementary product formulas for the rest.
"""

from __future__ import annotations

import math
from functools import lru_cache

# OEIS A001035: partial orders (posets) on n labeled elements, n = 0..18.
LABELED_POSETS = [
    1,
    1,
    3,
    19,
    219,
    4231,
    130023,
    6129859,
    431723379,
    44511042511,
    6611065248783,
    1396281677105899,
    414864951055853499,
    171850728381587059351,
    98484324257128207032183,
    77567171020440688353049939,
    83480529785490157813844256579,
    122152541250295322862941281269151,
    241939392597201176602897820148085023,
]

# OEIS A000798: labeled quasi-orders (preorders = finite topologies), n = 0..18.
LABELED_PREORDERS = [
    1,
    1,
    4,
    29,
    355,
    6942,
    209527,
    9535241,
    642779354,
    63260289423,
    8977053873043,
    1816846038736192,
    519355571065774021,
    207881393656668953041,
    115617051977054267807460,
    88736269118586244492485121,
    93411113411710039565210494095,
    134137950093337880672321868725846,
    261492535743634374805066126901117203,
]

# OEIS A006905: transitive relations on n labeled nodes, n = 0..18.
TRANSITIVE_RELATIONS = [
    1,
    2,
    13,
    171,
    3994,
    154303,
    9415189,
    878222530,
    122207703623,
    24890747921947,
    7307450299510288,
    3053521546333103057,
    1797003559223770324237,
    1476062693867019126073312,
    1679239558149570229156802997,
    2628225174143857306623695576671,
    5626175867513779058707006016592954,
    16388270713364863943791979866838296851,
    64662720846908542794678859718227127212465,
]


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """Bell number B(n): equivalence relations on n labeled elements."""
    if n < 0:
        raise ValueError("n must be non-negative")
    # Bell triangle.
    row = [1]
    for _ in range(n):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[0]


def _pairs(n: int) -> int:
    return n * (n - 1) // 2


def _require_table(table: list[int], n: int, name: str) -> int:
    if n >= len(table):
        raise ValueError(f"{name} closed form tabulated only up to n={len(table) - 1}")
    return table[n]


def closed_form_count(property_name: str, n: int) -> int:
    """Exact number of relations on ``n`` atoms satisfying the property.

    ``property_name`` uses the paper's (case-insensitive) property names.
    Counts are over the full 2^(n²) space, i.e. the *no symmetry breaking*
    setting of Table 1.
    """
    if n < 0:
        raise ValueError("scope must be non-negative")
    key = property_name.lower()
    if key == "reflexive" or key == "irreflexive":
        return 1 << (n * n - n)
    if key == "antisymmetric":
        return 3 ** _pairs(n) * 2**n
    if key == "connex":
        return 3 ** _pairs(n)
    if key == "functional":
        return (n + 1) ** n
    if key == "function":
        return n**n
    if key == "injective":
        # Deliberately equal to "function": the study's Injective predicate
        # is ``all t: S | one r.t`` — exactly one *pre-image* per atom (the
        # column-wise mirror of a total function), giving n choices per
        # column and n^n relations.  This is the only reading compatible
        # with Table 1's count of 16,777,216 at scope 8, and it is pinned
        # to the exact counter at scopes 2–4 by the closed-form
        # differential test.  It is *not* the count of injective partial
        # functions (Σ_k C(n,k)²·k!) — the paper's predicate is stronger.
        return n**n
    if key in ("surjective", "bijective", "totalorder"):
        return math.factorial(n)
    if key == "transitive":
        return _require_table(TRANSITIVE_RELATIONS, n, "Transitive")
    if key == "equivalence":
        return bell_number(n)
    if key in ("nonstrictorder", "strictorder"):
        return _require_table(LABELED_POSETS, n, "posets")
    if key == "partialorder":
        return _require_table(LABELED_POSETS, n, "posets") * 2**n
    if key == "preorder":
        return _require_table(LABELED_PREORDERS, n, "PreOrder")
    raise KeyError(f"no closed form registered for property {property_name!r}")


def fibonacci(n: int) -> int:
    """F(n) with F(1) = F(2) = 1.

    Under adjacent-transposition lex-leader symmetry breaking the number of
    equivalence relations at scope ``n`` is F(n+1) — the validation target
    that pins our symmetry-breaking construction to Alloy's observed output
    (5 solutions at scope 4, 10,946 at scope 20; see DESIGN.md §2).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    a, b = 1, 1
    for _ in range(n - 2):
        a, b = b, a + b
    return b if n > 1 else a
