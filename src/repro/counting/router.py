"""The ``composite`` backend: route each problem to the counter that suits it.

MCML's workload mixes three problem shapes with three different best
backends: auxiliary-free region formulas (decision-tree regions, BNN
output boxes) compile to small d-DNNF circuits and count fastest on
``compiled``; hard aux-bearing conjunctions (property ∧ Tseitin-encoded
paths) need the component-caching DPLL search of ``exact``; and problems
past a size threshold are only tractable as (ε, δ) estimates on
``approxmc``.  Pre/post-counting systems for relational model discovery
make the same move — pick the counting strategy per query shape rather
than globally (Mar & Schulte, PAPERS.md).

:class:`CompositeCounter` is that dispatcher as a first-class registered
backend.  It declares ``Capabilities(routes=True)`` and exposes
``route(cnf) -> Route``, so the engine *asks* where a problem goes
instead of sniffing, and every decision is inspectable three ways:

* the :class:`Route` itself (rule name, target backend, capabilities);
* provenance on the result — ``CountResult.routed_to`` names the target,
  ``epsilon``/``delta`` ride along when the approx route fired;
* per-route counters on :class:`~repro.counting.api.EngineStats`
  (``route_exact`` / ``route_compiled`` / ``route_approx``).

The rules are ordered and declarative (:data:`ROUTING_RULES` renders as
the ``mcml --list-backends`` routing table):

1. ``oversized`` — more variables than ``oversize_vars`` → ``approxmc``.
   Refused outright when the caller demanded exactness
   (``precision="exact"``, or any per-path sub-problem): an estimate
   must never masquerade as an exact count, so the refusal is a
   ``ValueError`` at routing time, not a silent downgrade.
2. ``aux-free`` — no variables outside the projection → ``compiled``.
3. ``aux`` — everything else → ``exact``.

The router owns one instance of each target backend; the engine installs
its shared component cache through the :attr:`component_cache` property
(delegated to the ``exact`` sub-backend, the only route that uses one).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.counting.api import Capabilities
from repro.logic.cnf import CNF

__all__ = [
    "ROUTING_RULES",
    "CompositeCounter",
    "Route",
    "RoutingRule",
]


@dataclass(frozen=True)
class RoutingRule:
    """One declarative dispatch rule: predicate → target backend.

    ``name`` labels the rule in routing tables and provenance; ``target``
    is the registered backend name the rule dispatches to;
    ``stats_field`` the :class:`~repro.counting.api.EngineStats` counter
    the engine bumps when the rule fires; ``description`` the
    human-readable predicate for ``mcml --list-backends``.  ``matches``
    is the predicate itself — a pure function of the CNF, so a routing
    decision is reproducible from the problem alone.
    """

    name: str
    target: str
    stats_field: str
    description: str
    matches: Callable[[CNF, "CompositeCounter"], bool]


@dataclass(frozen=True)
class Route:
    """A routing decision: which rule fired and the counter it chose.

    ``capabilities`` are the *target* backend's — the engine builds
    result provenance (exactness, ε/δ) from these, not from the
    router's own declaration.
    """

    rule: RoutingRule
    counter: object
    capabilities: Capabilities


def _is_oversized(cnf: CNF, router: "CompositeCounter") -> bool:
    return cnf.num_vars > router.oversize_vars


def _is_aux_free(cnf: CNF, router: "CompositeCounter") -> bool:
    return not cnf.aux_vars()


def _always(cnf: CNF, router: "CompositeCounter") -> bool:
    return True


#: The ordered rule table (first match wins).  Module-level and frozen so
#: the CLI can render it without constructing a backend.
ROUTING_RULES: tuple[RoutingRule, ...] = (
    RoutingRule(
        name="oversized",
        target="approxmc",
        stats_field="route_approx",
        description="num_vars > oversize_vars (default 50000)",
        matches=_is_oversized,
    ),
    RoutingRule(
        name="aux-free",
        target="compiled",
        stats_field="route_compiled",
        description="no variables outside the projection",
        matches=_is_aux_free,
    ),
    RoutingRule(
        name="aux",
        target="exact",
        stats_field="route_exact",
        description="everything else (Tseitin auxiliaries present)",
        matches=_always,
    ),
)


class CompositeCounter:
    """Routing backend: dispatch each CNF to the best-suited counter.

    Declares ``exact=True`` — both exact routes are bit-exact and the
    engine may persist their counts — while the approx route's results
    are excluded from memo/store by the engine's routing lane (the same
    discipline inexact *fallback* results already follow), and carry
    explicit (ε, δ) provenance instead.  ``parallel_safe=False`` keeps
    batches serial: the seeded approxmc sub-backend's clones restart
    their RNG, and serial routing is what makes the per-route counters
    and ``routed_to`` provenance deterministic.

    ``oversize_vars`` is the tractability threshold of rule 1;
    ``epsilon``/``delta``/``seed`` parameterize the approxmc sub-backend
    (and surface on approx-routed results); ``max_nodes``/``deadline``
    are the engine's ``_limits`` surface, fanned out to every
    sub-backend so per-request budgets and deadlines bind whichever
    route fires.
    """

    name = "composite"
    exact = True
    capabilities = Capabilities(
        exact=True,
        counts_formulas=False,
        supports_projection=True,
        parallel_safe=False,
        owns_component_cache=True,
        conditions_cubes=False,
        routes=True,
    )

    def __init__(
        self,
        oversize_vars: int = 50_000,
        epsilon: float = 0.8,
        delta: float = 0.2,
        seed: int = 0,
        max_nodes: int = 5_000_000,
        deadline: float | None = None,
    ) -> None:
        from repro.counting.approxmc import ApproxMCCounter
        from repro.counting.circuit import CompiledCounter
        from repro.counting.exact import ExactCounter

        self.oversize_vars = oversize_vars
        self.max_nodes = max_nodes
        self.deadline = deadline
        self._targets = {
            "exact": ExactCounter(max_nodes=max_nodes, deadline=deadline),
            "compiled": CompiledCounter(max_nodes=max_nodes, deadline=deadline),
            "approxmc": ApproxMCCounter(
                epsilon=epsilon, delta=delta, seed=seed, deadline=deadline
            ),
        }
        self.rules = ROUTING_RULES

    # -- the engine's shared-component-cache surface ---------------------------------
    # ``owns_component_cache=True`` promises a settable ``component_cache``;
    # only the DPLL route uses one, so the property delegates to it.

    @property
    def component_cache(self):
        return self._targets["exact"].component_cache

    @component_cache.setter
    def component_cache(self, cache) -> None:
        self._targets["exact"].component_cache = cache

    # -- limits fan-out ---------------------------------------------------------------
    # The engine's ``_limits`` contextmanager overrides ``max_nodes``/
    # ``deadline`` on the *routed target* directly (it receives the
    # target counter, not the router), so nothing to mirror here; these
    # setters keep direct attribute pokes on the router coherent too.

    def set_limits(
        self, *, max_nodes: int | None = None, deadline: float | None = None
    ) -> None:
        """Propagate limit overrides to every sub-backend."""
        if max_nodes is not None:
            self.max_nodes = max_nodes
            self._targets["exact"].max_nodes = max_nodes
            self._targets["compiled"].max_nodes = max_nodes
        self.deadline = deadline
        for counter in self._targets.values():
            counter.deadline = deadline

    # -- routing ----------------------------------------------------------------------

    def route(self, cnf: CNF, *, prefer_exact: bool = False) -> Route:
        """The first matching rule's route for ``cnf``.

        ``prefer_exact`` is the caller's exactness demand
        (``precision="exact"`` or a per-path sub-problem): the approx
        route is *refused* for such problems — ``ValueError`` at routing
        time — rather than silently downgraded, because summed or
        compared estimates compound their error invisibly.
        """
        for rule in self.rules:
            if not rule.matches(cnf, self):
                continue
            if prefer_exact and rule.target == "approxmc":
                raise ValueError(
                    f"precision='exact' refused on the approx route: problem "
                    f"has {cnf.num_vars} variables (> oversize_vars="
                    f"{self.oversize_vars}), only an (ε, δ) estimate is "
                    f"tractable — drop the exactness demand or raise "
                    f"oversize_vars"
                )
            counter = self._targets[rule.target]
            return Route(
                rule=rule,
                counter=counter,
                capabilities=counter.capabilities,
            )
        raise AssertionError("unreachable: the default rule always matches")

    def routing_table(self) -> list[dict[str, str]]:
        """The rule table as rows for CLI/doc rendering."""
        return [
            {
                "rule": rule.name,
                "predicate": rule.description,
                "target": rule.target,
            }
            for rule in self.rules
        ]

    # -- counting ---------------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Count by dispatching to the routed backend.

        Direct calls (no engine) get the same routing as engine batches;
        exactness provenance is only available through the engine's
        typed results, so exactness-sensitive callers should go through
        :meth:`CountingEngine.solve`.
        """
        return self.route(cnf).counter.count(cnf)

    def __repr__(self) -> str:
        return (
            f"CompositeCounter(oversize_vars={self.oversize_vars}, "
            f"targets={sorted(self._targets)})"
        )
