"""Disk-persistent count cache keyed on canonical CNF signatures.

:meth:`repro.logic.cnf.CNF.signature` is a canonical, machine-independent
identity of a counting problem (packed variable order, order-insensitive
clause bitmask set, projection), so a count computed once is valid forever,
anywhere.  :class:`CountStore` spills the :class:`CountingEngine`'s count
memo to a small sqlite database under a cache directory: a table re-run in
a fresh process warms itself from disk and performs zero backend counts.

Keys are the SHA-256 hex digest of a canonical JSON rendering of the
signature (:func:`signature_key`); values are the counts rendered as
decimal strings, because projected model counts are arbitrary-precision
integers far beyond sqlite's 64-bit INTEGER range (2^{n²} spaces).

The store is a *cache*, so it degrades rather than fails: a corrupted
database file is rotated aside and recreated, and a corrupted row (text
that does not parse back to an int) reads as a miss and is overwritten by
the recount.  Every such degradation — rotation at open, unreadable row,
failed read, swallowed write — increments the store's ``degradations``
counter, which :class:`~repro.counting.engine.CountingEngine` surfaces as
``EngineStats.store_degradations``: silent self-repair stays silent in the
hot path but visible in telemetry.  The ``store-read-corrupt`` and
``store-disk-full`` points of :mod:`repro.counting.faults` hook the read
and write paths so chaos tests can drive these handlers on demand.

:class:`BlobStore` is the sibling cache for *compilation* memos: grounded
property translations (:class:`repro.spec.translate.RelationalProblem`)
and decision-tree region CNFs are pure functions of their structural keys
too, so the engine pickles them into a second database under the same
cache directory and a fresh process warms its translate/region memos from
disk the way whole counts already do.  Unlike counts, compilations are
backend-independent, so the blob store is active for *any* backend.

:class:`ComponentStore` is the third tier: the disk spill of the exact
counter's :class:`~repro.counting.component_cache.ComponentCache`.  Its
keys are *component* keys — packed clause sets plus a projection mask, or
the ``("elim", …)``-tagged elimination memos — whose values are pure
functions of the key, so a spilled entry read back in a later session is
bit-identical to a cold recount by construction.  Entries arrive on LRU
eviction and at engine close; misses of the in-memory cache consult this
store before declaring a component cold (see
:meth:`ComponentCache.get`).  Because the in-memory miss path is the
counter's hottest loop, the store keeps the set of present key digests in
memory: a miss against an absent key costs one digest + one set probe,
never a query.

:class:`CircuitStore` is the fourth tier: compiled
:class:`~repro.counting.circuit.Circuit` objects keyed on the
:func:`signature_key` of the CNF they were compiled from.  A circuit is a
pure function of its CNF signature, so a warm restart loads the pickle
and performs *zero* recompilations (``EngineStats.circuit_store_hits``);
circuits are few and large, so the tier writes through like the blob
store.  It is only active for backends declaring ``conditions_cubes``.

All tiers share one implementation, :class:`_SqliteStore`: a subclass is a
file name, a table name, a value codec and a buffering policy — the WAL
discipline, rotation, degradation accounting and buffer semantics are
written once.

Write path.  The database runs in WAL mode (readers of other processes are
not blocked by a writer mid-table, and commits are one sequential append),
and single ``put`` calls are *buffered*: they land in an in-memory pending
map and reach sqlite in one transaction per :data:`AUTOFLUSH_PUTS` puts —
an engine counting through ``count()`` row by row no longer pays one
commit (an fsync!) per count.  Reads observe the buffer, so a put is
always visible to its own process; ``flush()``/``close()`` force the disk
write.  The buffer is the cache trade-off: a process killed before a flush
loses at most the last ``AUTOFLUSH_PUTS`` single puts (``put_many`` — the
batch path — flushes through in its own transaction immediately).  Tiers
whose values are few and large (compilation memos) set their buffer depth
to 1 and write through, one transaction per put.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.counting import faults

#: File name of the sqlite database inside the cache directory.
STORE_FILENAME = "counts.sqlite"

#: File name of the compilation-memo database inside the cache directory.
BLOB_STORE_FILENAME = "memos.sqlite"

#: File name of the component-cache spill database inside the cache directory.
COMPONENT_STORE_FILENAME = "components.sqlite"

#: File name of the compiled-circuit database inside the cache directory.
CIRCUIT_STORE_FILENAME = "circuits.sqlite"

#: Single ``put`` calls buffered before one transaction writes them out.
AUTOFLUSH_PUTS = 256


def _open_cache_db(path: Path, schema: str) -> sqlite3.Connection:
    """Open a cache database with the discipline every disk tier shares.

    WAL keeps concurrent readers (other engines sharing the cache_dir)
    unblocked during writes; NORMAL sync is plenty for caches that can
    always be recomputed.  The pragmas are best-effort on a *valid*
    database — some filesystems refuse WAL and the rollback journal is
    fine — but "file is not a database" must escape so the caller can
    rotate the wreck aside.

    ``check_same_thread=False``: the counting service daemon constructs
    its engine on the main thread and solves on solver threads, and the
    engine serializes every store access under its solve lock — sqlite's
    per-thread affinity check would turn each cross-thread read into a
    spurious degradation.
    """
    connection = sqlite3.connect(path, check_same_thread=False)
    try:
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError:
            pass
        connection.execute(schema)
        connection.commit()
        return connection
    except sqlite3.DatabaseError:
        connection.close()
        raise


def _connect_or_rotate(path: Path, schema: str) -> tuple[sqlite3.Connection, bool]:
    """Open ``path``, rotating a corrupt file aside and starting fresh.

    The degrade-don't-fail half of the shared discipline: a cache is
    disposable, so a truncated write, bit rot or a foreign file must
    never crash the owning engine's construction — the wreck is moved to
    ``<name>.corrupt`` (or deleted when even that fails) and an empty
    database takes its place.  Returns ``(connection, rotated)`` so the
    owning store can count the rotation as a degradation.
    """
    try:
        return _open_cache_db(path, schema), False
    except sqlite3.DatabaseError:
        corrupt = path.with_suffix(path.suffix + ".corrupt")
        try:
            os.replace(path, corrupt)
        except OSError:
            path.unlink(missing_ok=True)
        return _open_cache_db(path, schema), True


def _fault_read() -> None:
    """The ``store-read-corrupt`` injection point (no-op unless armed)."""
    if faults.active("store-read-corrupt"):
        raise sqlite3.DatabaseError("injected: database disk image is malformed")


def _fault_write() -> None:
    """The ``store-disk-full`` injection point (no-op unless armed)."""
    if faults.active("store-disk-full"):
        raise sqlite3.OperationalError("injected: database or disk is full")


def _canonical(obj):
    """Render signature components as JSON-stable nested lists.

    Signatures mix tuples, frozensets of (arbitrary-precision) ints and the
    ``("all", num_vars)`` marker; sets are sorted so the rendering does not
    depend on Python hash order.
    """
    if isinstance(obj, (frozenset, set)):
        return ["set", sorted(_canonical(item) for item in obj)]
    if isinstance(obj, (tuple, list)):
        return [_canonical(item) for item in obj]
    return obj


def signature_key(signature: tuple) -> str:
    """Stable hex key for a :meth:`CNF.signature` value.

    Canonical across processes, platforms and sessions: the signature is
    rendered to sorted JSON and hashed with SHA-256.
    """
    payload = json.dumps(_canonical(signature), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def text_key(*parts: object) -> str:
    """Stable hex key for a tuple of repr-able components.

    Compilation memos (translations, tree regions) are keyed on the
    deterministic ``repr`` of frozen-dataclass structures — property ASTs,
    tree paths — so two structurally equal inputs share a key across
    processes while same-named-but-different ones never collide.
    """
    payload = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def component_key_digest(key) -> str:
    """Stable hex digest of a component-cache key.

    Component keys are ``(frozenset of (pos, neg) mask clauses, proj)``
    pairs, optionally tagged ``("elim", clauses, proj)``.  A frozenset's
    iteration order is an implementation detail, so the clauses are sorted
    before hashing; the masks are arbitrary-precision ints whose ``repr``
    is already canonical.  Plain and tagged keys over the same clauses get
    distinct digests via the tag prefix.
    """
    if len(key) == 2:
        tag, clauses, proj = "", key[0], key[1]
    else:
        tag, clauses, proj = key[0], key[1], key[2]
    payload = f"{tag}\x1f{proj}\x1f{sorted(clauses)!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Absent-value sentinel for the stores' buffer probes.
_MISSING = object()


class _SqliteStore:
    """Shared machinery of the disk tiers: one sqlite cache discipline.

    Every tier is a ``key TEXT -> value`` table under ``cache_dir`` with
    the same contract — WAL + NORMAL sync at open, corrupt-file rotation,
    puts buffered into one transaction per ``AUTOFLUSH`` calls, reads that
    observe the buffer, and degrade-don't-fail semantics with every
    self-repair event counted in ``degradations``.  A subclass declares
    ``FILENAME``/``TABLE``/``VALUE_TYPE``, the value codec
    (:meth:`_encode`/:meth:`_decode`) and its buffer depth (``AUTOFLUSH``;
    1 is write-through, one transaction per put), and may hook
    :meth:`_drop_unencodable`/:meth:`_flush_failed` to keep auxiliary
    indexes consistent with what actually landed on disk.
    """

    FILENAME: str = ""
    TABLE: str = ""
    VALUE_TYPE: str = "TEXT"
    #: Puts buffered before one transaction writes them out (1 = write-through).
    AUTOFLUSH: int = AUTOFLUSH_PUTS

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / self.FILENAME
        self._pending: dict[str, object] = {}
        #: Self-repair events absorbed so far (rotations, corrupt rows,
        #: failed reads, swallowed writes) — mirrored into EngineStats.
        self.degradations = 0
        self._connection = self._connect()

    # -- connection handling ---------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        schema = (
            f"CREATE TABLE IF NOT EXISTS {self.TABLE} "
            f"(key TEXT PRIMARY KEY, value {self.VALUE_TYPE} NOT NULL)"
        )
        connection, rotated = _connect_or_rotate(self.path, schema)
        if rotated:
            self.degradations += 1
        return connection

    def close(self) -> None:
        if self._connection is not None:
            self.flush()
            self._connection.close()
            self._connection = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- value codec -----------------------------------------------------------------

    def _encode(self, value):
        """``value`` as the sqlite cell; raise to drop the row instead."""
        raise NotImplementedError

    def _decode(self, raw):
        """The sqlite cell back as a value; raise to read as a corrupt miss."""
        raise NotImplementedError

    def _drop_unencodable(self, key: str) -> None:
        """Hook: ``key``'s value refused to encode and will never be written."""

    def _flush_failed(self, rows: list[tuple]) -> None:
        """Hook: ``rows`` were attempted but the whole transaction was swallowed."""

    # -- reads -----------------------------------------------------------------------

    def get(self, key: str):
        """The stored value for ``key``, or None (missing or unreadable)."""
        if self._connection is None:
            return None
        pending = self._pending.get(key, _MISSING)
        if pending is not _MISSING:
            return pending  # buffered puts are newer than any row
        try:
            _fault_read()
            row = self._connection.execute(
                f"SELECT value FROM {self.TABLE} WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError:
            self.degradations += 1
            return None
        if row is None:
            return None
        try:
            return self._decode(row[0])
        except Exception:
            self.degradations += 1
            return None  # unreadable row: a miss, the recompute repairs it

    # -- writes ----------------------------------------------------------------------

    def put(self, key: str, value) -> None:
        """Record one entry; buffered — written out every ``AUTOFLUSH`` puts."""
        if self._connection is None:
            return  # closed store: a cache accepts and drops the write
        self._pending[key] = value
        if len(self._pending) >= self.AUTOFLUSH:
            self.flush()

    def flush(self) -> None:
        """Write the buffered puts to sqlite in one transaction."""
        if self._connection is None:
            self._pending.clear()  # nothing can ever drain a closed buffer
            return
        if not self._pending:
            return
        rows = []
        for key, value in self._pending.items():
            try:
                raw = self._encode(value)
            except Exception:
                self._drop_unencodable(key)  # unencodable: simply not persisted
            else:
                rows.append((key, raw))
        if rows:
            try:
                _fault_write()
                self._connection.executemany(
                    f"INSERT OR REPLACE INTO {self.TABLE} (key, value) VALUES (?, ?)",
                    rows,
                )
                self._connection.commit()
            except sqlite3.DatabaseError:
                # A cache write failure must never break counting.
                self.degradations += 1
                self._flush_failed(rows)
        # Dropped even on failure: a cache entry is always recomputable, and
        # keeping a poisoned buffer would re-fail every later flush.
        self._pending.clear()

    # -- maintenance -----------------------------------------------------------------

    def __len__(self) -> int:
        if self._connection is None:
            return 0
        self.flush()
        try:
            (total,) = self._connection.execute(
                f"SELECT COUNT(*) FROM {self.TABLE}"
            ).fetchone()
            return int(total)
        except sqlite3.DatabaseError:
            return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(path={str(self.path)!r}, entries={len(self)})"


class CountStore(_SqliteStore):
    """Persistent ``signature key -> model count`` map under ``cache_dir``.

    Parameters
    ----------
    cache_dir:
        Directory holding the database (created if missing).  Distinct
        engines and sessions pointing at the same directory share counts.
    """

    FILENAME = STORE_FILENAME
    TABLE = "counts"
    VALUE_TYPE = "TEXT"

    def _encode(self, value) -> str:
        return str(value)

    def _decode(self, raw) -> int:
        return int(raw)

    # -- reads -----------------------------------------------------------------------

    def get(self, key: str) -> int | None:
        """The stored count for ``key``, or None (missing or unreadable)."""
        return self.get_many([key]).get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, int]:
        """Batch lookup; unreadable rows are simply absent from the result."""
        keys = list(keys)
        if not keys or self._connection is None:
            return {}
        found: dict[str, int] = {}
        pending = self._pending
        if pending:
            # Buffered puts are newer than any row, so they win.
            for key in keys:
                value = pending.get(key)
                if value is not None:
                    found[key] = value
            keys = [key for key in keys if key not in found]
            if not keys:
                return found
        try:
            _fault_read()
            placeholders = ",".join("?" for _ in keys)
            rows = self._connection.execute(
                f"SELECT key, value FROM counts WHERE key IN ({placeholders})",
                keys,
            ).fetchall()
        except sqlite3.DatabaseError:
            self.degradations += 1
            return found
        for key, value in rows:
            try:
                found[key] = int(value)
            except (TypeError, ValueError):
                self.degradations += 1
                continue  # corrupted row: treat as a miss, recount repairs it
        return found

    # -- writes ----------------------------------------------------------------------

    def put_many(self, items: Iterable[tuple[str, int]]) -> None:
        """Insert or overwrite counts in one transaction (with the buffer)."""
        if self._connection is None:
            return
        self._pending.update(items)
        self.flush()

    # -- maintenance -----------------------------------------------------------------

    def clear(self) -> None:
        """Delete every stored count (the file itself is kept)."""
        self._pending.clear()
        if self._connection is None:
            return
        try:
            self._connection.execute("DELETE FROM counts")
            self._connection.commit()
        except sqlite3.DatabaseError:
            pass


class BlobStore(_SqliteStore):
    """Persistent ``key -> pickled object`` map under ``cache_dir``.

    The compilation sibling of :class:`CountStore`: same degrade-don't-fail
    contract (corrupted files rotate aside, unreadable or unpicklable rows
    read as misses and are overwritten by the recompute), same sqlite WAL
    write path, but values are pickles of arbitrary Python objects —
    :class:`~repro.spec.translate.RelationalProblem` compilations and
    region :class:`~repro.logic.cnf.CNF`\\ s, all of which pickle cleanly.
    Compilations are few and large, so the store writes through: one
    transaction per put, nothing to lose on a crash.
    """

    FILENAME = BLOB_STORE_FILENAME
    TABLE = "blobs"
    VALUE_TYPE = "BLOB"
    AUTOFLUSH = 1  # write-through: one transaction per put

    def _encode(self, value) -> sqlite3.Binary:
        return sqlite3.Binary(pickle.dumps(value))

    def _decode(self, raw):
        return pickle.loads(raw)


class CircuitStore(BlobStore):
    """Persistent ``signature key -> compiled Circuit`` map under ``cache_dir``.

    The compile-once-query-forever tier: values are pickled
    :class:`~repro.counting.circuit.Circuit` objects keyed on
    :func:`signature_key` of the source CNF's canonical signature, so a
    circuit compiled in one session answers conditioning queries in every
    later one — a warm engine restart performs zero compilations.  The
    codec, write-through policy and degrade-don't-fail contract are the
    blob store's; only the file lives apart, because circuit blobs dwarf
    compilation memos and a cache wipe of one tier must not take the
    other with it.
    """

    FILENAME = CIRCUIT_STORE_FILENAME
    TABLE = "circuits"


class ComponentStore(_SqliteStore):
    """Persistent ``component key -> cached value`` map under ``cache_dir``.

    The disk-spill tier of :class:`~repro.counting.component_cache.ComponentCache`:
    values are model counts (ints), memoized elimination results (tuples of
    mask clauses) or the ``"unsat"`` marker, stored as pickles.  The
    degrade-don't-fail contract matches :class:`CountStore` — a corrupted
    database file rotates aside at open, an unreadable row reads as a miss
    — and so does the write path (WAL, NORMAL sync, one transaction per
    :data:`AUTOFLUSH_PUTS` buffered puts).

    The set of present key digests is held in memory (loaded once at open,
    maintained by ``put``): the caller probes misses out of the counter's
    hottest loop, so an absent key must never cost a query.
    """

    FILENAME = COMPONENT_STORE_FILENAME
    TABLE = "components"
    VALUE_TYPE = "BLOB"

    def __init__(self, cache_dir: str | Path) -> None:
        super().__init__(cache_dir)
        self._keys: set[str] = self._load_keys()

    def _load_keys(self) -> set[str]:
        try:
            rows = self._connection.execute("SELECT key FROM components")
            return {row[0] for row in rows}
        except sqlite3.DatabaseError:
            return set()

    def _encode(self, value) -> sqlite3.Binary:
        return sqlite3.Binary(pickle.dumps(value))

    def _decode(self, raw):
        return pickle.loads(raw)

    def _drop_unencodable(self, digest: str) -> None:
        self._keys.discard(digest)  # unpicklable: simply not spilled

    def _flush_failed(self, rows: list[tuple]) -> None:
        # The digests of rows that never landed must not stay "known", or
        # put()'s dedup would block every later re-spill attempt.
        for digest, _ in rows:
            self._keys.discard(digest)

    # -- reads -----------------------------------------------------------------------

    def get(self, key):
        """The spilled value for component ``key``, or None.

        Returns None without touching sqlite when the key is known absent
        (the digest-set probe), and on any unreadable/unpicklable row.  A
        missing or corrupt row also drops its digest from the known set —
        ``put`` dedups on that set, so keeping the digest would block the
        recount's re-spill and make the corruption permanent.
        """
        if self._connection is None or not self._keys:
            return None
        digest = component_key_digest(key)
        pending = self._pending.get(digest, _MISSING)
        if pending is not _MISSING:
            return pending
        if digest not in self._keys:
            return None
        try:
            _fault_read()
            row = self._connection.execute(
                "SELECT value FROM components WHERE key = ?", (digest,)
            ).fetchone()
        except sqlite3.DatabaseError:
            self.degradations += 1
            return None  # transient read failure: keep the digest
        if row is None:
            self._keys.discard(digest)  # lost row: let a re-spill repair it
            self.degradations += 1
            return None
        try:
            return pickle.loads(row[0])
        except Exception:
            self._keys.discard(digest)  # corrupt row: let a re-spill repair it
            self.degradations += 1
            return None

    # -- writes ----------------------------------------------------------------------

    def put(self, key, value) -> None:
        """Spill one entry; buffered — written out every AUTOFLUSH_PUTS.

        Values are pure functions of their keys, so a key already present
        (on disk or in the buffer) is never re-stored.
        """
        if self._connection is None:
            return  # closed store: a cache accepts and drops the write
        digest = component_key_digest(key)
        if digest in self._keys:
            return
        self._keys.add(digest)
        self._pending[digest] = value
        if len(self._pending) >= self.AUTOFLUSH:
            self.flush()

    # -- maintenance -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)
