"""Brute-force counting and enumeration, vectorised with numpy.

These routines exhaustively sweep all ``2^k`` assignments of the projected
variables.  They exist for two reasons:

* **differential testing** — every other counter in this package is checked
  against brute force on small instances;
* **fast bounded-exhaustive generation** — at the reduced scopes the default
  experiments use (n ≤ 4, i.e. ≤ 16 relation bits) sweeping the full space
  with numpy is faster than SAT enumeration.

Assignments are materialised in blocks so memory stays bounded even at the
upper end of the supported range (~2^24 assignments).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.logic.cnf import CNF

#: Refuse plain brute force beyond this many projected variables.
MAX_BRUTE_VARS = 26

_BLOCK_BITS = 18  # evaluate 2^18 assignments per numpy block


def _assignment_block(start: int, stop: int, num_vars: int) -> np.ndarray:
    """Rows ``start..stop`` of the truth table as a (stop-start, num_vars) array.

    Row ``i`` encodes integer ``i`` with variable ``j`` (0-based) holding bit
    ``j`` — i.e. variable 1 is the least significant bit.
    """
    indices = np.arange(start, stop, dtype=np.int64)
    shifts = np.arange(num_vars, dtype=np.int64)
    return ((indices[:, None] >> shifts[None, :]) & 1).astype(bool)


def iter_assignment_blocks(num_vars: int) -> Iterator[np.ndarray]:
    """Yield the full truth table over ``num_vars`` variables in blocks."""
    total = 1 << num_vars
    block = 1 << _BLOCK_BITS
    for start in range(0, total, block):
        stop = min(start + block, total)
        yield _assignment_block(start, stop, num_vars)


def _clause_mask(block: np.ndarray, clause: Sequence[int], var_index: dict[int, int]) -> np.ndarray:
    """Boolean mask of rows satisfying the clause."""
    mask = np.zeros(block.shape[0], dtype=bool)
    for lit in clause:
        column = block[:, var_index[abs(lit)]]
        mask |= column if lit > 0 else ~column
    return mask


def brute_force_count(cnf: CNF) -> int:
    """Exact projected model count by exhaustive sweep.

    Requires the clause variables to be contained in the projection (i.e. no
    auxiliary variables) — brute force over auxiliaries would conflate
    projected and total counts.
    """
    projection = sorted(cnf.projected_vars())
    clause_vars = cnf.variables()
    if not clause_vars <= set(projection):
        raise ValueError(
            "brute force requires clause variables ⊆ projection; "
            f"found auxiliaries {sorted(clause_vars - set(projection))[:5]}"
        )
    k = len(projection)
    if k > MAX_BRUTE_VARS:
        raise ValueError(f"{k} projected variables exceeds brute-force limit {MAX_BRUTE_VARS}")
    var_index = {v: i for i, v in enumerate(projection)}
    count = 0
    for block in iter_assignment_blocks(k):
        mask = np.ones(block.shape[0], dtype=bool)
        for clause in cnf.clauses:
            mask &= _clause_mask(block, clause, var_index)
            if not mask.any():
                break
        count += int(mask.sum())
    return count


def brute_force_models(cnf: CNF) -> np.ndarray:
    """All projected models as a (num_models, k) boolean array.

    Column order follows the sorted projection variables.
    """
    projection = sorted(cnf.projected_vars())
    clause_vars = cnf.variables()
    if not clause_vars <= set(projection):
        raise ValueError("brute force requires clause variables ⊆ projection")
    k = len(projection)
    if k > MAX_BRUTE_VARS:
        raise ValueError(f"{k} projected variables exceeds brute-force limit {MAX_BRUTE_VARS}")
    var_index = {v: i for i, v in enumerate(projection)}
    chunks: list[np.ndarray] = []
    for block in iter_assignment_blocks(k):
        mask = np.ones(block.shape[0], dtype=bool)
        for clause in cnf.clauses:
            mask &= _clause_mask(block, clause, var_index)
            if not mask.any():
                break
        if mask.any():
            chunks.append(block[mask])
    if not chunks:
        return np.zeros((0, k), dtype=bool)
    return np.concatenate(chunks, axis=0)


def brute_force_count_predicate(
    num_vars: int, predicate: Callable[[np.ndarray], np.ndarray]
) -> int:
    """Count assignments satisfying a vectorised predicate.

    ``predicate`` receives a (rows, num_vars) boolean block and must return a
    boolean mask of rows.  Used to count relational properties directly from
    their matrix semantics (cross-checking the CNF translation).
    """
    if num_vars > MAX_BRUTE_VARS:
        raise ValueError(f"{num_vars} variables exceeds brute-force limit {MAX_BRUTE_VARS}")
    count = 0
    for block in iter_assignment_blocks(num_vars):
        count += int(np.asarray(predicate(block)).sum())
    return count
