"""Smooth-circuit knowledge compilation: compile once, query forever.

The paper's related-work section contrasts MCML's direct CNF counting with
*compilation* approaches (ODDs/OBDDs, d-DNNF).  The dominant MCML workload
is *same φ, many regions*: every AccMC/DiffMC ratio sweep counts the same
base formula conjoined with many disjoint path cubes.  Direct counting
pays a (cache-assisted) search per region; a compiled form pays one
compilation and then answers each region query with a linear pass over the
DAG.

This module is the shared compilation machinery (extracted from
:mod:`repro.counting.bdd`, which keeps the thin ablation backend):

* :class:`CircuitBuilder` — the reduced-OBDD construction kernel (unique
  table, memoised apply-AND, linear clause builder) under a node budget
  and an optional wall-clock deadline, honouring the
  :class:`~repro.counting.exact.CounterAbort` taxonomy
  (:class:`CounterBudgetExceeded` / :class:`CounterTimeout`).
* :class:`Circuit` — the frozen, picklable compilation result.  A reduced
  OBDD *is* a d-DNNF circuit (every decision node is a deterministic OR of
  two ANDs; smoothing is implicit in the level-gap powers of two), so the
  two query passes are linear in the DAG: :meth:`Circuit.model_count` and
  :meth:`Circuit.condition`, which answers ``mc(circuit ∧ cube)`` for a
  *unit cube* (a conjunction of literals — exactly the
  ``label_cubes``-shaped per-path queries) without rebuilding anything.
* :func:`compile_cnf` — CNF → :class:`Circuit`, widest clauses first.
* :class:`CompiledCounter` — the ``compiled`` registry backend.  It is the
  only backend declaring ``conditions_cubes=True``: the engine compiles a
  per-path base once (persisting it in the :class:`CircuitStore` tier) and
  serves every ``mc(φ∧path)`` sub-problem by conditioning.

Like the ``bdd`` backend, compilation is restricted to auxiliary-free
CNFs (decision-tree regions): projecting Tseitin auxiliaries out of an
OBDD would need existential quantification, which is exactly the blow-up
compilation is meant to avoid.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from time import monotonic

from repro.counting.api import Capabilities
from repro.counting.exact import CounterBudgetExceeded, CounterTimeout
from repro.logic.cnf import CNF

# Terminal node ids.
ZERO = 0
ONE = 1

#: Node creations between wall-clock probes when a deadline is armed:
#: construction work between probes is microseconds, so the abort lands
#: within the deadline plus one probe interval.
_DEADLINE_CHECK_MASK = 0xFF


class CircuitBuilder:
    """A reduced ordered BDD forest over levels 0..k-1 (order = index).

    The construction kernel shared by the ``bdd`` and ``compiled``
    backends.  ``max_nodes`` bounds the *total* node count (terminals
    included): the node that would make the table exceed the budget raises
    :class:`CounterBudgetExceeded` before it is created.  ``deadline``
    arms a cooperative wall clock probed every few hundred node creations
    (:class:`CounterTimeout`).
    """

    def __init__(
        self, num_levels: int, max_nodes: int, deadline: float | None = None
    ) -> None:
        self.num_levels = num_levels
        self.max_nodes = max_nodes
        self._deadline = deadline
        self._deadline_at = monotonic() + deadline if deadline is not None else None
        # node id -> (level, low, high); terminals are implicit.
        self.level: list[int] = [num_levels, num_levels]
        self.low: list[int] = [-1, -1]
        self.high: list[int] = [-1, -1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[int, int], int] = {}

    def node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self.level)
        if node_id >= self.max_nodes:
            raise CounterBudgetExceeded(f"circuit exceeded {self.max_nodes} nodes")
        if (
            self._deadline_at is not None
            and not (node_id & _DEADLINE_CHECK_MASK)
            and monotonic() > self._deadline_at
        ):
            raise CounterTimeout(f"exceeded {self._deadline}s wall-clock deadline")
        self.level.append(level)
        self.low.append(low)
        self.high.append(high)
        self._unique[key] = node_id
        return node_id

    def literal(self, level: int, positive: bool) -> int:
        if positive:
            return self.node(level, ZERO, ONE)
        return self.node(level, ONE, ZERO)

    def conjoin(self, a: int, b: int) -> int:
        """apply(AND, a, b) with memoisation."""
        if a == ZERO or b == ZERO:
            return ZERO
        if a == ONE:
            return b
        if b == ONE:
            return a
        if a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        la, lb = self.level[a], self.level[b]
        top = min(la, lb)
        a_low, a_high = (self.low[a], self.high[a]) if la == top else (a, a)
        b_low, b_high = (self.low[b], self.high[b]) if lb == top else (b, b)
        result = self.node(top, self.conjoin(a_low, b_low), self.conjoin(a_high, b_high))
        self._apply_cache[key] = result
        return result

    def disjoin_literals(self, literals: Sequence[tuple[int, bool]]) -> int:
        """BDD for a clause: literals as (level, positive), any order."""
        # Build bottom-up in descending level order for linear size.
        root = ZERO
        for level, positive in sorted(literals, reverse=True):
            if positive:
                root = self.node(level, root, ONE)
            else:
                root = self.node(level, ONE, root)
        return root

    def count(self, root: int) -> int:
        """Number of models over all ``num_levels`` variables."""
        if root == ZERO:
            return 0
        memo: dict[int, int] = {ZERO: 0, ONE: 1}

        def models_below(node: int) -> int:
            """Models over variables at levels ≥ level(node)."""
            cached = memo.get(node)
            if cached is None:
                lvl = self.level[node]
                lo, hi = self.low[node], self.high[node]
                lo_models = models_below(lo) << (self.level[lo] - lvl - 1)
                hi_models = models_below(hi) << (self.level[hi] - lvl - 1)
                cached = lo_models + hi_models
                memo[node] = cached
            return cached

        return models_below(root) << self.level[root]


class Circuit:
    """A compiled smooth decision circuit, frozen and picklable.

    The query-forever half of compile-once-query-forever: plain int lists
    (node id → level/low/high), the root id and the DIMACS variable each
    level decides.  Both query passes are linear in the DAG and never
    touch the originating CNF, builder or backend again — a circuit read
    back from the :class:`~repro.counting.store.CircuitStore` answers
    queries identically to the one just compiled.
    """

    __slots__ = ("variables", "num_levels", "level", "low", "high", "root", "_index")

    def __init__(
        self,
        variables: Sequence[int],
        level: Sequence[int],
        low: Sequence[int],
        high: Sequence[int],
        root: int,
    ) -> None:
        #: DIMACS variable decided at each level, in level order.
        self.variables = tuple(variables)
        self.num_levels = len(self.variables)
        self.level = list(level)
        self.low = list(low)
        self.high = list(high)
        self.root = root
        self._index = {variable: i for i, variable in enumerate(self.variables)}

    @property
    def node_count(self) -> int:
        """Total nodes in the table (terminals and dead nodes included)."""
        return len(self.level)

    def __getstate__(self):
        # _index is derived; rebuilding it on load keeps pickles minimal.
        return (self.variables, self.level, self.low, self.high, self.root)

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    def __repr__(self) -> str:
        return (
            f"Circuit(levels={self.num_levels}, nodes={self.node_count}, "
            f"root={self.root})"
        )

    def model_count(self) -> int:
        """Models over all circuit variables (the empty-cube conditioning)."""
        return self.condition(())

    def condition(self, cube: Iterable[int]) -> int:
        """``mc(circuit ∧ cube)`` for a unit cube of DIMACS literals.

        One DP pass over the DAG — linear in circuit size however many
        times it is called.  At a node whose variable the cube fixes, only
        the matching child contributes; the smoothing gap between a node
        and its child multiplies by 2 per *unfixed* skipped level (a fixed
        skipped level has exactly one admissible value).  A cube fixing
        some variable both ways denotes the empty region: 0.  Variables
        outside the circuit raise ``ValueError`` — a cube over foreign
        variables is a caller bug, not an empty region.
        """
        fixed: dict[int, bool] = {}
        for literal in cube:
            level = self._index.get(abs(literal))
            if level is None:
                raise ValueError(
                    f"cube variable {abs(literal)} is not among the circuit's "
                    f"{self.num_levels} variables"
                )
            value = literal > 0
            if fixed.setdefault(level, value) != value:
                return 0  # x ∧ ¬x: the empty region
        if self.root == ZERO:
            return 0
        # free_before[i]: unfixed levels strictly above level i.
        free_before = [0] * (self.num_levels + 1)
        for i in range(self.num_levels):
            free_before[i + 1] = free_before[i] + (i not in fixed)
        level, low, high = self.level, self.low, self.high
        memo: dict[int, int] = {ZERO: 0, ONE: 1}

        def models_below(node: int) -> int:
            """Admissible models over unfixed variables at levels ≥ level(node)."""
            cached = memo.get(node)
            if cached is None:
                lvl = level[node]
                lo, hi = low[node], high[node]
                value = fixed.get(lvl)
                lo_models = (
                    0
                    if value is True
                    else models_below(lo) << (free_before[level[lo]] - free_before[lvl + 1])
                )
                hi_models = (
                    0
                    if value is False
                    else models_below(hi) << (free_before[level[hi]] - free_before[lvl + 1])
                )
                cached = lo_models + hi_models
                memo[node] = cached
            return cached

        return models_below(self.root) << free_before[self.level[self.root]]


def compile_cnf(
    cnf: CNF, max_nodes: int = 2_000_000, deadline: float | None = None
) -> Circuit:
    """Compile an auxiliary-free CNF into a :class:`Circuit`.

    Levels follow sorted projected-variable order; clauses are conjoined
    widest first (keeps intermediate BDDs smaller on the path-condition
    formulas MCML generates).  Raises ``ValueError`` when clause variables
    stick out of the projection — see the module docstring — and the
    :class:`CounterAbort` taxonomy under ``max_nodes``/``deadline``.
    """
    projection = sorted(cnf.projected_vars())
    if not cnf.variables() <= set(projection):
        raise ValueError(
            "circuit compilation requires clause variables ⊆ projection "
            "(auxiliary-free CNF)"
        )
    index = {v: i for i, v in enumerate(projection)}
    builder = CircuitBuilder(
        num_levels=len(projection), max_nodes=max_nodes, deadline=deadline
    )
    root = ONE
    for clause in sorted(cnf.clauses, key=len, reverse=True):
        literals = [(index[abs(l)], l > 0) for l in clause]
        root = builder.conjoin(root, builder.disjoin_literals(literals))
        if root == ZERO:
            break  # unsatisfiable: the ZERO-rooted circuit conditions to 0
    return Circuit(projection, builder.level, builder.low, builder.high, root)


class CompiledCounter:
    """Exact counting by knowledge compilation (the ``compiled`` backend).

    ``count`` compiles and model-counts in one go (so the backend is a
    drop-in exact counter for auxiliary-free CNFs); ``compile`` exposes
    the circuit itself, which is what ``conditions_cubes=True`` promises
    the engine: per-path sub-problems ``mc(φ∧path)`` are answered by
    :meth:`Circuit.condition` on one cached circuit instead of one count
    per path (see :meth:`CountingEngine.solve_many`).

    ``max_nodes``/``deadline`` are the engine's ``_limits`` surface — the
    same budget/deadline attributes every other backend exposes, applied
    to the compilation (queries are linear and never abort).
    """

    name = "compiled"
    exact = True
    #: Exact by compilation, auxiliary-free like ``bdd`` (no existential
    #: projection over an OBDD), but additionally able to answer unit-cube
    #: conditioning queries from one compiled circuit.
    capabilities = Capabilities(
        exact=True,
        counts_formulas=False,
        supports_projection=False,
        parallel_safe=True,
        owns_component_cache=False,
        conditions_cubes=True,
    )

    def __init__(
        self, max_nodes: int = 2_000_000, deadline: float | None = None
    ) -> None:
        self.max_nodes = max_nodes
        self.deadline = deadline

    def compile(self, cnf: CNF) -> Circuit:
        """CNF → reusable :class:`Circuit` under the current limits."""
        return compile_cnf(cnf, max_nodes=self.max_nodes, deadline=self.deadline)

    def count(self, cnf: CNF) -> int:
        return self.compile(cnf).model_count()


def compiled_count(cnf: CNF, max_nodes: int = 2_000_000) -> int:
    """One-shot compile-and-count (mirrors :func:`repro.counting.bdd.bdd_count`)."""
    return CompiledCounter(max_nodes=max_nodes).count(cnf)
