"""Model counting back-ends.

MCML reduces every whole-input-space metric to model counting.  The paper
uses two external tools; we implement both families natively, plus two more
back-ends used for validation and ablation:

* :mod:`repro.counting.exact` — exact counting in the ProjMC/sharpSAT
  tradition: DPLL search with unit propagation, connected-component
  decomposition and component caching.  This is the default backend.
* :mod:`repro.counting.approxmc` — ApproxMC2-style (ε, δ) approximate
  counting with random XOR hash constraints and bounded cell enumeration.
* :mod:`repro.counting.brute` — numpy-vectorised exhaustive counting for
  small variable counts; the ground truth for differential tests.
* :mod:`repro.counting.circuit` — the compile-once-query-forever kernel:
  :class:`CircuitBuilder` constructs a reduced d-DNNF-style DAG,
  :class:`Circuit` answers ``model_count()`` and per-cube
  ``condition()`` queries in one linear pass each, and
  :class:`CompiledCounter` is the ``compiled`` backend that declares
  ``conditions_cubes`` so the engine can answer every ``mc(φ ∧ path)``
  sub-problem of a per-path request from one cached circuit.
* :mod:`repro.counting.bdd` — reduced OBDD compilation counter, mirroring
  the "compilation" alternative discussed in the paper's related work
  (a thin compile-and-discard wrapper over :mod:`repro.counting.circuit`).
* :mod:`repro.counting.oracles` — closed-form combinatorial counts for the
  16 relational properties (Bell numbers, labeled posets, …), used to check
  Table 1 at paper scopes without running a counter.
* :mod:`repro.counting.legacy` — the tuple-based predecessor of the packed
  exact counter, kept as a differential baseline.
* :mod:`repro.counting.api` — the typed service contract: frozen
  :class:`CountRequest`/:class:`CountResult` objects, the
  :class:`Capabilities` declaration every backend carries, the
  :class:`CounterBackend` protocol, and the backend registry
  (:func:`make_backend`, :func:`available_backends`) that ``mcml
  --backend NAME`` and the conformance suite iterate over.
* :mod:`repro.counting.engine` — :class:`CountingEngine`, the shared,
  memoizing facade AccMC/DiffMC and the experiment drivers count through,
  configured by :class:`EngineConfig` (worker processes, disk cache,
  shared component cache); ``solve``/``solve_many`` return typed
  :class:`CountResult`\\ s, ``count``/``count_many`` remain bare-``int``
  shims.
* :mod:`repro.counting.component_cache` — :class:`ComponentCache`, the
  bounded LRU of counted components that persists across counting calls
  and is shared engine-wide.
* :mod:`repro.counting.parallel` — multiprocess fan-out for batches of
  independent counting problems: the engine-owned persistent
  :class:`WorkerPool` and the one-shot :func:`count_parallel`.
* :mod:`repro.counting.store` — the disk tiers, all subclasses of one
  ``_SqliteStore`` base: :class:`CountStore` (whole counts keyed on
  canonical CNF signatures), :class:`BlobStore` (compilation memos),
  :class:`ComponentStore` (the component-cache spill) and
  :class:`CircuitStore` (pickled compiled circuits, so a warm restart
  conditions without recompiling).
* :mod:`repro.counting.faults` — the fault-injection harness the chaos
  suite drives the robustness layer with (corrupt stores, full disks,
  SIGKILLed workers, unpicklable backends).

Failure taxonomy: :class:`CounterAbort` is the base of the cooperative
resource aborts (:class:`CounterBudgetExceeded` for node budgets,
:class:`CounterTimeout` for wall-clock deadlines);
:class:`CountFailure` is the engine/pool-level typed outcome a failed
batch problem becomes.
"""

from repro.counting.api import (
    Capabilities,
    CountFailure,
    CountRequest,
    CountResult,
    CounterBackend,
    EngineStats,
    available_backends,
    backend_capabilities,
    capabilities_of,
    make_backend,
    register_backend,
)
from repro.counting.approxmc import ApproxMCCounter, approx_count
from repro.counting.bdd import BDDCounter, bdd_count
from repro.counting.brute import brute_force_count, brute_force_models
from repro.counting.circuit import (
    Circuit,
    CircuitBuilder,
    CompiledCounter,
    compile_cnf,
    compiled_count,
)
from repro.counting.component_cache import ComponentCache
from repro.counting.engine import CountingEngine, EngineConfig, shared_engine
from repro.counting.exact import (
    CounterAbort,
    CounterBudgetExceeded,
    CounterTimeout,
    ExactCounter,
    exact_count,
)
from repro.counting.legacy import LegacyExactCounter
from repro.counting.oracles import closed_form_count
from repro.counting.parallel import WorkerPool, count_parallel
from repro.counting.router import CompositeCounter, Route, RoutingRule
from repro.counting.store import (
    BlobStore,
    CircuitStore,
    ComponentStore,
    CountStore,
    signature_key,
    text_key,
)
from repro.counting.vector import FormulaBruteCounter, count_formula

__all__ = [
    "ApproxMCCounter",
    "BDDCounter",
    "BlobStore",
    "Capabilities",
    "Circuit",
    "CircuitBuilder",
    "CircuitStore",
    "CompiledCounter",
    "CompositeCounter",
    "ComponentCache",
    "ComponentStore",
    "CountFailure",
    "CountRequest",
    "CountResult",
    "CountStore",
    "CounterAbort",
    "CounterBackend",
    "CounterBudgetExceeded",
    "CounterTimeout",
    "CountingEngine",
    "EngineConfig",
    "EngineStats",
    "ExactCounter",
    "FormulaBruteCounter",
    "LegacyExactCounter",
    "Route",
    "RoutingRule",
    "WorkerPool",
    "approx_count",
    "available_backends",
    "backend_capabilities",
    "bdd_count",
    "brute_force_count",
    "brute_force_models",
    "capabilities_of",
    "closed_form_count",
    "compile_cnf",
    "compiled_count",
    "count_formula",
    "count_parallel",
    "exact_count",
    "make_backend",
    "register_backend",
    "shared_engine",
    "signature_key",
    "text_key",
]
