""":class:`ServiceClient` — the counting service from the caller's side.

The client mirrors the :class:`~repro.core.session.MCMLSession` surface it
fronts: :meth:`solve` / :meth:`solve_many` take
:class:`~repro.counting.api.CountRequest` objects (or raw CNFs) and return
:class:`~repro.counting.api.CountResult`; failures come back as the *same*
typed objects a local engine produces —
:class:`~repro.counting.api.CountFailure` raised (or returned, with
``on_failure="return"``) with kind/backend/elapsed intact, and
:class:`~repro.counting.exact.CounterAbort` subclasses rehydrated by kind.
Code written against a session works against a client.

Retry discipline: transport faults (refused/reset/closed connections,
timeouts) and the retryable admission errors (``overloaded``,
``shutting-down``) are retried with capped exponential backoff and full
jitter — ``min(cap, base * 2**attempt)`` scaled by a uniform draw in
[0.5, 1.0) — reconnecting on a fresh socket each time.  Typed counting
failures are **not** retried: a deterministic timeout will time out again;
that decision belongs to the caller.  Retrying a counting verb is safe by
construction — the server coalesces identical in-flight requests and the
engine memoizes answered ones, so a retry after a dropped response line
costs a lookup, not a recount.

Batch framing: ``solve_many`` chunks the batch client-side under the
daemon's per-line ceiling (``max_line_bytes``) — a large batch becomes
several sequential ``solve_many`` lines instead of one oversized one the
server would reject wholesale (and close the connection over).  Only a
*single request* too big for a line still earns the typed ``oversized``
error, scoped to its own chunk.
"""

from __future__ import annotations

import json
import random
import socket
import time

from repro.counting import faults
from repro.counting.api import CountFailure, CountingSurface, CountRequest, CountResult
from repro.counting.exact import CounterAbort
from repro.counting.service import protocol

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
]

#: Headroom reserved for the envelope around a chunk's request list
#: (``{"id": …, "verb": "solve_many", "requests": [...]}\n``).
_ENVELOPE_MARGIN = 256


class ServiceError(RuntimeError):
    """A typed error envelope from the service (non-retryable kinds)."""

    def __init__(self, code: str, message: str, *, retryable: bool = False) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retryable = retryable


class ServiceOverloaded(ServiceError):
    """Admission control kept rejecting past the retry budget."""


class ServiceUnavailable(ServiceError):
    """The transport kept failing past the retry budget."""

    def __init__(self, message: str) -> None:
        super().__init__("unavailable", message, retryable=True)


class ServiceClient(CountingSurface):
    """Line-delimited JSON client with timeouts, backoff and rehydration.

    Declares :class:`~repro.counting.api.CountingSurface`: the remote
    spelling of the one client surface, interchangeable with
    :class:`~repro.core.session.MCMLSession` and
    :class:`~repro.counting.service.cluster.ShardedClient` anywhere a
    surface is accepted (drivers, CLI, the conformance suite).

    Parameters
    ----------
    host / port:
        Where the daemon listens (``mcml serve`` prints both on stdout).
    connect_timeout / request_timeout:
        Seconds allowed for TCP connect and for one request/response
        round trip.  Size ``request_timeout`` above the deadline of the
        hardest request you send — the server answers a timed-out count
        with a typed failure *at* its deadline, so the transport timeout
        only fires when the service itself is gone.
    retries:
        Extra attempts after the first, for transport faults and
        retryable admission errors only.
    backoff_base / backoff_cap:
        The capped exponential schedule; attempt *n* sleeps
        ``min(cap, base * 2**n)`` scaled by uniform jitter in [0.5, 1.0).
    rng:
        Jitter source (a ``random.Random``); inject a seeded one in tests.
    """

    def __init__(
        self,
        host: str = protocol.DEFAULT_HOST,
        port: int = protocol.DEFAULT_PORT,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 120.0,
        retries: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
        max_line_bytes: int = protocol.MAX_LINE_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_line_bytes = max_line_bytes
        self._rng = rng if rng is not None else random.Random()
        self._sock: socket.socket | None = None
        self._reader: protocol.LineReader | None = None
        self._next_id = 0
        #: Transport/admission retries performed over this client's life.
        self.retry_count = 0

    # -- connection management -------------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.connect_timeout)
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._reader = protocol.LineReader(sock, self.max_line_bytes)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
        return delay * (0.5 + self._rng.random() / 2)

    # -- the wire --------------------------------------------------------------------

    def _send_line(self, data: bytes) -> None:
        if faults.active("service-slow-loris"):
            # Dribble the request one byte at a time: the server's read
            # deadline, not this client's goodwill, must bound the damage.
            for i in range(len(data)):
                self._sock.sendall(data[i : i + 1])
                time.sleep(0.01)
            return
        self._sock.sendall(data)

    def _roundtrip(self, envelope: dict) -> dict:
        """One attempt: send one line, read the matching response line."""
        self.connect()
        if faults.active("service-oversize-payload"):
            envelope = dict(envelope)
            envelope["_pad"] = "x" * (self.max_line_bytes + 1)
        self._send_line(protocol.encode_line(envelope))
        while True:
            response = protocol.decode_line(self._reader.readline())
            if response.get("id") == envelope["id"]:
                return response
            if response.get("id") is None and not response.get("ok", True):
                # Connection-scoped error (oversized / undecodable line):
                # the server answers with a null id and may close on us.
                return response
            # A response for a request this client object no longer waits
            # on (a previous attempt whose reply arrived late).  Skip it.

    def _call(self, verb: str, payload: dict):
        """Send one verb with the retry/backoff discipline; return ``result``.

        Raises :class:`CountFailure` / :class:`CounterAbort` rehydrated
        from typed error envelopes, :class:`ServiceOverloaded` /
        :class:`ServiceUnavailable` past the retry budget, and
        :class:`ServiceError` for the non-retryable codes.
        """
        attempt = 0
        last_error: str = "no attempt made"
        while True:
            self._next_id += 1
            envelope = {"id": self._next_id, "verb": verb}
            envelope.update(payload)
            try:
                response = self._roundtrip(envelope)
            except (OSError, protocol.ProtocolError) as exc:
                self.close()
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt >= self.retries:
                    raise ServiceUnavailable(
                        f"{verb} failed after {attempt + 1} attempts ({last_error})"
                    ) from exc
                self.retry_count += 1
                time.sleep(self._backoff(attempt))
                attempt += 1
                continue
            if response.get("ok"):
                return response.get("result")
            error = response.get("error") or {}
            code = error.get("code", "internal")
            message = error.get("message", "")
            if code == "failure":
                raise CountFailure.from_dict(error["failure"])
            if code == "abort":
                raise CounterAbort.from_dict(error["abort"])
            if error.get("retryable"):
                last_error = f"[{code}] {message}"
                if attempt >= self.retries:
                    raise ServiceOverloaded(code, message, retryable=True)
                self.retry_count += 1
                time.sleep(self._backoff(attempt))
                attempt += 1
                continue
            raise ServiceError(code, message)

    # -- verbs -----------------------------------------------------------------------

    def ping(self) -> dict:
        return self._call("ping", {})

    def stats(self) -> dict:
        """The daemon's stats payload: engine stats + service telemetry."""
        return self._call("stats", {})

    def solve(self, problem, *, on_failure: str = "raise") -> CountResult | CountFailure:
        """Count one problem remotely, with the engine's failure contract.

        ``on_failure="raise"`` raises the failure's cause (the typed
        :class:`CounterAbort`) when one exists, the
        :class:`CountFailure` itself otherwise — exactly like
        :meth:`CountingEngine.solve`.  ``"return"`` hands back the
        failure object in place of a result.
        """
        if on_failure not in ("raise", "return"):
            raise ValueError(f"on_failure must be 'raise' or 'return', got {on_failure!r}")
        request = self._as_request(problem)
        try:
            result = self._call("solve", {"request": request.to_dict()})
        except CountFailure as failure:
            if on_failure == "return":
                return failure
            if failure.cause is not None:
                raise failure.cause from failure
            raise
        return CountResult.from_dict(result)

    def _chunk_requests(self, payloads: list[dict]) -> list[list[dict]]:
        """Split encoded requests into per-line-budget chunks (order kept).

        Greedy first-fit in batch order: a chunk closes when the next
        request would push its JSON line past ``max_line_bytes`` minus
        the envelope margin.  A single request bigger than the whole
        budget still ships alone — the server's typed ``oversized``
        answer then names exactly that request's chunk, not the batch.
        """
        budget = max(1, self.max_line_bytes - _ENVELOPE_MARGIN)
        chunks: list[list[dict]] = []
        current: list[dict] = []
        size = 0
        for payload in payloads:
            encoded = len(json.dumps(payload, separators=(",", ":"))) + 1
            if current and size + encoded > budget:
                chunks.append(current)
                current, size = [], 0
            current.append(payload)
            size += encoded
        if current:
            chunks.append(current)
        return chunks

    def solve_many(self, problems, *, on_failure: str = "raise"):
        """Count a batch remotely; one result or failure per problem.

        The batch is chunked under the daemon's line ceiling (see
        :meth:`_chunk_requests`) and shipped as sequential ``solve_many``
        lines; results concatenate back into batch order, so callers see
        one logical batch regardless of how many lines carried it.
        """
        if on_failure not in ("raise", "return"):
            raise ValueError(f"on_failure must be 'raise' or 'return', got {on_failure!r}")
        requests = [self._as_request(problem) for problem in problems]
        entries: list[dict] = []
        for chunk in self._chunk_requests([r.to_dict() for r in requests]):
            entries.extend(self._call("solve_many", {"requests": chunk}))
        outcomes: list[CountResult | CountFailure] = []
        primary: CountFailure | None = None
        for entry in entries:
            if entry.get("ok"):
                outcomes.append(CountResult.from_dict(entry["result"]))
            else:
                failure = CountFailure.from_dict(entry["failure"])
                if primary is None:
                    primary = failure
                outcomes.append(failure)
        if primary is not None and on_failure == "raise":
            if primary.cause is not None:
                raise primary.cause from primary
            raise primary
        return outcomes

    def count(self, problem) -> int:
        """Bare-int convenience over :meth:`solve`."""
        return self.solve(problem).value

    def count_many(self, problems) -> list[int]:
        """Bare-int convenience over :meth:`solve_many`."""
        return [result.value for result in self.solve_many(problems)]

    def accmc(
        self,
        tree,
        prop: str,
        scope: int,
        *,
        mode: str | None = None,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> dict:
        """Whole-space confusion metrics, computed daemon-side.

        ``tree`` is anything with ``n_features`` and ``decision_paths()``
        (a fitted ``DecisionTreeClassifier``, or a
        :class:`~repro.counting.service.protocol.WireTree`).  Returns the
        wire payload: confusion counts as decimal strings under
        ``"counts"`` plus provenance fields — counts are arbitrary
        precision, so they stay strings instead of losing bits in floats.
        """
        payload = {
            "tree": protocol.tree_to_wire(tree),
            "property": prop,
            "scope": scope,
        }
        if mode is not None:
            payload["mode"] = mode
        if deadline is not None:
            payload["deadline"] = deadline
        if budget is not None:
            payload["budget"] = budget
        result = self._call("accmc", payload)
        result["counts"] = {k: int(v) for k, v in result["counts"].items()}
        return result

    def diffmc(
        self,
        first,
        second,
        *,
        deadline: float | None = None,
        budget: int | None = None,
    ) -> dict:
        """Semantic difference of two trees, computed daemon-side."""
        payload = {
            "first": protocol.tree_to_wire(first),
            "second": protocol.tree_to_wire(second),
        }
        if deadline is not None:
            payload["deadline"] = deadline
        if budget is not None:
            payload["budget"] = budget
        result = self._call("diffmc", payload)
        for field in ("tt", "tf", "ft", "ff"):
            result[field] = int(result[field])
        return result

    @staticmethod
    def _as_request(problem) -> CountRequest:
        if isinstance(problem, CountRequest):
            return problem
        return CountRequest.from_cnf(problem)

    def __repr__(self) -> str:
        state = "connected" if self._sock is not None else "disconnected"
        return f"ServiceClient({self.host}:{self.port}, {state})"
