""":class:`CountingServer` — one warm session, many clients, bounded queues.

Threading model (all stdlib)::

    accept thread ──▶ one reader thread per connection
                           │  admission control (queue depth, per-client
                           │  in-flight budget, drain flag) + coalescing
                           ▼
                    bounded queue.Queue ──▶ solver lane(s) ──▶ fan-out
                                                 │             responses
                                                 ▼             (per-conn
                                        one MCMLSession         send lock)
                                        per lane (shared
                                        disk tiers)

Solver lanes: with ``solver_threads=N`` and a ``session_factory``, each
lane owns its *own* session (its own engine clone, memo, and worker
pool) over the *shared* sqlite tiers — counts, memos, components, and
circuits are WAL databases, so N lanes counting concurrently is the
supported multi-process story applied in-process.  Coalescing happens
before the queue, so identical formulas still collapse to one
computation no matter which lane picks the job up; the ``stats`` verb
sums engine counters across lanes and reports per-lane activity.

Admission control happens on the *reader* thread, before anything is
buffered: a full queue or an exhausted per-client in-flight budget gets an
immediate typed ``overloaded`` response, never an unbounded buffer.

Coalescing: counting verbs are keyed on their request signature (limits
excluded, matching the engine's memo identity).  A request whose key is
already in flight attaches as a *waiter* on the existing job instead of
enqueueing a second computation; when the job completes, every waiter gets
a response with its own envelope id.  Combined with the engine's memo this
makes the daemon idempotent under client retries — resending after a
dropped connection costs a memo hit, not a recount.

Graceful drain (SIGTERM/SIGINT, wired by ``mcml serve``): stop accepting,
reject new work with ``shutting-down``, let the solvers finish the queued
backlog bounded by the largest in-flight deadline plus ``drain_grace``,
answer whatever remains with ``shutting-down``, then close the session —
which spills the component cache and flushes every sqlite tier, so a
restarted daemon starts warm.

Enforcement of limits: requests pick up ``default_deadline`` /
``default_budget`` when they carry none, and ``max_deadline`` /
``max_budget`` clamp what they do carry — one pathological formula aborts
with the PR-6 taxonomy (:class:`~repro.counting.api.CountFailure`) instead
of wedging the service.
"""

from __future__ import annotations

import dataclasses
import logging
import queue
import socket
import struct
import threading
import time

from repro.counting import faults
from repro.counting.api import CountFailure, CountRequest
from repro.counting.exact import CounterAbort
from repro.counting.service import protocol
from repro.counting.store import signature_key

__all__ = ["CountingServer"]

log = logging.getLogger("repro.counting.service")

#: Verbs that run on the solver threads (and are subject to admission
#: control); ``ping`` and ``stats`` answer inline on the reader thread.
_COUNT_VERBS = ("solve", "solve_many", "accmc", "diffmc")


class _Connection:
    """Per-connection state: socket, send lock, counters."""

    __slots__ = ("sock", "name", "send_lock", "inflight", "open", "stats")

    def __init__(self, sock: socket.socket, name: str) -> None:
        self.sock = sock
        self.name = name
        self.send_lock = threading.Lock()
        self.inflight = 0  # guarded by the server's admission lock
        self.open = True
        self.stats = {"requests": 0, "served": 0, "rejected": 0, "coalesced": 0}


class _Job:
    """One enqueued computation plus everyone waiting on it."""

    __slots__ = ("key", "verb", "payload", "waiters", "deadline")

    def __init__(self, key: str, verb: str, payload: dict, deadline: float | None) -> None:
        self.key = key
        self.verb = verb
        self.payload = payload
        self.waiters: list[tuple[_Connection, object]] = []  # guarded by admission lock
        self.deadline = deadline


class CountingServer:
    """Serve one :class:`~repro.core.session.MCMLSession` over TCP.

    Parameters
    ----------
    session:
        The warm session lane 0 runs through.  The server *owns* it
        from here on: :meth:`close` closes it (spilling the disk tiers).
    session_factory:
        Zero-argument callable building one more session per extra lane
        (``mcml serve`` passes its config's ``session``).  Each lane's
        session is an independent engine clone over the same cache
        directory — the sqlite tiers are WAL, so concurrent lanes are
        the documented multi-process story applied in-process.  Without
        a factory, extra lanes share lane 0's session and only overlap
        serialization and response writing (the engine serializes
        ``solve*`` under its own lock).
    host / port:
        Bind address; port ``0`` picks a free port (:meth:`start` returns
        the bound pair).
    max_queue:
        Request-queue depth; a full queue is an ``overloaded`` rejection.
    max_inflight_per_client:
        Per-connection budget of unanswered counting requests; exceeding
        it is an ``overloaded`` rejection (coalesced waiters count too).
    solver_threads:
        Solver lanes draining the queue.  With a ``session_factory``
        each lane counts on its own engine, so N lanes overlap real
        solving wall-clock (distinct formulas run concurrently;
        identical ones still coalesce to a single computation before
        the queue).  Without a factory, extra lanes share one session
        and only overlap serialization.
    read_timeout:
        Idle-connection deadline in seconds; a client that neither
        completes a line nor closes (slow loris) is dropped when it
        expires without affecting other connections.
    default_deadline / default_budget / max_deadline / max_budget:
        Limit injection and clamping for every counting request.
    drain_grace:
        Extra wall-clock seconds past the largest in-flight deadline the
        drain waits before answering leftovers with ``shutting-down``.
    """

    def __init__(
        self,
        session,
        *,
        session_factory=None,
        host: str = protocol.DEFAULT_HOST,
        port: int = 0,
        max_queue: int = 64,
        max_inflight_per_client: int = 8,
        solver_threads: int = 1,
        read_timeout: float = 300.0,
        max_line_bytes: int = protocol.MAX_LINE_BYTES,
        default_deadline: float | None = None,
        default_budget: int | None = None,
        max_deadline: float | None = None,
        max_budget: int | None = None,
        drain_grace: float = 5.0,
    ) -> None:
        self.session = session
        self._session_factory = session_factory
        self._sessions = [session]  # lane i counts on _sessions[i]
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.max_inflight_per_client = max_inflight_per_client
        self.solver_threads = max(1, int(solver_threads))
        self.read_timeout = read_timeout
        self.max_line_bytes = max_line_bytes
        self.default_deadline = default_deadline
        self.default_budget = default_budget
        self.max_deadline = max_deadline
        self.max_budget = max_budget
        self.drain_grace = drain_grace

        self._listener: socket.socket | None = None
        self._queue: queue.Queue[_Job] = queue.Queue(maxsize=max_queue)
        self._admission = threading.Lock()  # inflight map + per-conn budgets
        self._inflight: dict[str, _Job] = {}
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._solver_pool: list[threading.Thread] = []
        self._readers: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._started_at: float | None = None
        self._accept_drops = 0

        self._counters_lock = threading.Lock()
        self._counters = {
            "accepted": 0,
            "requests": 0,
            "served": 0,
            "coalesced": 0,
            "rejected_overloaded": 0,
            "rejected_shutdown": 0,
            "invalid": 0,
            "oversized": 0,
            "failures": 0,
            "aborts": 0,
            "internal_errors": 0,
        }
        self._client_stats: dict[str, dict[str, int]] = {}
        self._lane_counters: list[dict[str, int]] = [
            {"jobs": 0, "served": 0, "failures": 0}
            for _ in range(self.solver_threads)
        ]

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and spin up the accept + solver threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        listener.settimeout(0.2)  # poll the drain flag between accepts
        self._listener = listener
        self.host, self.port = listener.getsockname()
        self._started_at = time.monotonic()

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="mcml-serve-accept", daemon=True
        )
        self._accept_thread.start()
        for i in range(1, self.solver_threads):
            if self._session_factory is not None:
                self._sessions.append(self._session_factory())
            else:
                self._sessions.append(self.session)
        for i in range(self.solver_threads):
            thread = threading.Thread(
                target=self._solver_loop,
                args=(i,),
                name=f"mcml-serve-solver-{i}",
                daemon=True,
            )
            thread.start()
            self._solver_pool.append(thread)
        log.info("listening on %s:%d", self.host, self.port)
        return self.host, self.port

    def initiate_drain(self, reason: str = "signal") -> None:
        """Stop accepting; new requests get ``shutting-down`` (idempotent,
        signal-handler safe — sets a flag and closes the listener)."""
        if self._draining.is_set():
            return
        log.info("drain initiated (%s)", reason)
        self._draining.set()

    def drain(self, timeout: float | None = None) -> bool:
        """Finish the backlog, answer leftovers, close everything.

        Returns True when the backlog drained inside the window; False
        when a wedged job forced the drain to abandon it.  Either way the
        session is closed afterwards, spilling the component cache and
        flushing every sqlite tier for the next daemon to inherit.
        """
        self.initiate_drain("drain() called")
        if timeout is None:
            with self._admission:
                pending = [job.deadline for job in self._inflight.values()]
            longest = max((d for d in pending if d is not None), default=0.0)
            timeout = longest + self.drain_grace
        deadline = time.monotonic() + timeout

        if self._accept_thread is not None:
            self._accept_thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
        clean = True
        for thread in self._solver_pool:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                clean = False

        # Whatever is still queued — or owned by a wedged solver — gets a
        # typed goodbye instead of a hang.  No late enqueue can race this
        # sweep: _dispatch re-checks _draining under _admission, so once
        # the flag is set (first thing above) the queue only shrinks.
        leftovers: list[_Job] = []
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        orphans: list[tuple[_Connection, object]] = []
        with self._admission:
            if not clean:
                leftovers.extend(self._inflight.values())
            for job in leftovers:
                self._inflight.pop(job.key, None)
                orphans.extend(job.waiters)
                for conn, _ in job.waiters:
                    conn.inflight -= 1
                job.waiters.clear()
        for conn, msg_id in orphans:
            self._send(
                conn,
                protocol.error_response(
                    msg_id, "shutting-down", "server is draining", retryable=True
                ),
            )
        self.close()
        return clean

    def close(self) -> None:
        """Close every connection and every lane session (idempotent)."""
        if self._drained.is_set():
            return
        self._drained.set()
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            self._drop(conn)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._readers:
            thread.join(timeout=2.0)
        # Lanes without a factory alias lane 0's session — dedupe so each
        # session's close() (and its cache spill) runs exactly once.
        seen: set[int] = set()
        for sess in self._sessions:
            if id(sess) in seen:
                continue
            seen.add(id(sess))
            sess.close()
        log.info("drained; %d lane session(s) closed", len(seen))

    def serve_until_drained(self, poll: float = 0.2) -> bool:
        """Block until :meth:`initiate_drain` fires, then drain and close."""
        while not self._draining.wait(timeout=poll):
            pass
        return self.drain()

    # -- accept / read ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        try:
            while not self._draining.is_set():
                try:
                    sock, addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us — drain is in charge
                drop_budget = faults.active("service-accept-drop")
                if drop_budget is not None and self._accept_drops < int(drop_budget):
                    self._accept_drops += 1
                    sock.close()
                    continue
                if self._draining.is_set():
                    sock.close()
                    break
                self._bump("accepted")
                conn = _Connection(sock, "%s:%d" % addr)
                with self._conn_lock:
                    self._connections.add(conn)
                reader = threading.Thread(
                    target=self._reader_loop,
                    args=(conn,),
                    name=f"mcml-serve-read-{conn.name}",
                    daemon=True,
                )
                reader.start()
                self._readers = [t for t in self._readers if t.is_alive()]
                self._readers.append(reader)
        except Exception:  # the accept loop must outlive any one bad socket
            log.exception("accept loop died")
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def _reader_loop(self, conn: _Connection) -> None:
        try:
            conn.sock.settimeout(self.read_timeout)
            reader = protocol.LineReader(
                conn.sock, self.max_line_bytes, line_timeout=self.read_timeout
            )
            while not self._drained.is_set():
                try:
                    line = reader.readline()
                except protocol.OversizedLine:
                    self._bump("oversized")
                    self._send(
                        conn,
                        protocol.error_response(
                            None,
                            "oversized",
                            f"request line exceeded {self.max_line_bytes} bytes",
                        ),
                    )
                    break  # cannot resync a half-read stream
                except (protocol.ConnectionClosed, TimeoutError, OSError):
                    break
                try:
                    envelope = protocol.decode_line(line)
                except protocol.ProtocolError as exc:
                    self._bump("invalid")
                    self._send(conn, protocol.error_response(None, "invalid", str(exc)))
                    continue
                self._dispatch(conn, envelope)
        except Exception:  # a reader crash must not take the daemon down
            log.exception("reader for %s died", conn.name)
        finally:
            self._drop(conn)

    # -- dispatch / admission --------------------------------------------------------

    def _dispatch(self, conn: _Connection, envelope: dict) -> None:
        msg_id = envelope.get("id")
        verb = envelope.get("verb")
        conn.stats["requests"] += 1
        self._bump("requests")
        if verb == "ping":
            self._send(conn, protocol.ok_response(msg_id, {"pong": True, "version": protocol.PROTOCOL_VERSION}))
            return
        if verb == "stats":
            self._send(conn, protocol.ok_response(msg_id, self.stats_payload()))
            return
        if verb not in _COUNT_VERBS:
            self._bump("invalid")
            conn.stats["rejected"] += 1
            self._send(
                conn, protocol.error_response(msg_id, "invalid", f"unknown verb {verb!r}")
            )
            return
        if self._draining.is_set():
            self._bump("rejected_shutdown")
            conn.stats["rejected"] += 1
            self._send(
                conn,
                protocol.error_response(
                    msg_id, "shutting-down", "server is draining", retryable=True
                ),
            )
            return
        try:
            key, payload, deadline = self._job_key(verb, envelope)
        except (protocol.ProtocolError, KeyError, TypeError, ValueError) as exc:
            self._bump("invalid")
            conn.stats["rejected"] += 1
            self._send(
                conn, protocol.error_response(msg_id, "invalid", f"bad {verb} payload: {exc}")
            )
            return

        # Decide under the lock, send after releasing it: sendall() can
        # block until a slow peer drains its receive window, and holding
        # _admission through that would stall every other connection's
        # admission, coalescing, and the solvers' fan-out bookkeeping.
        response = None
        rejection = None
        coalesced = False
        with self._admission:
            if self._draining.is_set():
                # Authoritative re-check: initiate_drain() may have fired
                # since the lock-free check above.  Enqueueing here would
                # race drain()'s leftover sweep and leave the waiter
                # unanswered; once this branch is reachable no new job can
                # enter the queue, so the sweep sees everything.
                rejection = "rejected_shutdown"
                response = protocol.error_response(
                    msg_id, "shutting-down", "server is draining", retryable=True
                )
            elif conn.inflight >= self.max_inflight_per_client:
                rejection = "rejected_overloaded"
                response = protocol.error_response(
                    msg_id,
                    "overloaded",
                    f"client in-flight budget ({self.max_inflight_per_client}) exhausted",
                    retryable=True,
                    inflight=conn.inflight,
                )
            else:
                job = self._inflight.get(key)
                if job is not None:
                    job.waiters.append((conn, msg_id))
                    conn.inflight += 1
                    coalesced = True
                else:
                    job = _Job(key, verb, payload, deadline)
                    job.waiters.append((conn, msg_id))
                    try:
                        self._queue.put_nowait(job)
                    except queue.Full:
                        rejection = "rejected_overloaded"
                        response = protocol.error_response(
                            msg_id,
                            "overloaded",
                            f"request queue ({self.max_queue}) is full",
                            retryable=True,
                            queue_depth=self.max_queue,
                        )
                    else:
                        self._inflight[key] = job
                        conn.inflight += 1
        if coalesced:
            conn.stats["coalesced"] += 1
            self._bump("coalesced")
        elif response is not None:
            conn.stats["rejected"] += 1
            self._bump(rejection)
            self._send(conn, response)

    def _job_key(self, verb: str, envelope: dict) -> tuple[str, dict, float | None]:
        """Coalescing key + parsed payload + effective deadline for a verb.

        Counting requests key on their signature (limits excluded), the
        same identity the engine memoizes on — so identical formulas
        coalesce even when their envelopes differ.  The metric verbs key
        on their canonical payloads.
        """
        if verb == "solve":
            request = self._limit(CountRequest.from_dict(envelope["request"]))
            key = signature_key(("solve", request.signature()))
            return key, {"request": request}, request.deadline
        if verb == "solve_many":
            requests = [
                self._limit(CountRequest.from_dict(entry)) for entry in envelope["requests"]
            ]
            if not requests:
                raise ValueError("empty batch")
            key = signature_key(("solve_many", tuple(r.signature() for r in requests)))
            deadline = None
            deadlines = [r.deadline for r in requests if r.deadline is not None]
            if deadlines:
                deadline = sum(deadlines)  # batch runs serially per engine lock
            return key, {"requests": requests}, deadline
        if verb == "accmc":
            tree = protocol.tree_from_wire(envelope["tree"])
            payload = {
                "tree": tree,
                "property": str(envelope["property"]),
                "scope": int(envelope["scope"]),
                "mode": envelope.get("mode"),
                "deadline": self._clamp_deadline(envelope.get("deadline")),
                "budget": self._clamp_budget(envelope.get("budget")),
            }
            key = signature_key(
                (
                    "accmc",
                    envelope["tree"],
                    payload["property"],
                    payload["scope"],
                    payload["mode"],
                )
            )
            return key, payload, payload["deadline"]
        # diffmc
        first = protocol.tree_from_wire(envelope["first"])
        second = protocol.tree_from_wire(envelope["second"])
        payload = {
            "first": first,
            "second": second,
            "deadline": self._clamp_deadline(envelope.get("deadline")),
            "budget": self._clamp_budget(envelope.get("budget")),
        }
        key = signature_key(("diffmc", envelope["first"], envelope["second"]))
        return key, payload, payload["deadline"]

    def _clamp_deadline(self, deadline) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        else:
            deadline = float(deadline)
        if self.max_deadline is not None:
            deadline = self.max_deadline if deadline is None else min(deadline, self.max_deadline)
        return deadline

    def _clamp_budget(self, budget) -> int | None:
        if budget is None:
            budget = self.default_budget
        else:
            budget = int(budget)
        if self.max_budget is not None:
            budget = self.max_budget if budget is None else min(budget, self.max_budget)
        return budget

    def _limit(self, request: CountRequest) -> CountRequest:
        """Inject server default limits and clamp against the maxima."""
        deadline = self._clamp_deadline(request.deadline)
        budget = self._clamp_budget(request.budget)
        if deadline == request.deadline and budget == request.budget:
            return request
        return dataclasses.replace(request, deadline=deadline, budget=budget)

    # -- solve -----------------------------------------------------------------------

    def _solver_loop(self, lane: int) -> None:
        session = self._sessions[lane]
        while True:
            try:
                job = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._draining.is_set():
                    return
                continue
            self._bump_lane(lane, "jobs")
            try:
                responder = self._execute(job, lane, session)
            except Exception:  # typed escapes only: anything else is "internal"
                log.exception("%s job crashed", job.verb)
                self._bump("internal_errors")

                def responder(msg_id, _verb=job.verb):
                    return protocol.error_response(
                        msg_id, "internal", f"{_verb} handler crashed; see server log"
                    )

            with self._admission:
                self._inflight.pop(job.key, None)
                waiters = list(job.waiters)
                job.waiters.clear()
                for conn, _ in waiters:
                    conn.inflight -= 1
            for conn, msg_id in waiters:
                if self._send(conn, responder(msg_id)):
                    conn.stats["served"] += 1
                    self._bump("served")
                    self._bump_lane(lane, "served")

    def _execute(self, job: _Job, lane: int, session):
        """Run one job on ``lane``'s session; return ``msg_id -> response``."""
        payload = job.payload
        if job.verb == "solve":
            result = session.solve(payload["request"], on_failure="return")
            if isinstance(result, CountFailure):
                self._bump("failures")
                self._bump_lane(lane, "failures")
                return lambda msg_id: protocol.failure_response(msg_id, result)
            body = result.to_dict()
            return lambda msg_id: protocol.ok_response(msg_id, body)
        if job.verb == "solve_many":
            results = session.solve_many(payload["requests"], on_failure="return")
            entries = []
            for outcome in results:
                if isinstance(outcome, CountFailure):
                    self._bump("failures")
                    self._bump_lane(lane, "failures")
                    entries.append({"ok": False, "failure": outcome.to_dict()})
                else:
                    entries.append({"ok": True, "result": outcome.to_dict()})
            return lambda msg_id: protocol.ok_response(msg_id, entries)
        if job.verb == "accmc":
            try:
                result = session.accmc(
                    payload["tree"],
                    payload["property"],
                    payload["scope"],
                    mode=payload["mode"],
                    deadline=payload["deadline"],
                    budget=payload["budget"],
                )
            except CountFailure as failure:
                self._bump("failures")
                self._bump_lane(lane, "failures")
                return lambda msg_id: protocol.failure_response(msg_id, failure)
            except CounterAbort as abort:
                self._bump("aborts")
                return lambda msg_id: protocol.abort_response(msg_id, abort)
            except (KeyError, ValueError) as exc:
                self._bump("invalid")
                message = f"bad accmc payload: {exc}"
                return lambda msg_id: protocol.error_response(msg_id, "invalid", message)
            body = {
                "property": result.property_name,
                "scope": result.scope,
                "mode": result.mode,
                "counter": result.counter,
                "elapsed_seconds": result.elapsed_seconds,
                "counts": {
                    "tp": str(result.counts.tp),
                    "fp": str(result.counts.fp),
                    "tn": str(result.counts.tn),
                    "fn": str(result.counts.fn),
                },
            }
            return lambda msg_id: protocol.ok_response(msg_id, body)
        # diffmc
        try:
            result = session.diffmc(
                payload["first"],
                payload["second"],
                deadline=payload["deadline"],
                budget=payload["budget"],
            )
        except CountFailure as failure:
            self._bump("failures")
            self._bump_lane(lane, "failures")
            return lambda msg_id: protocol.failure_response(msg_id, failure)
        except CounterAbort as abort:
            self._bump("aborts")
            return lambda msg_id: protocol.abort_response(msg_id, abort)
        except (KeyError, ValueError) as exc:
            self._bump("invalid")
            message = f"bad diffmc payload: {exc}"
            return lambda msg_id: protocol.error_response(msg_id, "invalid", message)
        body = {
            "tt": str(result.tt),
            "tf": str(result.tf),
            "ft": str(result.ft),
            "ff": str(result.ff),
            "num_inputs": result.num_inputs,
            "elapsed_seconds": result.elapsed_seconds,
        }
        return lambda msg_id: protocol.ok_response(msg_id, body)

    # -- plumbing --------------------------------------------------------------------

    def _send(self, conn: _Connection, envelope: dict) -> bool:
        """Write one response line; returns False when the client is gone."""
        data = protocol.encode_line(envelope)
        try:
            with conn.send_lock:
                if not conn.open:
                    return False
                if faults.active("service-reset-mid-response"):
                    conn.sock.sendall(data[: max(1, len(data) // 2)])
                    conn.sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                    )
                    conn.open = False
                    # shutdown() before close(): the connection's reader thread
                    # is blocked in recv() on this same socket, and a bare
                    # close() is deferred until that recv releases the fd — the
                    # linger-0 RST would only reach the client once *its* read
                    # timeout fired.  shutdown() poisons the blocked recv now.
                    try:
                        conn.sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    conn.sock.close()
                    return False
                conn.sock.sendall(data)
            return True
        except OSError:
            self._drop(conn)
            return False

    def _drop(self, conn: _Connection) -> None:
        with conn.send_lock:
            was_open = conn.open
            conn.open = False
        if was_open:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        with self._conn_lock:
            self._connections.discard(conn)
        # Merging zeroes the per-connection counters, so a second drop of
        # the same connection (reader exit after a send failure) is a no-op.
        with self._counters_lock:
            merged = self._client_stats.setdefault(
                conn.name, {"requests": 0, "served": 0, "rejected": 0, "coalesced": 0}
            )
            for field, value in conn.stats.items():
                merged[field] += value
            conn.stats = {k: 0 for k in conn.stats}

    def _bump(self, counter: str) -> None:
        with self._counters_lock:
            self._counters[counter] += 1

    def _bump_lane(self, lane: int, counter: str) -> None:
        with self._counters_lock:
            self._lane_counters[lane][counter] += 1

    def stats_payload(self) -> dict:
        """The ``stats`` verb: engine stats + queue/admission telemetry.

        With one lane this is exactly the session's ``stats()`` payload
        plus the ``service`` block; with N lanes the ``engine`` counters
        are summed across every distinct lane session, and per-lane
        activity rides in ``service["lanes"]``.
        """
        with self._counters_lock:
            counters = dict(self._counters)
            clients = {name: dict(stats) for name, stats in self._client_stats.items()}
            lanes = [dict(entry) for entry in self._lane_counters]
        with self._conn_lock:
            active = list(self._connections)
        for conn in active:
            merged = clients.setdefault(
                conn.name, {"requests": 0, "served": 0, "rejected": 0, "coalesced": 0}
            )
            for field, value in conn.stats.items():
                merged[field] += value
        payload = protocol.engine_stats_payload(self.session)
        seen = {id(self.session)}
        for sess in self._sessions[1:]:
            if id(sess) in seen:
                continue
            seen.add(id(sess))
            for field, value in sess.stats()["engine"].items():
                if isinstance(value, int):
                    payload["engine"][field] = payload["engine"].get(field, 0) + value
        payload["service"] = {
            "version": protocol.PROTOCOL_VERSION,
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started_at is not None else 0.0
            ),
            "draining": self._draining.is_set(),
            "queue_depth": self._queue.qsize(),
            "max_queue": self.max_queue,
            "max_inflight_per_client": self.max_inflight_per_client,
            "active_connections": len(active),
            "solver_threads": self.solver_threads,
            "lanes": lanes,
            "counters": counters,
            "clients": clients,
        }
        return payload
