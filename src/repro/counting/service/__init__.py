"""The counting service: :class:`~repro.core.session.MCMLSession` over a wire.

One long-lived daemon process owns a warm session — hot worker pool,
populated component cache, open sqlite tiers — and serves counting verbs
(``solve``, ``solve_many``, ``accmc``, ``diffmc``, ``stats``, ``ping``) to
concurrent clients over line-delimited JSON on a TCP socket.  Everything
is stdlib: ``socket`` + ``threading`` + ``json``, no framework.

The three modules:

:mod:`~repro.counting.service.protocol`
    The wire format — envelope encode/decode, bounded line framing,
    response builders, tree (de)hydration, the shared stats payload.
:mod:`~repro.counting.service.server`
    :class:`CountingServer` — accept/reader/solver threads, bounded
    request queue with admission control, per-client in-flight budgets,
    signature-keyed coalescing of identical in-flight requests, and
    graceful drain (stop accepting, finish the backlog, spill the disk
    tiers via ``session.close()``).
:mod:`~repro.counting.service.client`
    :class:`ServiceClient` — connect/request timeouts, capped
    exponential backoff with jitter, and rehydration of
    :class:`~repro.counting.api.CountFailure` /
    :class:`~repro.counting.exact.CounterAbort` so remote failures look
    exactly like local ones.
:mod:`~repro.counting.service.cluster`
    :class:`ShardedClient` — the same client surface over N daemons:
    consistent-hash partitioning of batches keyed on request
    signatures (each signature's warm store rows live on exactly one
    shard), rehash-failover when a shard dies mid-batch, and
    cluster-aggregated stats.

``mcml serve`` (:mod:`repro.experiments.cli`) is the daemon entry point
and ``mcml cluster --shards N`` the in-process cluster launcher;
``docs/api.md`` documents the wire protocol and failure semantics.
"""

from __future__ import annotations

from repro.counting.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.counting.service.cluster import ShardedClient
from repro.counting.service.protocol import (
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    engine_stats_payload,
)
from repro.counting.service.server import CountingServer

__all__ = [
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "CountingServer",
    "ServiceClient",
    "ShardedClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "engine_stats_payload",
]
