"""Wire format of the counting service.

One JSON object per line, UTF-8, ``\\n``-terminated, in both directions.
Requests are envelopes ``{"id": <any json>, "verb": <str>, ...payload}``;
responses echo the id::

    {"id": 7, "ok": true, "result": ...}
    {"id": 7, "ok": false, "error": {"code": "...", "message": "...",
                                     "retryable": false, ...}}

Error codes, and what a client should do with them:

``overloaded``
    Admission control said no — the request queue is full or the client
    exceeded its in-flight budget.  Retryable: back off and resend.
``shutting-down``
    The server is draining.  Retryable — against the *next* server.
``invalid``
    Malformed envelope, unknown verb, or a payload the verb rejected.
    Not retryable; fix the request.
``oversized``
    The request line exceeded ``max_line_bytes``.  The server closes the
    connection after replying (the stream cannot be resynced).  Not
    retryable.
``failure``
    A typed :class:`~repro.counting.api.CountFailure`: the problem ran
    but could not be answered (timeout / budget / worker-lost / error).
    The full ``to_dict()`` payload rides in ``error["failure"]`` so the
    client rehydrates the exact failure, provenance intact.
``abort``
    A :class:`~repro.counting.exact.CounterAbort` that escaped outside
    the failure wrapper; ``error["abort"]`` carries its ``to_dict()``.
``internal``
    The server's handler itself blew up.  Not retryable; the message is
    all you get (the traceback stays in the server log).

Line framing is bounded on both sides: :class:`LineReader` accumulates at
most ``max_line_bytes`` before raising :class:`OversizedLine` — the
service never buffers an unbounded request, which is the admission-control
story applied to a single connection.
"""

from __future__ import annotations

import json
import select
import socket
import time

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "LineReader",
    "OversizedLine",
    "ProtocolError",
    "WireTree",
    "abort_response",
    "decode_line",
    "encode_line",
    "engine_stats_payload",
    "error_response",
    "failure_response",
    "ok_response",
    "tree_from_wire",
    "tree_to_wire",
]

PROTOCOL_VERSION = 1

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7697

#: Default per-line ceiling.  Generous for real workloads (a 10^5-clause
#: CNF is ~2 MiB of JSON) while keeping a hostile client from ballooning
#: server memory.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """The peer sent something that is not the wire format."""


class OversizedLine(ProtocolError):
    """A line exceeded the framing ceiling before its newline arrived."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"line exceeded {limit} bytes before newline")
        self.limit = limit


class ConnectionClosed(ProtocolError):
    """The peer closed the connection mid-stream."""


def encode_line(obj: dict) -> bytes:
    """One envelope as a newline-terminated UTF-8 JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> dict:
    """Parse one line into an envelope dict (and nothing but a dict)."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"envelope must be a JSON object, got {type(obj).__name__}")
    return obj


class LineReader:
    """Bounded line framing over a socket.

    ``readline()`` returns one line (without the newline) or raises:
    :class:`OversizedLine` past ``max_line_bytes``, :class:`ConnectionClosed`
    on EOF, and ``TimeoutError`` / ``OSError`` from the socket.

    ``line_timeout`` bounds one *whole line*, not one ``recv``: without
    it, a slow-loris peer dribbling a byte per poll interval resets the
    per-``recv`` timeout forever and wedges the reader.  With it, the
    deadline starts when ``readline()`` does and each wait gets only the
    remainder (the server passes its ``read_timeout`` here; the client
    keeps the plain socket timeout it set itself).  The wait uses
    ``select`` rather than ``settimeout`` — the socket's timeout is
    shared with concurrent ``sendall`` on other threads, and shrinking it
    per read would let a send inherit a near-expired remainder and drop a
    healthy connection on a spurious send timeout.
    """

    def __init__(
        self,
        sock: socket.socket,
        max_line_bytes: int = MAX_LINE_BYTES,
        line_timeout: float | None = None,
    ) -> None:
        self._sock = sock
        self._max = max_line_bytes
        self._line_timeout = line_timeout
        self._buf = bytearray()

    def readline(self) -> bytes:
        started = time.monotonic()
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = bytes(self._buf[:newline])
                del self._buf[: newline + 1]
                return line
            if len(self._buf) > self._max:
                raise OversizedLine(self._max)
            if self._line_timeout is not None:
                remaining = self._line_timeout - (time.monotonic() - started)
                if remaining <= 0:
                    raise TimeoutError(
                        f"line incomplete after {self._line_timeout}s"
                    )
                try:
                    ready, _, _ = select.select([self._sock], [], [], remaining)
                except ValueError as exc:  # fd turned -1: closed under us
                    raise ConnectionClosed("socket closed during read wait") from exc
                if not ready:
                    raise TimeoutError(
                        f"line incomplete after {self._line_timeout}s"
                    )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            self._buf += chunk


# -- response builders ---------------------------------------------------------------


def ok_response(msg_id, result) -> dict:
    return {"id": msg_id, "ok": True, "result": result}


def error_response(msg_id, code: str, message: str, *, retryable: bool = False, **extra) -> dict:
    error = {"code": code, "message": message, "retryable": retryable}
    error.update(extra)
    return {"id": msg_id, "ok": False, "error": error}


def failure_response(msg_id, failure) -> dict:
    """A :class:`~repro.counting.api.CountFailure` as a typed error."""
    return error_response(
        msg_id, "failure", str(failure), retryable=False, failure=failure.to_dict()
    )


def abort_response(msg_id, abort) -> dict:
    """A :class:`~repro.counting.exact.CounterAbort` as a typed error."""
    return error_response(msg_id, "abort", str(abort), retryable=False, abort=abort.to_dict())


# -- trees over the wire -------------------------------------------------------------


class WireTree:
    """The tree surface AccMC/DiffMC consume: ``n_features`` + paths.

    The metric layer never calls ``predict`` — it compiles
    ``decision_paths()`` into counting problems — so a rehydrated tree is
    just those paths behind the same two-member interface.
    """

    __slots__ = ("n_features", "_paths")

    def __init__(self, n_features: int, paths: tuple) -> None:
        self.n_features = n_features
        self._paths = tuple(paths)

    def decision_paths(self):
        return list(self._paths)

    def __repr__(self) -> str:
        return f"WireTree(n_features={self.n_features}, paths={len(self._paths)})"


def tree_to_wire(tree) -> dict:
    """Flatten any fitted tree (or :class:`WireTree`) to its path list."""
    return {
        "n_features": int(tree.n_features),
        "paths": [
            {
                "conditions": [[int(f), bool(v)] for f, v in path.conditions],
                "label": int(path.label),
            }
            for path in tree.decision_paths()
        ],
    }


def tree_from_wire(payload: dict) -> WireTree:
    """Rehydrate a :class:`WireTree` from :func:`tree_to_wire` output."""
    from repro.ml.decision_tree import TreePath

    try:
        n_features = int(payload["n_features"])
        paths = tuple(
            TreePath(
                conditions=tuple((int(f), bool(v)) for f, v in entry["conditions"]),
                label=int(entry["label"]),
            )
            for entry in payload["paths"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed tree payload: {exc}") from exc
    return WireTree(n_features, paths)


# -- shared stats rendering ----------------------------------------------------------


def engine_stats_payload(session) -> dict:
    """The engine-side stats block, shared by ``mcml --stats`` and the
    daemon's ``stats`` verb — one rendering, two transports.

    Delegates to the session's :class:`~repro.counting.api.CountingSurface`
    ``stats()`` verb, so the two spellings can never drift apart.
    """
    return session.stats()
