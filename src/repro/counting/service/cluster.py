""":class:`ShardedClient` — one counting cluster behind the client surface.

A single daemon owns one warm store hierarchy (count memo, sqlite tiers,
component cache, compiled circuits).  The cluster layer scales that
horizontally *without duplicating warmth*: N daemons, each owning its own
``cache_dir``, with every :class:`~repro.counting.api.CountRequest`
assigned to exactly one of them by **consistent hashing on the request's
canonical signature**.  Because the partition key is
:meth:`CountRequest.signature` — the same identity the engine's memo and
the :class:`~repro.counting.store.CountStore` are keyed on — a given
problem always lands on the same shard, so its count/memo/component/
circuit rows accumulate on exactly one daemon and the warm tiers of the
cluster are disjoint by construction (asserted by the sharding suite and
the ``cluster_sharding`` bench ablation).

The ring is the classic virtual-node construction: each shard projects
``replicas`` points onto a 256-bit circle (SHA-256 of
``"host:port/replica"``), a request hashes to the circle via
:func:`~repro.counting.store.signature_key`, and its owner is the first
live shard point clockwise.  Virtual nodes keep the partition balanced;
consistent hashing keeps it *stable* — when a shard dies, only its keys
move (to their next-clockwise survivor), everyone else's warm rows stay
owned.

Failover reuses the PR 8 retry contract, one level up: each per-shard
:class:`~repro.counting.service.client.ServiceClient` already retries
transport faults and retryable admission codes with capped exponential
backoff, so by the time one raises
:class:`~repro.counting.service.client.ServiceUnavailable` /
:class:`~repro.counting.service.client.ServiceOverloaded` the shard is
genuinely gone — the cluster marks it dead, rehashes the shard's pending
positions onto the survivors, and finishes the batch there.  Typed
counting failures (:class:`~repro.counting.api.CountFailure`,
:class:`~repro.counting.exact.CounterAbort`) are *not* failover events:
a deterministic timeout would time out on any shard; they surface with
the engine's usual semantics.

Dead shards are re-admitted after a cooldown when ``readmit_after`` is
set: once a shard has been dead that many seconds, the next verb probes
it with a single no-retry ping, and a healthy answer puts it back on the
ring — its keys flow home, re-warming the rows it already owns.  A
failed probe restarts the cooldown.  Every recovery increments the typed
``readmissions`` counter (surfaced by ``stats()`` / ``ping()``).  With
``readmit_after=None`` (the default) dead shards stay dead for the
client's lifetime, the pre-readmission behaviour.

``mcml cluster --shards N`` (:mod:`repro.experiments.cli`) launches an
N-daemon cluster in one process; the sharding suite and
``scripts/service_smoke.py`` drive real multi-process clusters.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import random
import time

from repro.counting.api import CountFailure, CountingSurface, CountRequest, CountResult
from repro.counting.service import protocol
from repro.counting.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.counting.store import signature_key

__all__ = ["ShardedClient"]


def _ring_point(token: str) -> int:
    """A ring position: SHA-256 of the token as a 256-bit integer."""
    return int(hashlib.sha256(token.encode("utf-8")).hexdigest(), 16)


class ShardedClient(CountingSurface):
    """Consistent-hash partitioned client over N counting daemons.

    Declares :class:`~repro.counting.api.CountingSurface` — ``solve`` /
    ``solve_many`` / ``count`` / ``count_many`` / ``stats`` / ``close``
    plus the service extras (``accmc`` / ``diffmc`` / ``ping``) — so
    code written against one daemon, or against a local session, works
    against a cluster.

    Parameters
    ----------
    shards:
        ``(host, port)`` pairs, one per daemon.  Order is irrelevant to
        the partition (the ring is position-hashed), but stats and pings
        report shards in the order given.
    replicas:
        Virtual nodes per shard on the hash ring.  More replicas
        smooth the partition; 64 keeps the ring tiny while bounding
        imbalance well under 2× for small clusters.
    readmit_after:
        Cooldown in seconds before a dead shard is probed for
        re-admission; ``None`` (default) keeps dead shards dead for the
        client's lifetime.
    probe_timeout:
        Connect/request timeout for the single no-retry re-admission
        ping — a still-dead shard costs at most this long per cooldown.
    client_opts:
        Keyword options forwarded to every per-shard
        :class:`~repro.counting.service.client.ServiceClient`
        (``request_timeout``, ``retries``, ``backoff_base``, …).
    """

    def __init__(
        self,
        shards,
        *,
        replicas: int = 64,
        readmit_after: float | None = None,
        probe_timeout: float = 1.0,
        rng: random.Random | None = None,
        **client_opts,
    ) -> None:
        self.shards: list[tuple[str, int]] = [
            (host, int(port)) for host, port in shards
        ]
        if not self.shards:
            raise ValueError("a cluster needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shards in {self.shards}")
        self.replicas = replicas
        self._clients: dict[tuple[str, int], ServiceClient] = {
            shard: ServiceClient(shard[0], shard[1], rng=rng, **client_opts)
            for shard in self.shards
        }
        self._live: set[tuple[str, int]] = set(self.shards)
        #: Ring as parallel sorted arrays: position -> owning shard.
        points: list[tuple[int, tuple[str, int]]] = []
        for host, port in self.shards:
            for replica in range(self.replicas):
                points.append(
                    (_ring_point(f"{host}:{port}/{replica}"), (host, port))
                )
        points.sort()
        self._ring_positions = [position for position, _ in points]
        self._ring_shards = [shard for _, shard in points]
        #: Shards failed over away from, in death order (a history: a
        #: later re-admission does not erase the entry).
        self.failed_shards: list[tuple[str, int]] = []
        #: Rehash-failover events (one per shard death observed).
        self.failovers = 0
        #: Dead shards re-admitted after a successful cooldown probe.
        self.readmissions = 0
        self.readmit_after = readmit_after
        self.probe_timeout = probe_timeout
        self._dead_since: dict[tuple[str, int], float] = {}

    # -- the ring --------------------------------------------------------------------

    def _owner(self, key: int) -> tuple[str, int]:
        """First live shard clockwise of ``key`` on the ring."""
        if not self._live:
            raise ServiceUnavailable(
                f"all {len(self.shards)} shards failed (dead: {self.failed_shards})"
            )
        start = bisect.bisect_left(self._ring_positions, key)
        n = len(self._ring_positions)
        for step in range(n):
            shard = self._ring_shards[(start + step) % n]
            if shard in self._live:
                return shard
        raise AssertionError("unreachable: live set is non-empty")

    def shard_for(self, problem) -> tuple[str, int]:
        """The shard owning this problem's signature (diagnostics/tests)."""
        request = self._as_request(problem)
        return self._owner(int(signature_key(request.signature()), 16))

    def _mark_dead(self, shard: tuple[str, int]) -> None:
        if shard not in self._live:
            return
        self._live.discard(shard)
        self.failed_shards.append(shard)
        self.failovers += 1
        self._dead_since[shard] = time.monotonic()
        self._clients[shard].close()

    def _maybe_readmit(self) -> None:
        """Probe dead shards past their cooldown; rejoin the healthy ones.

        One no-retry ping on a fresh short-timeout client per candidate:
        the shard's regular client keeps its backoff budget for real
        work, and a still-dead shard costs ``probe_timeout``, not a
        retry storm.  A failed probe restarts the cooldown.
        """
        if self.readmit_after is None or not self._dead_since:
            return
        now = time.monotonic()
        for shard, died_at in list(self._dead_since.items()):
            if now - died_at < self.readmit_after:
                continue
            probe = ServiceClient(
                shard[0],
                shard[1],
                connect_timeout=self.probe_timeout,
                request_timeout=self.probe_timeout,
                retries=0,
            )
            try:
                probe.ping()
            except (ServiceError, OSError, protocol.ProtocolError):
                self._dead_since[shard] = time.monotonic()
                continue
            finally:
                probe.close()
            del self._dead_since[shard]
            self._live.add(shard)
            self.readmissions += 1

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- counting verbs --------------------------------------------------------------

    def solve_many(self, problems, *, on_failure: str = "raise"):
        """Count a batch across the cluster; one result/failure per problem.

        Positions are grouped by owning shard and each group shipped as
        one per-shard ``solve_many`` (which chunks itself under the line
        ceiling).  A shard that dies mid-batch — transport faults or
        retryable admission codes past its client's backoff budget — is
        marked dead and its *unanswered* positions rehash onto the
        survivors; answered positions are never recounted.  Failure
        semantics then match the engine:  ``on_failure="raise"`` raises
        the first (batch-order) failure's cause, ``"return"`` hands
        failures back in their positions.
        """
        if on_failure not in ("raise", "return"):
            raise ValueError(
                f"on_failure must be 'raise' or 'return', got {on_failure!r}"
            )
        self._maybe_readmit()
        requests = [self._as_request(problem) for problem in problems]
        keys = [int(signature_key(r.signature()), 16) for r in requests]
        outcomes: list[CountResult | CountFailure | None] = [None] * len(requests)
        pending = list(range(len(requests)))
        while pending:
            by_shard: dict[tuple[str, int], list[int]] = {}
            for i in pending:
                by_shard.setdefault(self._owner(keys[i]), []).append(i)
            pending = []
            for shard, positions in by_shard.items():
                client = self._clients[shard]
                try:
                    answers = client.solve_many(
                        [requests[i] for i in positions], on_failure="return"
                    )
                except (ServiceUnavailable, ServiceOverloaded):
                    # The shard's own retry/backoff budget is spent: the
                    # daemon is gone.  Rehash this shard's share onto the
                    # survivors on the next loop pass.
                    self._mark_dead(shard)
                    pending.extend(positions)
                    continue
                for i, answer in zip(positions, answers):
                    outcomes[i] = answer
        primary = next(
            (o for o in outcomes if isinstance(o, CountFailure)), None
        )
        if primary is not None and on_failure == "raise":
            if primary.cause is not None:
                raise primary.cause from primary
            raise primary
        return outcomes

    def solve(self, problem, *, on_failure: str = "raise"):
        """Count one problem on its owning shard (with failover)."""
        if on_failure not in ("raise", "return"):
            raise ValueError(
                f"on_failure must be 'raise' or 'return', got {on_failure!r}"
            )
        return self.solve_many([problem], on_failure=on_failure)[0]

    def count(self, problem) -> int:
        """Bare-int convenience over :meth:`solve`."""
        return self.solve(problem).value

    def count_many(self, problems) -> list[int]:
        """Bare-int convenience over :meth:`solve_many`."""
        return [result.value for result in self.solve_many(problems)]

    # -- metric verbs ----------------------------------------------------------------

    def _metric_shard(self, payload: dict) -> int:
        """Deterministic ring key for a metric verb's wire payload.

        Metric verbs (``accmc``/``diffmc``) have no CNF signature — the
        daemon compiles the problems itself — so affinity hashes the
        canonical payload text instead: the same (tree, property, scope)
        always lands on the same shard and reuses its warm translation
        and region memos.
        """
        return _ring_point(json.dumps(payload, sort_keys=True, separators=(",", ":")))

    def _with_failover(self, key: int, call):
        """Run ``call(client)`` on the key's owner, failing over on death."""
        self._maybe_readmit()
        while True:
            shard = self._owner(key)
            try:
                return call(self._clients[shard])
            except (ServiceUnavailable, ServiceOverloaded):
                self._mark_dead(shard)

    def accmc(self, tree, prop: str, scope: int, **kwargs) -> dict:
        """Whole-space confusion metrics on the payload's affine shard."""
        payload = {
            "tree": protocol.tree_to_wire(tree),
            "property": prop,
            "scope": scope,
        }
        return self._with_failover(
            self._metric_shard(payload),
            lambda client: client.accmc(tree, prop, scope, **kwargs),
        )

    def diffmc(self, first, second, **kwargs) -> dict:
        """Semantic tree difference on the payload's affine shard."""
        payload = {
            "first": protocol.tree_to_wire(first),
            "second": protocol.tree_to_wire(second),
        }
        return self._with_failover(
            self._metric_shard(payload),
            lambda client: client.diffmc(first, second, **kwargs),
        )

    # -- health / telemetry ----------------------------------------------------------

    def ping(self) -> dict:
        """Ping every live shard; dead shards report their status inline."""
        self._maybe_readmit()
        shards = {}
        for shard in self.shards:
            label = f"{shard[0]}:{shard[1]}"
            if shard not in self._live:
                shards[label] = {"status": "dead"}
                continue
            try:
                shards[label] = self._clients[shard].ping()
            except (ServiceUnavailable, ServiceOverloaded):
                self._mark_dead(shard)
                shards[label] = {"status": "dead"}
        return {
            "shards": shards,
            "live": len(self._live),
            "readmissions": self.readmissions,
        }

    def stats(self) -> dict:
        """Per-shard stats plus cluster aggregation.

        ``shards`` maps ``"host:port"`` to the daemon's own
        ``stats_payload`` (dead shards report ``{"status": "dead"}``);
        ``aggregated`` sums the integer engine counters and service
        request counters across live shards — the cluster-wide view of
        ``backend_calls``, ``store_hits``, admission rejections, etc.
        The engine sum also rides at the top-level ``engine`` key, the
        :class:`~repro.counting.api.CountingSurface` ``stats()`` shape.
        """
        self._maybe_readmit()
        shards: dict[str, dict] = {}
        engine_totals: dict[str, int] = {}
        service_totals: dict[str, int] = {}
        for shard in self.shards:
            label = f"{shard[0]}:{shard[1]}"
            if shard not in self._live:
                shards[label] = {"status": "dead"}
                continue
            try:
                payload = self._clients[shard].stats()
            except (ServiceUnavailable, ServiceOverloaded):
                self._mark_dead(shard)
                shards[label] = {"status": "dead"}
                continue
            shards[label] = payload
            for field, value in payload.get("engine", {}).items():
                if isinstance(value, int) and not isinstance(value, bool):
                    engine_totals[field] = engine_totals.get(field, 0) + value
            counters = payload.get("service", {}).get("counters", {})
            for field, value in counters.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    service_totals[field] = service_totals.get(field, 0) + value
        return {
            "shards": shards,
            "engine": engine_totals,
            "aggregated": {"engine": engine_totals, "service": service_totals},
            "live": len(self._live),
            "failovers": self.failovers,
            "readmissions": self.readmissions,
            "failed_shards": [f"{h}:{p}" for h, p in self.failed_shards],
        }

    @staticmethod
    def _as_request(problem) -> CountRequest:
        if isinstance(problem, CountRequest):
            return problem
        return CountRequest.from_cnf(problem)

    def __repr__(self) -> str:
        return (
            f"ShardedClient(shards={len(self.shards)}, live={len(self._live)}, "
            f"replicas={self.replicas}, failovers={self.failovers}, "
            f"readmissions={self.readmissions})"
        )
