"""Multiprocess fan-out for batches of independent counting problems.

Every MCML metric is a *batch* of projected counting calls with no shared
state — AccMC's four confusion problems, DiffMC's four region overlaps,
Table 1's per-property pairs — so the batch parallelizes embarrassingly.
Clauses are tuples of plain ints (and the packed hot-path representation is
rebuilt per ``count`` anyway), so a problem pickles cheaply as a
``(clauses, num_vars, projection, aux_unique)`` tuple and the only cost of
crossing a process boundary is the fork itself.

The backend counter is pickled once per pool (via the worker initializer),
not once per task; each worker therefore owns an independent counter clone,
which preserves serial semantics exactly — ``ExactCounter.count`` resets
its node budget and component cache per call, and a
:class:`~repro.counting.exact.CounterBudgetExceeded` raised in a worker
propagates to the caller just as it would serially.

:func:`count_parallel` is deliberately dumb: no shared memo, no disk store.
Deduplication and caching happen in :class:`repro.counting.engine
.CountingEngine`, which hands this module only the cold, unique problems.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Iterable, Sequence

from repro.logic.cnf import CNF, Clause

#: A counting problem flattened for pickling:
#: ``(clauses, num_vars, projection, aux_unique)``.
ProblemPayload = tuple[
    tuple[Clause, ...], int, tuple[int, ...] | None, bool
]


def cnf_to_payload(cnf: CNF) -> ProblemPayload:
    """Flatten a CNF into its picklable payload tuple."""
    projection = (
        tuple(sorted(cnf.projection)) if cnf.projection is not None else None
    )
    return (tuple(cnf.clauses), cnf.num_vars, projection, cnf.aux_unique)


def payload_to_cnf(payload: ProblemPayload) -> CNF:
    """Rebuild the CNF a payload came from (clauses are already normalised)."""
    clauses, num_vars, projection, aux_unique = payload
    cnf = CNF(num_vars=num_vars, projection=projection, aux_unique=aux_unique)
    cnf.clauses = [tuple(clause) for clause in clauses]
    return cnf


def default_workers() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def _start_method() -> str:
    """Prefer fork (cheap, POSIX) over spawn (portable)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Worker-side state: the counter clone this process counts with, installed
# once by the pool initializer instead of being re-pickled per task.
_WORKER_COUNTER = None


def _initialize_worker(counter_blob: bytes) -> None:
    global _WORKER_COUNTER
    _WORKER_COUNTER = pickle.loads(counter_blob)


def _count_payload(payload: ProblemPayload) -> int:
    return _WORKER_COUNTER.count(payload_to_cnf(payload))


def count_parallel(
    counter,
    cnfs: Iterable[CNF] | Sequence[CNF],
    workers: int,
    *,
    start_method: str | None = None,
    partial_sink: list[int] | None = None,
) -> list[int]:
    """Count ``cnfs`` across ``workers`` processes with ``counter`` clones.

    Bit-identical to the serial loop ``[counter.count(c) for c in cnfs]``:
    every backend here is deterministic given its own state (ExactCounter
    trivially; ApproxMCCounter via its seeded RNG — though note each worker
    clone starts from the *initial* RNG state, so approximate backends
    should be fanned out only when that is acceptable).  Falls back to the
    serial loop when the batch or the machine cannot use a pool: a single
    problem, ``workers <= 1``, or a backend that does not pickle.
    ``workers <= 0`` means "one per core" (:func:`default_workers`).

    ``partial_sink``, when given, receives each result in batch order as it
    completes — if a problem raises (e.g. ``CounterBudgetExceeded``), the
    sink holds the completed prefix, so callers can keep counts that were
    already paid for.
    """
    cnfs = list(cnfs)
    out = partial_sink if partial_sink is not None else []
    if not cnfs:
        return list(out)
    workers = int(workers)
    if workers <= 0:
        workers = default_workers()
    workers = min(workers, len(cnfs))
    try:
        counter_blob = pickle.dumps(counter) if workers > 1 else None
    except Exception:
        counter_blob = None  # unpicklable backend: count serially
    if workers == 1 or counter_blob is None:
        for cnf in cnfs:
            out.append(counter.count(cnf))
        return list(out)
    payloads = [cnf_to_payload(cnf) for cnf in cnfs]
    context = multiprocessing.get_context(start_method or _start_method())
    with context.Pool(
        processes=workers,
        initializer=_initialize_worker,
        initargs=(counter_blob,),
    ) as pool:
        # imap (not map): results arrive in batch order as they finish, so
        # a failure at position k still delivers the first k results.
        for value in pool.imap(_count_payload, payloads, chunksize=1):
            out.append(value)
    return list(out)
