"""Multiprocess fan-out for batches of independent counting problems.

Every MCML metric is a *batch* of projected counting calls with no shared
state — AccMC's four confusion problems, DiffMC's four region overlaps,
Table 1's per-property pairs — so the batch parallelizes embarrassingly.
Clauses are tuples of plain ints (and the packed hot-path representation is
rebuilt per ``count`` anyway), so a problem crosses the process boundary as
a frozen :class:`repro.counting.api.CountRequest` — the typed, picklable
problem description the whole counting layer speaks — and the only cost of
shipping one is the fork itself.

Two entry points share the same worker protocol:

* :class:`WorkerPool` — a *persistent* pool meant to be owned by a
  :class:`repro.counting.engine.CountingEngine`: created lazily on the
  first cold batch, reused across ``count_many`` calls and table rows
  (amortizing the fork cost that a per-batch pool pays every time), closed
  by ``engine.close()``.  The backend counter is pickled once per pool via
  the worker initializer, so each worker owns an independent clone — which
  preserves serial semantics exactly, and means a worker's component cache
  (:class:`repro.counting.component_cache.ComponentCache`) warms up over
  the pool's lifetime.  With ``record_deltas=True`` workers additionally
  ship the component-cache entries each problem inserted back to the
  parent, so the engine's *shared* cache warms from parallel runs too.
* :func:`count_parallel` — the stateless one-shot wrapper (an ephemeral
  pool per call), kept for direct use and as the reference the engine's
  pool path is differentially tested against.

Neither deduplicates nor persists: caching happens in
:class:`repro.counting.engine.CountingEngine`, which hands this module only
the cold, unique problems.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Iterable, Sequence
from time import perf_counter

from repro.counting.api import CountRequest
from repro.logic.cnf import CNF

#: The wire format of one counting problem (kept as an alias: the payload
#: *is* the typed request object since the API v2 redesign).
ProblemPayload = CountRequest


def cnf_to_payload(cnf: CNF) -> CountRequest:
    """Freeze a CNF into its picklable request payload."""
    return CountRequest.from_cnf(cnf)


def payload_to_cnf(payload: CountRequest) -> CNF:
    """Rebuild the CNF a payload came from (clauses are already normalised)."""
    return payload.cnf()


def default_workers() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def _start_method() -> str:
    """Prefer fork (cheap, POSIX) over spawn (portable)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Worker-side state, installed once per process by the pool initializer
# instead of being re-pickled per task: the counter clone this process
# counts with, and whether to ship component-cache deltas back.
_WORKER_COUNTER = None
_WORKER_RECORDS_DELTAS = False


def _initialize_worker(counter_blob: bytes, record_deltas: bool) -> None:
    global _WORKER_COUNTER, _WORKER_RECORDS_DELTAS
    _WORKER_COUNTER = pickle.loads(counter_blob)
    _WORKER_RECORDS_DELTAS = False
    if record_deltas:
        cache = getattr(_WORKER_COUNTER, "component_cache", None)
        if cache is not None:
            cache.start_recording()
            _WORKER_RECORDS_DELTAS = True


#: Attribute-absence sentinel for the budget override below.
_NO_BUDGET_KNOB = object()


def _count_payload(payload: CountRequest) -> tuple[int, list, float]:
    """Count one problem; returns ``(count, cache delta, elapsed_seconds)``.

    A request's per-problem ``budget`` overrides the worker clone's
    ``max_nodes`` for just this count (restored afterwards), so
    ``CounterBudgetExceeded`` fires in the worker exactly as it would in
    the serial path.
    """
    previous = _NO_BUDGET_KNOB
    if payload.budget is not None:
        previous = getattr(_WORKER_COUNTER, "max_nodes", _NO_BUDGET_KNOB)
        if previous is not _NO_BUDGET_KNOB:
            _WORKER_COUNTER.max_nodes = payload.budget
    started = perf_counter()
    try:
        value = _WORKER_COUNTER.count(payload.cnf())
    finally:
        if previous is not _NO_BUDGET_KNOB:
            _WORKER_COUNTER.max_nodes = previous
    elapsed = perf_counter() - started
    if _WORKER_RECORDS_DELTAS:
        return value, _WORKER_COUNTER.component_cache.drain_delta(), elapsed
    return value, [], elapsed


class WorkerPool:
    """A persistent pool of worker processes, each owning a counter clone.

    Parameters
    ----------
    counter_blob:
        The pickled backend counter (``pickle.dumps(counter)``) each worker
        unpickles once in its initializer.  Pickling is the caller's job so
        an unpicklable backend fails *before* any process is forked.
    workers:
        Number of worker processes.  Fixed for the pool's lifetime; batches
        smaller than the pool simply leave workers idle.
    record_deltas:
        When True, workers record the component-cache entries each problem
        inserts and ship them back with the count, so the caller can warm a
        shared cache (:meth:`ComponentCache.absorb`).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    """

    def __init__(
        self,
        counter_blob: bytes,
        workers: int,
        *,
        record_deltas: bool = False,
        start_method: str | None = None,
    ) -> None:
        context = multiprocessing.get_context(start_method or _start_method())
        self.workers = max(1, int(workers))
        self.record_deltas = record_deltas
        self.batches = 0  #: completed ``run`` calls (pool-reuse telemetry)
        self.closed = False
        self._pool = context.Pool(
            processes=self.workers,
            initializer=_initialize_worker,
            initargs=(counter_blob, record_deltas),
        )

    def run(
        self,
        cnfs: Sequence[CNF | CountRequest],
        *,
        partial_sink: list[int] | None = None,
        delta_sink: list | None = None,
        elapsed_sink: list[float] | None = None,
    ) -> list[int]:
        """Count ``cnfs`` (or prepared requests) across the pool, in batch order.

        ``partial_sink`` receives each count as it completes, so a failure
        at position k still delivers the first k results (a worker
        exception — e.g. ``CounterBudgetExceeded`` — propagates here but
        leaves the pool alive and reusable).  ``delta_sink`` receives the
        workers' component-cache deltas when ``record_deltas`` is on;
        ``elapsed_sink`` the per-problem worker wall times (the provenance
        :class:`repro.counting.api.CountResult` reports).
        """
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        out = partial_sink if partial_sink is not None else []
        payloads = [
            item if isinstance(item, CountRequest) else cnf_to_payload(item)
            for item in cnfs
        ]
        for payload in payloads:
            # Decomposition is the engine's job (the sub-problems must flow
            # through its memo and stores to dedup): the pool only ever
            # counts already-expanded conjunction problems.
            if payload.strategy != "conjunction":
                raise ValueError(
                    f"worker pools count plain problems; expand "
                    f"strategy={payload.strategy!r} requests via "
                    "CountingEngine.solve_many first"
                )
        # imap (not map): results arrive in batch order as they finish.
        for value, delta, elapsed in self._pool.imap(
            _count_payload, payloads, chunksize=1
        ):
            out.append(value)
            if delta and delta_sink is not None:
                delta_sink.extend(delta)
            if elapsed_sink is not None:
                elapsed_sink.append(elapsed)
        self.batches += 1
        return list(out)

    def close(self) -> None:
        """Terminate the workers (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "alive"
        return f"WorkerPool(workers={self.workers}, batches={self.batches}, {state})"


def count_parallel(
    counter,
    cnfs: Iterable[CNF] | Sequence[CNF],
    workers: int,
    *,
    start_method: str | None = None,
    partial_sink: list[int] | None = None,
) -> list[int]:
    """Count ``cnfs`` across ``workers`` processes with ``counter`` clones.

    Bit-identical to the serial loop ``[counter.count(c) for c in cnfs]``:
    every backend here is deterministic given its own state (ExactCounter
    trivially; ApproxMCCounter via its seeded RNG — though note each worker
    clone starts from the *initial* RNG state, so approximate backends
    should be fanned out only when that is acceptable).  Falls back to the
    serial loop when the batch or the machine cannot use a pool: a single
    problem, ``workers <= 1``, or a backend that does not pickle.
    ``workers <= 0`` means "one per core" (:func:`default_workers`).

    ``partial_sink``, when given, receives each result in batch order as it
    completes — if a problem raises (e.g. ``CounterBudgetExceeded``), the
    sink holds the completed prefix, so callers can keep counts that were
    already paid for.

    The pool here is ephemeral (forked and torn down per call); an engine
    that counts many batches should own a :class:`WorkerPool` instead.
    """
    cnfs = list(cnfs)
    out = partial_sink if partial_sink is not None else []
    if not cnfs:
        return list(out)
    workers = int(workers)
    if workers <= 0:
        workers = default_workers()
    workers = min(workers, len(cnfs))
    try:
        counter_blob = pickle.dumps(counter) if workers > 1 else None
    except Exception:
        counter_blob = None  # unpicklable backend: count serially
    if workers == 1 or counter_blob is None:
        for cnf in cnfs:
            out.append(counter.count(cnf))
        return list(out)
    with WorkerPool(counter_blob, workers, start_method=start_method) as pool:
        pool.run(cnfs, partial_sink=out)
    return list(out)
