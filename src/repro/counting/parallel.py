"""Multiprocess fan-out for batches of independent counting problems.

Every MCML metric is a *batch* of projected counting calls with no shared
state — AccMC's four confusion problems, DiffMC's four region overlaps,
Table 1's per-property pairs — so the batch parallelizes embarrassingly.
Clauses are tuples of plain ints (and the packed hot-path representation is
rebuilt per ``count`` anyway), so a problem crosses the process boundary as
a frozen :class:`repro.counting.api.CountRequest` — the typed, picklable
problem description the whole counting layer speaks — and the only cost of
shipping one is the fork itself.

Two entry points share the same worker protocol:

* :class:`WorkerPool` — a *persistent*, **self-healing** pool meant to be
  owned by a :class:`repro.counting.engine.CountingEngine`: forked lazily
  on the first batch, reused across ``count_many`` calls and table rows
  (amortizing the fork cost that a per-batch pool pays every time), closed
  by ``engine.close()``.  The backend counter is pickled once per pool and
  unpickled once per worker, so each worker owns an independent clone —
  which preserves serial semantics exactly, and means a worker's component
  cache (:class:`repro.counting.component_cache.ComponentCache`) warms up
  over the pool's lifetime.  With ``record_deltas=True`` workers
  additionally ship the component-cache entries each problem inserted back
  to the parent, so the engine's *shared* cache warms from parallel runs
  too.
* :func:`count_parallel` — the stateless one-shot wrapper (an ephemeral
  pool per call), kept for direct use and as the reference the engine's
  pool path is differentially tested against.

Fault tolerance.  Earlier revisions collected results through
``multiprocessing.Pool.imap``, which blocks forever if a worker is
SIGKILLed (OOM killer, operator) mid-task.  The pool now owns one duplex
pipe per worker and collects results asynchronously through
``multiprocessing.connection.wait``:

* a worker that dies is detected (EOF on its pipe), **respawned**, and its
  in-flight problem is re-dispatched up to ``task_retries`` times before
  it is declared lost (``respawns``/``retries`` telemetry; the engine
  mirrors them into :class:`~repro.counting.api.EngineStats`);
* a problem carrying a :attr:`CountRequest.deadline` is backstopped by a
  parent-side watchdog: the cooperative
  :class:`~repro.counting.exact.CounterTimeout` normally fires inside the
  worker, but a wedged worker (or a backend without a deadline knob) is
  killed and replaced at deadline + ``grace``;
* :meth:`WorkerPool.run_tasks` therefore **never hangs** and returns one
  typed outcome per problem — a :class:`TaskResult` or a
  :class:`~repro.counting.api.CountFailure` — instead of letting one bad
  problem poison the batch.  The legacy :meth:`WorkerPool.run` keeps its
  historical contract (delivers every completed count, then re-raises the
  first failure's original exception).

Neither entry point deduplicates nor persists: caching happens in
:class:`repro.counting.engine.CountingEngine`, which hands this module only
the cold, unique problems.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from time import monotonic, perf_counter

from repro.counting import faults
from repro.counting.api import CountFailure, CountRequest
from repro.logic.cnf import CNF

#: The wire format of one counting problem (kept as an alias: the payload
#: *is* the typed request object since the API v2 redesign).
ProblemPayload = CountRequest

#: Parent-side poll tick while waiting on worker pipes (seconds).
_TICK = 0.05

#: Bounded join when reaping a dead or killed worker process (seconds).
_REAP_TIMEOUT = 5.0


def cnf_to_payload(cnf: CNF) -> CountRequest:
    """Freeze a CNF into its picklable request payload."""
    return CountRequest.from_cnf(cnf)


def payload_to_cnf(payload: CountRequest) -> CNF:
    """Rebuild the CNF a payload came from (clauses are already normalised)."""
    return payload.cnf()


def default_workers() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def _start_method() -> str:
    """Prefer fork (cheap, POSIX) over spawn (portable)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Worker-side state, installed once per process instead of being re-pickled
# per task: the counter clone this process counts with, whether to ship
# component-cache deltas back, and the per-process task counter the
# ``worker-kill`` fault injection point consults.
_WORKER_COUNTER = None
_WORKER_RECORDS_DELTAS = False
_WORKER_TASKS = 0


def _initialize_worker(counter_blob: bytes, record_deltas: bool) -> None:
    global _WORKER_COUNTER, _WORKER_RECORDS_DELTAS, _WORKER_TASKS
    _WORKER_COUNTER = pickle.loads(counter_blob)
    _WORKER_RECORDS_DELTAS = False
    _WORKER_TASKS = 0
    if record_deltas:
        cache = getattr(_WORKER_COUNTER, "component_cache", None)
        if cache is not None:
            cache.start_recording()
            _WORKER_RECORDS_DELTAS = True


#: Attribute-absence sentinel for the per-problem knob overrides below.
_NO_KNOB = object()


def _maybe_injected_kill() -> None:
    """The ``worker-kill`` fault point: SIGKILL this worker on its Nth task.

    With ``worker-kill-marker`` armed to a path, the kill fires at most
    once pool-wide — the first worker to atomically create the marker file
    dies, respawned replacements survive — so chaos tests can assert the
    batch still completes.  Without a marker every worker dies at its Nth
    task, exercising retry-budget exhaustion.
    """
    threshold = faults.active("worker-kill")
    if threshold is None:
        return
    global _WORKER_TASKS
    _WORKER_TASKS += 1
    if _WORKER_TASKS < int(threshold):
        return
    marker = faults.active("worker-kill-marker")
    if marker is not None:
        try:
            os.close(os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # the injected crash already fired once
    os.kill(os.getpid(), signal.SIGKILL)


def _count_payload(payload: CountRequest) -> tuple[int, list, float]:
    """Count one problem; returns ``(count, cache delta, elapsed_seconds)``.

    A request's per-problem ``budget``/``deadline`` override the worker
    clone's ``max_nodes``/``deadline`` knobs for just this count (restored
    afterwards), so ``CounterBudgetExceeded``/``CounterTimeout`` fire in
    the worker exactly as they would in the serial path.
    """
    _maybe_injected_kill()
    previous_budget = _NO_KNOB
    previous_deadline = _NO_KNOB
    if payload.budget is not None:
        previous_budget = getattr(_WORKER_COUNTER, "max_nodes", _NO_KNOB)
        if previous_budget is not _NO_KNOB:
            _WORKER_COUNTER.max_nodes = payload.budget
    if payload.deadline is not None:
        previous_deadline = getattr(_WORKER_COUNTER, "deadline", _NO_KNOB)
        if previous_deadline is not _NO_KNOB:
            _WORKER_COUNTER.deadline = payload.deadline
    started = perf_counter()
    try:
        value = _WORKER_COUNTER.count(payload.cnf())
    finally:
        if previous_budget is not _NO_KNOB:
            _WORKER_COUNTER.max_nodes = previous_budget
        if previous_deadline is not _NO_KNOB:
            _WORKER_COUNTER.deadline = previous_deadline
    elapsed = perf_counter() - started
    if _WORKER_RECORDS_DELTAS:
        return value, _WORKER_COUNTER.component_cache.drain_delta(), elapsed
    return value, [], elapsed


def _worker_main(conn, counter_blob: bytes, record_deltas: bool) -> None:
    """Worker process: receive ``(task_id, payload)``, count, send outcome.

    Messages back are ``(task_id, "ok", (value, delta, elapsed))`` or
    ``(task_id, "error", (exception, elapsed))``; a ``None`` task is the
    shutdown sentinel.  The worker survives arbitrary backend exceptions —
    they are shipped to the parent as typed outcomes, never allowed to
    take the process down (an *unexpected* death is exactly what the
    parent's respawn machinery is for).
    """
    _initialize_worker(counter_blob, record_deltas)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break  # parent went away: nothing left to serve
        if task is None:
            break
        task_id, payload = task
        started = perf_counter()
        try:
            body = _count_payload(payload)
        except Exception as exc:  # ship the failure; the worker lives on
            elapsed = perf_counter() - started
            try:
                conn.send((task_id, "error", (exc, elapsed)))
            except (pickle.PicklingError, TypeError, AttributeError):
                shell = RuntimeError(f"{type(exc).__name__}: {exc}")
                conn.send((task_id, "error", (shell, elapsed)))
            continue
        conn.send((task_id, "ok", body))
    try:
        conn.close()
    except OSError:
        pass


@dataclass(frozen=True)
class TaskResult:
    """One successfully counted problem from :meth:`WorkerPool.run_tasks`."""

    value: int
    elapsed_seconds: float = 0.0
    delta: list = field(default_factory=list, compare=False)


class _WorkerHandle:
    """One worker process plus the parent end of its pipe."""

    __slots__ = ("process", "conn", "task_id", "started_at", "deadline_at")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task_id: int | None = None  # in-flight batch index, None if idle
        self.started_at = 0.0
        self.deadline_at: float | None = None


class WorkerPool:
    """A persistent, self-healing pool of workers, each owning a counter clone.

    Parameters
    ----------
    counter_blob:
        The pickled backend counter (``pickle.dumps(counter)``) each worker
        unpickles once at startup.  Pickling is the caller's job so an
        unpicklable backend fails *before* any process is forked.
    workers:
        Number of worker processes.  Fixed for the pool's lifetime; batches
        smaller than the pool simply leave workers idle.  Workers are
        forked lazily on the first batch (and re-forked individually when
        one dies — see ``respawns``).
    record_deltas:
        When True, workers record the component-cache entries each problem
        inserts and ship them back with the count, so the caller can warm a
        shared cache (:meth:`ComponentCache.absorb`).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    grace:
        Watchdog slack on top of a problem's ``deadline`` before the
        parent kills a worker that failed to abort cooperatively.
    task_retries:
        How many times a problem whose worker *died* (SIGKILL/OOM — not a
        clean exception) is re-dispatched before it is declared lost.
    drain_timeout:
        Bounded seconds :meth:`close` waits for workers to drain and exit
        cleanly before falling back to ``terminate()``.
    backend_name:
        Label stamped on the :class:`~repro.counting.api.CountFailure`
        outcomes this pool produces.
    """

    def __init__(
        self,
        counter_blob: bytes,
        workers: int,
        *,
        record_deltas: bool = False,
        start_method: str | None = None,
        grace: float = 5.0,
        task_retries: int = 2,
        drain_timeout: float = 5.0,
        backend_name: str = "?",
    ) -> None:
        self._context = multiprocessing.get_context(start_method or _start_method())
        self._counter_blob = counter_blob
        self.workers = max(1, int(workers))
        self.record_deltas = record_deltas
        self.grace = grace
        self.task_retries = max(0, int(task_retries))
        self.drain_timeout = drain_timeout
        self.backend_name = backend_name
        self.batches = 0  #: completed batches (pool-reuse telemetry)
        self.respawns = 0  #: dead workers replaced over the pool's lifetime
        self.retries = 0  #: problems re-dispatched after a worker loss
        self.timeouts = 0  #: watchdog kills (deadline + grace exceeded)
        self.closed = False
        self._handles: list[_WorkerHandle] = []

    # -- worker lifecycle --------------------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._counter_blob, self.record_deltas),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child keeps its own end
        return _WorkerHandle(process, parent_conn)

    def _ensure_workers(self) -> None:
        if not self._handles:
            self._handles = [self._spawn_worker() for _ in range(self.workers)]

    def _retire(self, handle: _WorkerHandle) -> None:
        """Reap one worker (dead or condemned); bounded, never hangs."""
        try:
            handle.conn.close()
        except OSError:
            pass
        process = handle.process
        if process.is_alive():
            process.terminate()
        process.join(_REAP_TIMEOUT)
        if process.is_alive():
            process.kill()
            process.join(_REAP_TIMEOUT)

    def _replace(self, index: int) -> None:
        """Retire the worker at ``index`` and fork its replacement."""
        self._retire(self._handles[index])
        self._handles[index] = self._spawn_worker()
        self.respawns += 1

    # -- batch execution ---------------------------------------------------------------

    def run_tasks(
        self,
        problems: Sequence[CNF | CountRequest],
        *,
        grace: float | None = None,
    ) -> list[TaskResult | CountFailure]:
        """Count ``problems``, returning one typed outcome per problem.

        Never raises for per-problem trouble and never hangs: worker
        deaths respawn-and-retry within ``task_retries``, deadline
        overruns are killed at deadline + grace, and clean backend
        exceptions come back classified — each as a
        :class:`~repro.counting.api.CountFailure` in the problem's batch
        position, alongside the :class:`TaskResult` successes.
        """
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        payloads = [
            item if isinstance(item, CountRequest) else cnf_to_payload(item)
            for item in problems
        ]
        for payload in payloads:
            # Decomposition is the engine's job (the sub-problems must flow
            # through its memo and stores to dedup): the pool only ever
            # counts already-expanded conjunction problems.  Checked before
            # any fork so a bad batch costs no processes.
            if payload.strategy != "conjunction":
                raise ValueError(
                    f"worker pools count plain problems; expand "
                    f"strategy={payload.strategy!r} requests via "
                    "CountingEngine.solve_many first"
                )
        if not payloads:
            self.batches += 1
            return []
        grace = self.grace if grace is None else grace
        self._ensure_workers()
        outcomes: list[TaskResult | CountFailure | None] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        pending: deque[int] = deque(range(len(payloads)))
        remaining = len(payloads)

        while remaining:
            now = monotonic()
            for i, handle in enumerate(self._handles):
                if not pending:
                    break
                if handle.task_id is not None:
                    continue
                task_id = pending[0]
                payload = payloads[task_id]
                try:
                    handle.conn.send((task_id, payload))
                except (BrokenPipeError, OSError):
                    # Died while idle: replace it; the next pass assigns.
                    self._replace(i)
                    continue
                pending.popleft()
                handle.task_id = task_id
                handle.started_at = now
                handle.deadline_at = (
                    now + payload.deadline + grace
                    if payload.deadline is not None
                    else None
                )
            busy = [h for h in self._handles if h.task_id is not None]
            if not busy:
                continue  # freshly respawned workers pick work up next pass
            timeout = _TICK
            for handle in busy:
                if handle.deadline_at is not None:
                    timeout = min(timeout, max(handle.deadline_at - now, 0.0))
            ready = set(_connection_wait([h.conn for h in busy], timeout))
            now = monotonic()
            for i, handle in enumerate(self._handles):
                task_id = handle.task_id
                if task_id is None:
                    continue
                if handle.conn in ready:
                    try:
                        message = handle.conn.recv()
                    except (EOFError, OSError):
                        # SIGKILL/OOM mid-task: respawn the worker and
                        # re-dispatch the problem within its retry budget.
                        elapsed = now - handle.started_at
                        self._replace(i)
                        if attempts[task_id] < self.task_retries:
                            attempts[task_id] += 1
                            self.retries += 1
                            pending.append(task_id)
                        else:
                            outcomes[task_id] = CountFailure(
                                "worker-lost",
                                f"worker died counting batch problem {task_id} "
                                f"and {attempts[task_id]} retries were exhausted",
                                backend=self.backend_name,
                                elapsed_seconds=elapsed,
                                retries=attempts[task_id],
                            )
                            remaining -= 1
                        continue
                    _, status, body = message
                    if status == "ok":
                        value, delta, elapsed = body
                        outcomes[task_id] = TaskResult(
                            value=value, elapsed_seconds=elapsed, delta=delta
                        )
                    else:
                        exc, elapsed = body
                        outcomes[task_id] = CountFailure.from_exception(
                            exc,
                            backend=self.backend_name,
                            elapsed_seconds=elapsed,
                            retries=attempts[task_id],
                        )
                    remaining -= 1
                    handle.task_id = None
                    handle.deadline_at = None
                    continue
                if handle.deadline_at is not None and now > handle.deadline_at:
                    # Watchdog backstop: deadline + grace passed without the
                    # cooperative CounterTimeout firing (wedged worker, or a
                    # backend with no deadline knob).  Kill and replace; a
                    # timeout is final — retrying would just time out again.
                    self.timeouts += 1
                    outcomes[task_id] = CountFailure(
                        "timeout",
                        f"batch problem {task_id} exceeded its "
                        f"{payloads[task_id].deadline}s deadline plus "
                        f"{grace}s grace; worker killed",
                        backend=self.backend_name,
                        elapsed_seconds=now - handle.started_at,
                        retries=attempts[task_id],
                    )
                    remaining -= 1
                    self._replace(i)
        self.batches += 1
        return outcomes  # type: ignore[return-value]

    def run(
        self,
        cnfs: Sequence[CNF | CountRequest],
        *,
        partial_sink: list[int] | None = None,
        delta_sink: list | None = None,
        elapsed_sink: list[float] | None = None,
    ) -> list[int]:
        """Count ``cnfs`` (or prepared requests), returning bare counts.

        The historical strict entry point over :meth:`run_tasks`:
        ``partial_sink`` receives every count that completed (so a failure
        at one position still delivers the others — counts already paid
        for are never discarded), ``delta_sink`` the workers'
        component-cache deltas when ``record_deltas`` is on, and
        ``elapsed_sink`` the per-problem worker wall times.  If any
        problem failed, the first failure's original exception (e.g.
        ``CounterBudgetExceeded``) is re-raised after the batch completes;
        the pool stays alive and reusable.
        """
        outcomes = self.run_tasks(cnfs)
        out = partial_sink if partial_sink is not None else []
        failure: CountFailure | None = None
        for outcome in outcomes:
            if isinstance(outcome, CountFailure):
                if failure is None:
                    failure = outcome
                continue
            out.append(outcome.value)
            if outcome.delta and delta_sink is not None:
                delta_sink.extend(outcome.delta)
            if elapsed_sink is not None:
                elapsed_sink.append(outcome.elapsed_seconds)
        if failure is not None:
            if failure.cause is not None:
                raise failure.cause
            raise failure
        return list(out)

    # -- shutdown ----------------------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Drain the workers gracefully, then terminate stragglers (idempotent).

        Sends each worker the shutdown sentinel and joins with a bounded
        ``timeout`` (default :attr:`drain_timeout`); workers that have not
        exited by then — wedged, or mid-count — are terminated the way the
        historical pool always was.  Between batches workers are idle, so
        the drain is normally instant and no paid-for work is discarded.
        """
        if self.closed:
            return
        self.closed = True
        timeout = self.drain_timeout if timeout is None else timeout
        deadline = monotonic() + timeout
        for handle in self._handles:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass  # already dead: the join below reaps it
        for handle in self._handles:
            handle.process.join(max(0.0, deadline - monotonic()))
        for handle in self._handles:
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(_REAP_TIMEOUT)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(_REAP_TIMEOUT)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._handles = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "alive"
        healing = (
            f", respawns={self.respawns}, retries={self.retries}"
            if self.respawns
            else ""
        )
        return (
            f"WorkerPool(workers={self.workers}, batches={self.batches}"
            f"{healing}, {state})"
        )


def count_parallel(
    counter,
    cnfs: Iterable[CNF] | Sequence[CNF],
    workers: int,
    *,
    start_method: str | None = None,
    partial_sink: list[int] | None = None,
) -> list[int]:
    """Count ``cnfs`` across ``workers`` processes with ``counter`` clones.

    Bit-identical to the serial loop ``[counter.count(c) for c in cnfs]``:
    every backend here is deterministic given its own state (ExactCounter
    trivially; ApproxMCCounter via its seeded RNG — though note each worker
    clone starts from the *initial* RNG state, so approximate backends
    should be fanned out only when that is acceptable).  Falls back to the
    serial loop when the batch or the machine cannot use a pool: a single
    problem, ``workers <= 1``, or a backend that does not pickle (the
    probe catches exactly the serialization failures —
    ``pickle.PicklingError``/``TypeError``/``AttributeError`` — so a
    genuinely broken backend still raises loudly).
    ``workers <= 0`` means "one per core" (:func:`default_workers`).

    ``partial_sink``, when given, receives each completed result (if a
    problem raises — e.g. ``CounterBudgetExceeded`` — the sink holds the
    completed counts, so callers can keep counts that were already paid
    for).

    The pool here is ephemeral (forked and torn down per call); an engine
    that counts many batches should own a :class:`WorkerPool` instead.
    """
    cnfs = list(cnfs)
    out = partial_sink if partial_sink is not None else []
    if not cnfs:
        return list(out)
    workers = int(workers)
    if workers <= 0:
        workers = default_workers()
    workers = min(workers, len(cnfs))
    counter_blob = None
    if workers > 1:
        try:
            if faults.active("backend-unpicklable"):
                raise pickle.PicklingError("injected: backend does not pickle")
            counter_blob = pickle.dumps(counter)
        except (pickle.PicklingError, TypeError, AttributeError):
            counter_blob = None  # unpicklable backend: count serially
    if workers == 1 or counter_blob is None:
        for cnf in cnfs:
            out.append(counter.count(cnf))
        return list(out)
    backend_name = getattr(counter, "name", type(counter).__name__)
    with WorkerPool(
        counter_blob, workers, start_method=start_method, backend_name=backend_name
    ) as pool:
        pool.run(cnfs, partial_sink=out)
    return list(out)
