"""CountingEngine: a shared, memoizing, parallel counting service.

Every MCML metric is a handful of projected model-counting calls, and the
experiment drivers repeat large parts of the work across rows: the same
ground-truth translation at every training ratio, the same symmetry-space
CNF for all sixteen properties of a table, the same tree regions when a
model is evaluated twice.  The engine makes that reuse automatic — and
scales the cold remainder across processes and sessions:

* ``solve`` / ``solve_many`` are the typed front door: they accept a
  :class:`~repro.counting.api.CountRequest` (or a raw CNF) and return
  :class:`~repro.counting.api.CountResult` objects carrying the count plus
  provenance — exactness, backend name, wall time, whether the answer came
  from the in-memory memo, the disk store or actual backend work, and the
  :class:`~repro.counting.api.EngineStats` delta the call caused.  The
  historical ``count`` / ``count_many`` / ``count_formula`` survive as
  thin bare-``int`` shims over the typed path, so every cached or fanned
  out count flows through one code path;
* results are memoized keyed on the CNF's canonical packed signature
  (:meth:`repro.logic.cnf.CNF.signature`), so a cache hit is bit-identical
  to the cold call by construction;
* with ``EngineConfig(cache_dir=...)`` the count memo is backed by a
  disk-persistent :class:`repro.counting.store.CountStore` and the
  *compilation* memos (translations, tree regions) by a
  :class:`repro.counting.store.BlobStore`, so a table re-run in a fresh
  process performs zero backend counts and zero recompilations;
* with ``EngineConfig(workers=N)`` a ``solve_many`` batch is partitioned
  into memo hits, disk-store hits and cold problems, and the cold problems
  fan out over an engine-owned *persistent*
  :class:`repro.counting.parallel.WorkerPool` — forked lazily on the first
  cold batch, reused across batches and table rows, released by
  ``engine.close()`` (the engine is a context manager);
* the engine owns a bounded LRU
  :class:`repro.counting.component_cache.ComponentCache` installed on
  backends that declare ``owns_component_cache``, so the *sub-problems* of
  different counting calls share work too (``EngineConfig(component_cache_mb=…)``,
  0 to opt out); with ``cache_dir`` configured the cache additionally
  *spills to disk* (``EngineConfig(component_spill=…)``, on by default):
  evictions and ``close()`` persist entries into a
  :class:`repro.counting.store.ComponentStore` and misses consult it
  before recounting, so component work survives engine restarts;
* requests with ``strategy="per-path"`` decompose a tree-region count into
  one sub-problem per disjoint path cube (``mc(φ∧τ) = Σ_paths mc(φ∧path)``)
  — the cubes are unit clauses that propagate hard, and the sub-problems
  flow through the same memo/store/fan-out machinery, deduping shared
  paths across trees and sessions;
* when the backend declares ``conditions_cubes`` (the ``compiled``
  backend), cold per-path sub-problems skip independent counting
  entirely: the base formula is compiled *once* into a
  :class:`~repro.counting.circuit.Circuit` and every ``mc(φ∧path)`` is
  answered by unit-cube conditioning — a linear DAG pass — with
  ``source="circuit"`` provenance.  Compiled circuits are memoized
  in-process and persisted in a fourth disk tier
  (:class:`repro.counting.store.CircuitStore`, ``EngineConfig(circuit_store=…)``),
  so a warm restart performs zero compilations
  (``EngineStats.circuit_store_hits``);
* when the backend declares ``routes`` (the ``composite`` backend), cold
  problems are *dispatched*: the engine asks the backend where each
  problem should go (``route(cnf)``), bumps the per-route
  :class:`~repro.counting.api.EngineStats` counter, counts on the routed
  target under the request's limits, and stamps the decision on the
  result (``CountResult.routed_to``).  Approx-routed results carry the
  target's (ε, δ) and are never memoized or persisted — the same
  discipline inexact fallback results follow — and the approx route is
  refused outright for exact-precision and per-path problems;
* failures are *typed and contained*: budget exhaustions, wall-clock
  deadline overruns (``CountRequest(deadline=...)``) and workers lost to
  SIGKILL/OOM become per-problem
  :class:`~repro.counting.api.CountFailure` outcomes instead of batch
  aborts — completed counts always merge into the caches, the pool
  respawns dead workers and re-dispatches their problems within a retry
  budget, and with ``EngineConfig(fallback="approxmc")`` the *degradation
  ladder* re-counts failed problems on an explicitly-provenanced fallback
  backend (``solve_many(..., on_failure="return")`` surfaces the
  remaining failures; the default re-raises the first original
  exception);
* ``translate`` memoizes grounded-property compilations (property × scope ×
  symmetry × polarity), keyed on the property's *structural* identity —
  two distinct properties sharing a name never collide;
* ``ground_truth`` memoizes the :class:`repro.core.accmc.GroundTruth`
  objects built on those translations;
* ``region`` memoizes decision-tree label-region CNFs keyed on the paths.

Routing decisions — disk persistence, worker fan-out, component-cache
installation, the ``count_formula`` fast path — are negotiated purely
through the backend's declared :class:`~repro.counting.api.Capabilities`
(``engine.capabilities``); the engine never sniffs attributes.  Backends
are constructible by registered name via
:func:`repro.counting.api.make_backend`, and attribute access falls
through to the wrapped backend, so the engine is a drop-in ``counter``
anywhere one is accepted.  One engine is meant to be shared across every
``AccMC``, ``DiffMC`` and pipeline in a process — or owned by one
:class:`repro.core.session.MCMLSession`, the facade over the whole
pipeline; ``clear()`` resets the in-memory memos (the disk stores, if any,
survive — that is their point).
"""

from __future__ import annotations

import pickle
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import NamedTuple

from repro.counting import faults
from repro.counting.api import (
    Capabilities,
    CountFailure,
    CountRequest,
    CountResult,
    EngineStats,
    capabilities_of,
    make_backend,
)
from repro.counting.component_cache import ComponentCache
from repro.counting.parallel import WorkerPool, default_workers
from repro.counting.store import (
    BlobStore,
    CircuitStore,
    ComponentStore,
    CountStore,
    signature_key,
    text_key,
)
from repro.logic.cnf import CNF

#: Attribute-absence sentinel for budget overrides (no ``hasattr`` here).
_MISSING = object()


@dataclass(frozen=True)
class EngineConfig:
    """Scaling knobs for a :class:`CountingEngine`.

    Parameters
    ----------
    workers:
        Processes a cold ``solve_many`` batch fans out over.  ``1`` (the
        default) keeps everything in-process; ``0`` or negative means one
        per core; results are bit-identical either way.  The pool is owned
        by the engine: forked lazily on the first cold parallel batch,
        reused across ``solve_many`` calls, released by ``engine.close()``
        (and lazily re-forked should the engine count again afterwards).
    cache_dir:
        Directory for the disk-persistent caches.  ``None`` disables
        persistence; any path makes counts *and compilations* survive (and
        warm) across processes and sessions.  Counts persist only for
        backends whose capabilities declare ``exact`` (estimates are not
        portable); compilations are backend-independent and persist for
        every backend.
    component_cache_mb:
        Approximate byte budget (in MiB) of the engine-owned
        :class:`~repro.counting.component_cache.ComponentCache` shared
        across every counting call — conjunctions of the same φ with
        different tree regions hit components the previous problems
        already solved.  ``0`` opts out (the backend falls back to
        per-call component caching).  Warm hits are bit-identical to cold
        recounts by construction; only backends declaring
        ``owns_component_cache`` (the exact counter) participate.
    component_spill:
        Spill the component cache to disk
        (:class:`~repro.counting.store.ComponentStore` under
        ``cache_dir``): LRU evictions and ``close()`` persist entries,
        and a later engine's misses consult the store before recounting —
        so a φ's *component* work survives restarts the way whole counts
        already do (``EngineStats.component_spill_hits`` reports the
        promotions).  On by default but only active when ``cache_dir`` is
        configured and the component cache itself is; ``0``/``False``
        opts out.  Worker deltas reach the shared cache and hence the
        spill too.
    circuit_store:
        Persist compiled circuits
        (:class:`~repro.counting.store.CircuitStore` under ``cache_dir``):
        per-path base formulas compiled by a ``conditions_cubes`` backend
        are pickled keyed on their CNF signature, so a warm engine restart
        answers conditioning queries with *zero* recompilations
        (``EngineStats.circuit_store_hits``).  On by default but only
        active when ``cache_dir`` is configured and the backend declares
        ``conditions_cubes``; ``0``/``False`` opts out.

    fallback:
        Registered backend name (see
        :func:`repro.counting.api.make_backend`) the *degradation ladder*
        re-routes failed problems to — a problem that exhausts its node
        budget, exceeds its wall-clock deadline, or loses its worker past
        the retry budget is re-counted once on this backend instead of
        failing the batch.  ``None`` (the default) disables the ladder.
        The fallback result carries explicit provenance
        (``source="fallback"``, ``fallback_from``, ``exact``/(ε, δ)), and
        an inexact fallback (e.g. ``"approxmc"``) is never used for
        requests demanding exact precision nor for per-path sub-problems
        (summing estimates compounds their error) — those failures stand.
        Inexact fallback counts are never memoized or persisted.
    fallback_opts:
        Keyword options for constructing the fallback backend (e.g.
        ``{"epsilon": 0.8, "rounds": 1}``).
    deadline_grace:
        Parent-side watchdog slack on top of a request's ``deadline``
        before a wedged worker is killed (the cooperative
        ``CounterTimeout`` normally fires inside the worker well before
        this backstop).
    task_retries:
        Re-dispatches granted to a problem whose worker *died*
        (SIGKILL/OOM) before the problem is declared lost.
    fanout_min_vars:
        Intra-problem fan-out threshold: when set (and ``workers > 1``
        and the backend declares ``decomposes``), a *single* cold problem
        whose top-level component split yields at least two components of
        at least this many variables is served by counting the components
        as independent sub-problems — through the same memo → store →
        worker-pool machinery batches use — and multiplying the
        sub-counts (``EngineStats.component_fanouts`` /
        ``fanout_subproblems``).  Bit-identical to the serial count by
        construction (components are independent, and the split is the
        one the serial search performs anyway); a per-problem
        budget/deadline is enforced on *each* sub-component, so the
        failure taxonomy is preserved.  ``None`` (the default) keeps
        single-problem counting fully in-process.

    Fan-out additionally requires the backend to declare ``parallel_safe``
    (worker clones reproduce the serial count stream): engines over seeded
    approximate backends quietly stay serial and unpersisted.
    """

    workers: int = 1
    cache_dir: str | Path | None = None
    component_cache_mb: float = 512.0
    component_spill: bool = True
    circuit_store: bool = True
    fallback: str | None = None
    fallback_opts: dict | None = None
    deadline_grace: float = 5.0
    task_retries: int = 2
    fanout_min_vars: int | None = None


def _prop_key(prop) -> object:
    """Structural memo identity of a property.

    :class:`repro.spec.properties.Property` is a frozen dataclass over a
    frozen-dataclass formula AST, so the object itself hashes and compares
    structurally — two distinct ``Property`` objects sharing a *name* but
    differing in formula get distinct keys (and two structurally equal ones
    correctly share).  Unhashable stand-ins fall back to a name + formula
    repr, which still separates same-named properties.
    """
    try:
        hash(prop)
    except TypeError:
        return (
            type(prop).__name__,
            getattr(prop, "name", None),
            repr(getattr(prop, "formula", prop)),
        )
    return prop


class _Flat(NamedTuple):
    """One already-expanded problem of a ``solve_many`` batch."""

    #: The sub-problem CNF — ``None`` for conditioned sub-problems, which
    #: are identified by ``(base, cube)`` and never materialized unless
    #: the degradation ladder needs a formula to recount
    #: (:meth:`materialize`).
    cnf: CNF | None
    budget: int | None
    deadline: float | None
    exact_only: bool  #: request demanded exact precision
    per_path: bool  #: sub-problem of a per-path decomposition
    #: With a ``conditions_cubes`` backend: the per-path base CNF and this
    #: sub-problem's unit cube, so a cold miss conditions the base's
    #: compiled circuit instead of counting ``cnf`` independently.
    base: CNF | None = None
    cube: tuple[int, ...] | None = None
    #: Memo key override for conditioned sub-problems:
    #: ``("cube", base.signature(), cube)``.  Composing the (memoized)
    #: base signature with the cube skips packing and hashing a fresh
    #: sub-CNF per cube — the difference between microsecond and
    #: millisecond query cost on a warm circuit.
    key: tuple | None = None

    def materialize(self) -> CNF:
        """The sub-problem CNF, built on demand for conditioned subs.

        Bit-identical to :meth:`repro.counting.api.CountRequest.expand`'s
        construction: the base plus one unit clause per cube literal.
        """
        if self.cnf is not None:
            return self.cnf
        sub = self.base.copy()
        for literal in self.cube:
            sub.add_clause((literal,))
        return sub


class CountingEngine:
    """Memoizing, optionally parallel and disk-backed counting front door.

    Parameters
    ----------
    counter:
        Any object satisfying :class:`repro.counting.api.CounterBackend`
        (default: :class:`repro.counting.exact.ExactCounter`); build one
        by registered name with
        :func:`repro.counting.api.make_backend`.  Passing an engine
        returns its backend wrapped afresh — engines do not nest.
    config:
        :class:`EngineConfig` with the parallelism / persistence knobs.
    """

    def __init__(self, counter=None, config: EngineConfig | None = None) -> None:
        if isinstance(counter, CountingEngine):
            counter = counter.counter
        from repro.counting.exact import ExactCounter

        self.counter = counter if counter is not None else ExactCounter()
        self.config = config if config is not None else EngineConfig()
        #: The backend's declared contract — the only thing routing reads.
        self.capabilities: Capabilities = capabilities_of(self.counter)
        self.backend_name: str = getattr(
            self.counter, "name", type(self.counter).__name__
        )
        caps = self.capabilities
        # workers <= 0 means "one per core".
        self._workers = (
            self.config.workers if self.config.workers > 0 else default_workers()
        )
        # Count persistence is reserved for exact backends: exact counts
        # are interchangeable across backends and sessions, whereas an
        # (ε, δ) estimate persisted to a shared cache_dir would silently
        # poison later exact runs.  Compilation memos carry no counts, so
        # they persist for every backend.
        self.store: CountStore | None = (
            CountStore(self.config.cache_dir)
            if self.config.cache_dir is not None and caps.exact
            else None
        )
        self.memo_store: BlobStore | None = (
            BlobStore(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        # The engine owns the component cache and installs it on backends
        # declaring ``owns_component_cache``, so serial counts, every
        # problem of a batch, and (via the worker delta protocol) parallel
        # counts all warm one shared cache.  ``component_cache_mb=0`` opts
        # out: the backend reverts to per-call caching.
        self.component_cache: ComponentCache | None = None
        if caps.exact and caps.owns_component_cache:
            mb = self.config.component_cache_mb
            if mb and mb > 0:
                self.component_cache = ComponentCache(max_bytes=int(mb * (1 << 20)))
                self.counter.component_cache = self.component_cache
            else:
                self.counter.component_cache = None
        # The spill tier rides on both knobs: a component cache to spill
        # and a cache_dir to spill into.  Attached to the shared cache, so
        # evictions, close-time spills and worker deltas all reach disk.
        self.component_store: ComponentStore | None = None
        if (
            self.component_cache is not None
            and self.config.cache_dir is not None
            and self.config.component_spill
        ):
            self.component_store = ComponentStore(self.config.cache_dir)
            self.component_cache.attach_spill(self.component_store)
        # The circuit tier rides on the backend's conditions_cubes
        # declaration: only a compiling backend produces circuits worth
        # keeping, and only per-path conditioning consumes them.
        self.circuit_store: CircuitStore | None = None
        if (
            caps.conditions_cubes
            and self.config.cache_dir is not None
            and self.config.circuit_store
        ):
            self.circuit_store = CircuitStore(self.config.cache_dir)
        #: In-process circuit memo: base signature -> compiled Circuit.
        self._circuits: dict[tuple, object] = {}
        self._component_spill_hits_base = 0
        self._store_degradations_base = 0
        self._pool: WorkerPool | None = None
        self._pool_respawns_base = 0
        self._pool_retries_base = 0
        # The degradation ladder's fallback backend, built eagerly so a
        # misconfigured name fails at construction, not at the first
        # failure it was supposed to absorb.
        self._fallback_counter = None
        self._fallback_caps: Capabilities | None = None
        if self.config.fallback is not None:
            self._fallback_counter = make_backend(
                self.config.fallback, **(self.config.fallback_opts or {})
            )
            self._fallback_caps = capabilities_of(self._fallback_counter)
        self.stats = EngineStats()
        self._counts: dict[tuple, int] = {}
        self._translations: dict[tuple, object] = {}
        self._ground_truths: dict[tuple, object] = {}
        self._regions: dict[tuple, CNF] = {}
        #: The concurrency guard.  The engine (and the backend it wraps)
        #: is single-threaded by design — memo dicts, EngineStats and the
        #: backend's knob overrides (``_limits``) all assume one caller at
        #: a time.  ``solve*`` and the compilation memos serialize on this
        #: reentrant lock so a multi-threaded *caller* (the counting
        #: service's solver executor is the only sanctioned one) gets
        #: bit-identical counts and consistent stats; true parallelism
        #: comes from the engine's worker pool, never from racing threads
        #: into one backend.
        self._lock = threading.RLock()
        self._sync_store_degradations()

    def __getattr__(self, name: str):
        # Fall through to the backend for everything the engine does not
        # define (``max_nodes``, ``epsilon``, …), so the engine is a
        # drop-in counter.  ``count_formula`` is special-cased: when the
        # backend's capabilities declare formula counting the engine
        # serves a memoizing wrapper (so the call stops silently bypassing
        # memo and stats); when they do not, the AttributeError points at
        # ``count``.
        if name in ("counter", "capabilities"):
            # guard against recursion before __init__ ran
            raise AttributeError(name)
        if name == "count_formula":
            if self.capabilities.counts_formulas:
                return self._count_formula_shim
            raise AttributeError(
                f"backend {self.backend_name!r} does not count formulas "
                "(capabilities.counts_formulas is False); Tseitin-translate "
                "and use engine.count(cnf)"
            )
        return getattr(self.counter, name)

    # -- typed counting API ----------------------------------------------------------

    def solve(
        self, problem: CountRequest | CNF, *, on_failure: str = "raise"
    ) -> CountResult:
        """Solve one counting problem, returning the typed result."""
        return self.solve_many([problem], on_failure=on_failure)[0]

    def solve_many(self, problems, *, on_failure: str = "raise"):
        """Solve a batch of problems, reusing every cache layer.

        Accepts :class:`~repro.counting.api.CountRequest` objects or raw
        CNFs (frozen into requests with default precision/budget).  The
        batch is partitioned into in-memory memo hits, disk-store hits and
        cold problems (duplicates inside the batch collapse onto the first
        occurrence and report as memo hits).  Cold problems run on the
        backend — across ``config.workers`` processes when the batch and
        the backend's capabilities allow — and their results merge back
        into the memo and the disk store, so the parallel path is
        bit-identical to the serial one by construction.  Each result
        records its provenance; ``stats_delta`` is the whole batch's
        telemetry movement (shared by the batch's results).

        Requests with ``strategy="per-path"`` are *decomposed*: the region
        they describe is a disjoint union of path cubes, so the request
        expands into one sub-problem per cube (the base CNF plus unit
        clauses, which propagate hard) and the result is the sum of the
        sub-counts.  The sub-problems flow through the same memo → store →
        fan-out machinery as everything else, which is what makes shared
        paths dedup across trees, batches and sessions.  On a
        ``conditions_cubes`` backend the sub-problems are keyed on
        ``(base, cube)`` instead — never materialized, never store-backed
        (the persistent artifact is the base's compiled circuit, and
        re-conditioning it is cheaper than a disk read) — and the cold
        remainder is answered by conditioning passes.  Summing estimates
        would compound their error, so per-path requests require an exact
        backend (consumers negotiate via ``capabilities.exact`` and fall
        back to the conjunction route — see :class:`repro.core.accmc.AccMC`).

        Failure semantics.  A problem can fail without poisoning the
        batch: a node-budget exhaustion
        (:class:`~repro.counting.exact.CounterBudgetExceeded`), a
        wall-clock deadline overrun
        (:class:`~repro.counting.exact.CounterTimeout`), or a worker lost
        past its retry budget each produce a typed
        :class:`~repro.counting.api.CountFailure` for *that position* —
        every other problem still completes, and completed counts always
        reach the memo and the disk store (a retry resumes, it does not
        recount).  With ``config.fallback`` set, failed problems are
        re-counted once on the fallback backend first (results carry
        ``source="fallback"`` provenance).  ``on_failure`` selects what
        happens to failures that remain: ``"raise"`` (the default)
        re-raises the first failure's original exception after the batch
        completes; ``"return"`` returns the ``CountFailure`` objects in
        their batch positions alongside the successes (a failed per-path
        request is represented by its first failed sub-problem).

        Thread safety.  ``solve``/``solve_many``/``solve_formula`` (and
        the compilation memos) serialize on the engine's internal
        reentrant lock: concurrent callers — the counting service's
        solver threads are the only sanctioned ones — get bit-identical
        counts and consistent :class:`EngineStats`, never interleaved
        memo/knob state.  Parallelism belongs to the worker pool, not to
        caller threads.
        """
        with self._lock:
            return self._solve_many_locked(problems, on_failure)

    def _solve_many_locked(self, problems, on_failure: str):
        if on_failure not in ("raise", "return"):
            raise ValueError(
                f"on_failure must be 'raise' or 'return', got {on_failure!r}"
            )
        before = self.stats.copy()
        caps = self.capabilities
        flat: list[_Flat] = []
        #: per input problem: ("one", flat index), ("sum", flat range),
        #: or ("ready", already-solved result) for the conditioning lane
        shape: list[tuple] = []
        for problem in problems:
            if isinstance(problem, CountRequest):
                if problem.precision == "exact" and not caps.exact:
                    raise ValueError(
                        f"request demands exact precision but backend "
                        f"{self.backend_name!r} is approximate"
                    )
                exact_only = problem.precision == "exact"
                if problem.strategy == "per-path":
                    if not caps.exact:
                        raise ValueError(
                            f"per-path requests sum exact sub-counts but "
                            f"backend {self.backend_name!r} is approximate; "
                            "use strategy='conjunction'"
                        )
                    if caps.conditions_cubes:
                        # Dedicated lane: the request is answered by
                        # conditioning its base's compiled circuit, one
                        # linear pass per cold cube — no sub-CNFs, no
                        # per-cube result objects, no disk round-trips.
                        shape.append(
                            ("ready", self._condition_request(problem, exact_only))
                        )
                        continue
                    start = len(flat)
                    flat.extend(
                        _Flat(sub, problem.budget, problem.deadline, exact_only, True)
                        for sub in problem.expand()
                    )
                    shape.append(("sum", range(start, len(flat))))
                    continue
                flat.append(
                    _Flat(
                        problem.cnf(), problem.budget, problem.deadline,
                        exact_only, False,
                    )
                )
            else:
                flat.append(_Flat(problem, None, None, False, False))
            shape.append(("one", len(flat) - 1))

        partial = self._solve_flat(flat, caps)
        self._sync_component_stats()
        self._sync_store_degradations()
        stats_delta = self.stats.delta_since(before)
        results: list[CountResult | CountFailure] = []
        primary: CountFailure | None = None
        for kind, ref in shape:
            if kind == "ready":
                # A conditioned per-path request, already summed.
                if isinstance(ref, CountFailure):
                    if primary is None:
                        primary = ref
                    results.append(ref)
                    continue
                results.append(replace(ref, stats_delta=stats_delta))
                continue
            if kind == "one":
                r = partial[ref]
                if isinstance(r, CountFailure):
                    if primary is None:
                        primary = r
                    results.append(r)
                    continue
                results.append(
                    CountResult(
                        value=r.value,
                        exact=r.exact,
                        backend=r.backend,
                        source=r.source,
                        elapsed_seconds=r.elapsed_seconds,
                        fallback_from=r.fallback_from,
                        routed_to=r.routed_to,
                        epsilon=r.epsilon,
                        delta=r.delta,
                        stats_delta=stats_delta,
                    )
                )
            else:
                subs = [partial[i] for i in ref]
                failed = next(
                    (s for s in subs if isinstance(s, CountFailure)), None
                )
                if failed is not None:
                    if primary is None:
                        primary = failed
                    results.append(failed)
                    continue
                results.append(self._sum_result(subs, stats_delta))
        if primary is not None and on_failure == "raise":
            if primary.cause is not None:
                raise primary.cause from primary
            raise primary
        return results

    def _solve_flat(
        self, items: list[_Flat], caps: Capabilities, allow_fanout: bool = True
    ):
        """Solve already-expanded :class:`_Flat` problems (no delta attach).

        Returns one :class:`~repro.counting.api.CountResult` or
        :class:`~repro.counting.api.CountFailure` per item.
        ``allow_fanout=False`` marks the recursive call serving one
        fanned-out problem's components — components never fan out again.
        """
        from repro.counting.exact import CounterAbort

        results: list[CountResult | CountFailure | None] = [None] * len(items)
        positions: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        cold: dict[tuple, _Flat] = {}
        for i, item in enumerate(items):
            self.stats.count_calls += 1
            key = item.cnf.signature()
            cached = self._counts.get(key)
            if cached is not None:
                self.stats.count_hits += 1
                results[i] = self._hit(cached, "memo")
                continue
            if key in positions:
                # Duplicate of a colder batch member: one backend count
                # will serve both, exactly like a serial memo hit.
                self.stats.count_hits += 1
                positions[key].append(i)
                continue
            positions[key] = [i]
            cold[key] = item
            order.append(key)

        missing = order
        hashed: dict[tuple, str] = {}
        if self.store is not None and order:
            hashed = {key: signature_key(key) for key in order}
            found = self.store.get_many([hashed[key] for key in order])
            missing = []
            for key in order:
                value = found.get(hashed[key])
                if value is None:
                    missing.append(key)
                    continue
                self.stats.store_hits += 1
                self._counts[key] = value
                hit = self._hit(value, "store")
                for i in positions[key]:
                    results[i] = hit

        failed: dict[tuple, CountFailure] = {}

        if missing:
            # Budgeted and deadlined requests stay in-process (the knob
            # overrides must not leak into worker clones); the rest may
            # fan out.
            pooled = [
                key
                for key in missing
                if cold[key].budget is None and cold[key].deadline is None
            ]
            limited = set(pooled)
            serial = [key for key in missing if key not in limited]
            completed: dict[tuple, tuple[int, float]] = {}
            #: routing backend only: key -> the Route its problem took,
            #: consulted when results merge (exactness, routed_to, ε/δ,
            #: and whether the value may be memoized/persisted).
            routed: dict[tuple, object] = {}
            deltas: list = []
            try:
                pool = None
                if (
                    self._workers > 1
                    and len(pooled) > 1
                    and caps.exact
                    and caps.parallel_safe
                ):
                    pool = self._ensure_pool()
                if pool is not None:
                    try:
                        outcomes = pool.run_tasks(
                            [cold[key].cnf for key in pooled]
                        )
                    finally:
                        self._sync_pool_stats(pool)
                    for key, outcome in zip(pooled, outcomes):
                        if isinstance(outcome, CountFailure):
                            failed[key] = outcome
                            continue
                        completed[key] = (outcome.value, outcome.elapsed_seconds)
                        if outcome.delta:
                            deltas.extend(outcome.delta)
                else:
                    serial = pooled + serial
                for key in serial:
                    item = cold[key]
                    if allow_fanout:
                        fanned = self._maybe_fanout(item, caps)
                        if fanned is not None:
                            status, payload, seconds = fanned
                            if status == "ok":
                                completed[key] = (payload, seconds)
                            else:
                                # The components already went through the
                                # degradation ladder (and the timeout
                                # stats) inside the recursive call; the
                                # first surviving failure is the parent's
                                # typed outcome.
                                for i in positions[key]:
                                    results[i] = payload
                            continue
                    started = time.perf_counter()
                    # A routing backend is asked *where* first, so the
                    # decision lands in stats and provenance even when
                    # the count itself later aborts.  The approx-route
                    # refusal (exact precision / per-path demands on an
                    # oversized problem) raises ValueError out of the
                    # batch, like the engine's other contract checks.
                    route = None
                    route_counter = self.counter
                    route_backend = self.backend_name
                    if caps.routes:
                        route = self.counter.route(
                            item.cnf,
                            prefer_exact=item.exact_only or item.per_path,
                        )
                        routed[key] = route
                        field = route.rule.stats_field
                        setattr(self.stats, field, getattr(self.stats, field) + 1)
                        route_counter = route.counter
                        route_backend = route.rule.target
                    try:
                        with self._limits(
                            item.budget, item.deadline, counter=route_counter
                        ):
                            value = route_counter.count(item.cnf)
                    except CounterAbort as exc:
                        # Budget/deadline aborts are per-problem outcomes,
                        # not batch aborts: record and keep counting — the
                        # rest of the batch is still worth paying for.
                        failed[key] = CountFailure.from_exception(
                            exc,
                            backend=route_backend,
                            elapsed_seconds=time.perf_counter() - started,
                        )
                        continue
                    completed[key] = (value, time.perf_counter() - started)
            finally:
                # Components the workers solved warm the shared cache, so
                # the serial paths (and later batches' pickled clones)
                # start from them too.
                if deltas and self.component_cache is not None:
                    self.component_cache.absorb(deltas)
                # Merge whatever completed even when a later problem
                # failed or raised: counts already paid for must reach the
                # memo and the disk store, so a retry resumes instead of
                # re-counting from scratch.
                self.stats.backend_calls += len(completed)
                fresh: list[tuple[str, int]] = []
                for key, (value, seconds) in completed.items():
                    route = routed.get(key)
                    if route is None:
                        exact = caps.exact
                        routed_to = epsilon = delta = None
                    else:
                        # Exactness (and ε/δ) are the *routed target's*;
                        # approx-routed values are neither memoized nor
                        # persisted — like inexact fallback counts, an
                        # estimate must never warm an exact cache.
                        exact = route.capabilities.exact
                        routed_to = route.rule.target
                        epsilon = (
                            None if exact else getattr(route.counter, "epsilon", None)
                        )
                        delta = (
                            None if exact else getattr(route.counter, "delta", None)
                        )
                    if exact:
                        self._counts[key] = value
                    result = CountResult(
                        value=value,
                        exact=exact,
                        backend=self.backend_name,
                        source="backend",
                        elapsed_seconds=seconds,
                        routed_to=routed_to,
                        epsilon=epsilon,
                        delta=delta,
                    )
                    for i in positions[key]:
                        results[i] = result
                    if self.store is not None and exact:
                        fresh.append((hashed[key], value))
                if fresh and self.store is not None:
                    self.store.put_many(fresh)

        # The degradation ladder: each failed problem gets one shot on
        # the configured fallback backend; failures the ladder cannot
        # absorb stand as the problem's typed outcome.
        for key, failure in failed.items():
            if failure.kind == "timeout":
                self.stats.timeouts += 1
            outcome = self._try_fallback(failure, cold[key])
            if isinstance(outcome, CountResult):
                if self._fallback_caps is not None and self._fallback_caps.exact:
                    # Exact fallback counts are interchangeable with
                    # the primary backend's; estimates are neither
                    # memoized nor persisted.
                    self._counts[key] = outcome.value
                    if self.store is not None:
                        self.store.put(hashed[key], outcome.value)
            for i in positions[key]:
                results[i] = outcome

        return results

    def _try_fallback(self, failure: CountFailure, item: _Flat):
        """One fallback attempt for a failed problem (or the failure itself).

        The ladder only absorbs *resource* failures (timeout, budget,
        worker-lost) — a genuine backend error would fail on any backend.
        An inexact fallback is refused for exact-precision requests and
        per-path sub-problems.  The fallback does *not* inherit the
        request's budget/deadline limits: the ladder exists to still
        produce an answer after those limits already failed, and a
        fallback algorithm's cost profile is unrelated to the one they
        were calibrated for — bound the fallback through its own
        construction knobs (``fallback_opts``, e.g. ``{"deadline": ...}``)
        when needed.  A fallback's own abort, or its failure to converge,
        leaves the original failure standing.
        """
        from repro.counting.exact import CounterAbort

        fallback = self._fallback_counter
        if fallback is None or failure.kind == "error":
            return failure
        fb_caps = self._fallback_caps
        if not fb_caps.exact and (item.exact_only or item.per_path):
            return failure
        started = time.perf_counter()
        try:
            value = fallback.count(item.materialize())
        except (CounterAbort, RuntimeError):
            return failure
        self.stats.fallbacks += 1
        return CountResult(
            value=value,
            exact=fb_caps.exact,
            backend=getattr(fallback, "name", type(fallback).__name__),
            source="fallback",
            elapsed_seconds=time.perf_counter() - started,
            fallback_from=self.backend_name,
            epsilon=None if fb_caps.exact else getattr(fallback, "epsilon", None),
            delta=None if fb_caps.exact else getattr(fallback, "delta", None),
        )

    def _maybe_fanout(self, item: _Flat, caps: Capabilities):
        """Try serving one cold problem through its component split.

        The intra-problem fan-out point (``EngineConfig(fanout_min_vars)``):
        the backend's :meth:`decompose` splits the problem into independent
        components whose counts multiply, and the components flow through
        the same memo → store → worker-pool machinery a batch does — so a
        single hard problem becomes parallel work at batch width 1, and
        structurally identical components (canonically renumbered by the
        backend) collapse onto one backend call.  Requires an exact,
        ``parallel_safe``, ``decomposes`` backend; routing backends are
        excluded (the split is the *routed target's* business, and the
        router may not even own a ``decompose``).

        Returns ``None`` when the problem does not fan out (the caller
        counts it normally), ``("ok", value, seconds)`` on success —
        merged, memoized and persisted exactly like a direct backend
        count — or ``("fail", CountFailure, seconds)`` when a component
        failed past the degradation ladder (a product with a missing
        factor is meaningless, so the first failure stands for the
        parent).  A per-problem budget/deadline is applied to *each*
        component, preserving the typed failure taxonomy per sub-problem.
        """
        from repro.counting.exact import CounterAbort

        min_vars = self.config.fanout_min_vars
        if (
            min_vars is None
            or self._workers <= 1
            or item.cnf is None
            or caps.routes
            or not (caps.exact and caps.parallel_safe and caps.decomposes)
        ):
            return None
        started = time.perf_counter()
        try:
            split = self.counter.decompose(item.cnf, min_component_vars=min_vars)
        except CounterAbort:
            # Decomposition itself never spends search nodes; treat an
            # abort defensively as "did not decompose".
            return None
        if split is None:
            return None
        multiplier, subs = split
        self.stats.component_fanouts += 1
        self.stats.fanout_subproblems += len(subs)
        flats = [
            _Flat(sub, item.budget, item.deadline, item.exact_only, item.per_path)
            for sub in subs
        ]
        outcomes = self._solve_flat(flats, caps, allow_fanout=False)
        value = multiplier
        for outcome in outcomes:
            if isinstance(outcome, CountFailure):
                return ("fail", outcome, time.perf_counter() - started)
            value *= outcome.value
        return ("ok", value, time.perf_counter() - started)

    def _condition_request(
        self, problem: CountRequest, exact_only: bool
    ) -> CountResult | CountFailure:
        """Answer one per-path request by conditioning its compiled circuit.

        The fast lane for ``conditions_cubes`` backends.  The request's
        base CNF is identified by a cheap canonical key, its compiled
        :class:`~repro.counting.circuit.Circuit` obtained once
        (in-process memo → :class:`~repro.counting.store.CircuitStore` →
        one compilation under the request's budget/deadline), and every
        cold cube answered by one linear conditioning pass.  Sub-counts
        merge into the in-process count memo — duplicate cubes inside
        the request and across batches report as memo hits — but
        deliberately stay out of the whole-count disk store:
        re-conditioning a warm circuit is cheaper than a disk read, so
        the compact persistent artifact is the circuit, not one row per
        cube.  A compile abort sends each cold cube through the
        degradation ladder; a failure the ladder cannot absorb fails the
        whole request (its sum is meaningless with a term missing).
        """
        from repro.counting.exact import CounterAbort

        stats = self.stats
        started = time.perf_counter()
        # Order-insensitive, content-canonical, and far cheaper than a
        # packed signature — the circuit answers the whole request, so
        # per-cube identity is just this prefix plus the cube.
        identity = (
            "cube",
            problem.num_vars,
            problem.projection,
            frozenset(problem.clauses),
        )
        counts = self._counts
        keys: list[tuple] = []
        values: dict[tuple, int] = {}
        sources: set[str] = set()
        cold: list[tuple[tuple, tuple[int, ...]]] = []
        seen_cold: set[tuple] = set()
        hits = 0
        for cube in problem.cubes:
            key = identity + (cube,)
            keys.append(key)
            if key in values or key in seen_cold:
                # Duplicate inside the request: one pass serves both,
                # exactly like a serial memo hit.
                hits += 1
                continue
            cached = counts.get(key)
            if cached is not None:
                hits += 1
                values[key] = cached
                sources.add("memo")
                continue
            seen_cold.add(key)
            cold.append((key, cube))
        stats.count_calls += len(keys)
        stats.count_hits += hits

        if cold:
            try:
                circuit = self._circuit_for(
                    identity, problem.cnf(), problem.budget, problem.deadline
                )
            except CounterAbort as exc:
                # One compilation serves every cold cube, so its abort
                # is each one's failure; the degradation ladder still
                # gets a per-cube shot.
                failure = CountFailure.from_exception(
                    exc,
                    backend=self.backend_name,
                    elapsed_seconds=time.perf_counter() - started,
                )
                for key, cube in cold:
                    if failure.kind == "timeout":
                        stats.timeouts += 1
                    outcome = self._try_fallback(
                        failure,
                        _Flat(
                            None, problem.budget, problem.deadline,
                            exact_only, True, problem.cnf(), cube, key,
                        ),
                    )
                    if isinstance(outcome, CountFailure):
                        return outcome
                    values[key] = outcome.value
                    self._counts[key] = outcome.value
                    sources.add("fallback")
            else:
                for key, cube in cold:
                    values[key] = value = circuit.condition(cube)
                    self._counts[key] = value
                stats.circuit_hits += len(cold)
                sources.add("circuit")

        if "fallback" in sources:
            source = "fallback"
        elif "circuit" in sources:
            source = "circuit"
        else:
            source = "memo"
        return CountResult(
            value=sum(values[key] for key in keys),
            exact=True,
            backend=self.backend_name,
            source=source,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _circuit_for(self, base_identity: tuple, base: CNF, budget, deadline):
        """The compiled circuit for a per-path base (memo → store → compile).

        ``base_identity`` is the composed-key prefix built in
        ``solve_many`` — ``("cube", num_vars, projection,
        frozenset(clauses))`` — canonical across processes and sessions,
        so its :func:`~repro.counting.store.signature_key` is a stable
        :class:`~repro.counting.store.CircuitStore` address.
        """
        circuit = self._circuits.get(base_identity)
        if circuit is not None:
            return circuit
        disk_key = None
        if self.circuit_store is not None:
            disk_key = signature_key(base_identity)
            circuit = self.circuit_store.get(disk_key)
            if circuit is not None:
                self.stats.circuit_store_hits += 1
                self._circuits[base_identity] = circuit
                return circuit
        with self._limits(budget, deadline):
            circuit = self.counter.compile(base)
        self.stats.circuit_compilations += 1
        self._circuits[base_identity] = circuit
        if disk_key is not None:
            self.circuit_store.put(disk_key, circuit)
        return circuit

    def _sum_result(self, subs: list[CountResult], delta) -> CountResult:
        """Fold per-path sub-results into one summed result.

        Provenance reports the *coldest* tier any sub-problem touched
        (fallback over backend over circuit over store over memo); an
        empty cube set (a region with no paths of that label) sums to 0
        without any work.
        """
        sources = {r.source for r in subs}
        if "fallback" in sources:
            source = "fallback"
        elif "backend" in sources:
            source = "backend"
        elif "circuit" in sources:
            source = "circuit"
        elif "store" in sources:
            source = "store"
        else:
            source = "memo"
        return CountResult(
            value=sum(r.value for r in subs),
            exact=self.capabilities.exact,
            backend=self.backend_name,
            source=source,
            elapsed_seconds=sum(r.elapsed_seconds for r in subs),
            stats_delta=delta,
        )

    def _sync_component_stats(self) -> None:
        """Mirror the component cache's spill promotions into EngineStats."""
        cache = self.component_cache
        if cache is not None and self.component_store is not None:
            self.stats.component_spill_hits = (
                cache.spill_hits - self._component_spill_hits_base
            )

    def _store_degradations_total(self) -> int:
        total = 0
        for store in (
            self.store,
            self.memo_store,
            self.component_store,
            self.circuit_store,
        ):
            if store is not None:
                total += store.degradations
        return total

    def _sync_store_degradations(self) -> None:
        """Mirror the disk tiers' self-repair events into EngineStats."""
        self.stats.store_degradations = (
            self._store_degradations_total() - self._store_degradations_base
        )

    def _sync_pool_stats(self, pool: WorkerPool) -> None:
        """Mirror the pool's self-healing counters into EngineStats.

        The pool's counters are cumulative over its lifetime; the engine
        tracks bases so each sync moves the stats by exactly the delta
        since the last one (and ``clear()``'s fresh EngineStats starts
        from zero without touching the live pool).
        """
        self.stats.worker_respawns += pool.respawns - self._pool_respawns_base
        self.stats.retries += pool.retries - self._pool_retries_base
        self._pool_respawns_base = pool.respawns
        self._pool_retries_base = pool.retries

    def solve_formula(self, formula, num_vars: int) -> CountResult:
        """Typed memoized whole-space formula count (fast-path backends).

        Served only when the backend's capabilities declare
        ``counts_formulas``; keys the count memo on the formula's
        structural hash (``Formula`` nodes hash structurally).  Formula
        counts stay in-memory only — the disk store is keyed on CNF
        signatures.
        """
        if not self.capabilities.counts_formulas:
            raise ValueError(
                f"backend {self.backend_name!r} does not count formulas "
                "(capabilities.counts_formulas is False)"
            )
        with self._lock:
            return self._solve_formula_locked(formula, num_vars)

    def _solve_formula_locked(self, formula, num_vars: int) -> CountResult:
        before = self.stats.copy()
        self.stats.count_calls += 1
        key = ("formula", formula, num_vars)
        cached = self._counts.get(key)
        if cached is not None:
            self.stats.count_hits += 1
            hit = self._hit(cached, "memo")
            return CountResult(
                value=hit.value,
                exact=hit.exact,
                backend=hit.backend,
                source=hit.source,
                stats_delta=self.stats.delta_since(before),
            )
        self.stats.backend_calls += 1
        started = time.perf_counter()
        value = self.counter.count_formula(formula, num_vars)
        seconds = time.perf_counter() - started
        self._counts[key] = value
        return CountResult(
            value=value,
            exact=self.capabilities.exact,
            backend=self.backend_name,
            source="backend",
            elapsed_seconds=seconds,
            stats_delta=self.stats.delta_since(before),
        )

    def _hit(self, value: int, source: str) -> CountResult:
        return CountResult(
            value=value,
            exact=self.capabilities.exact,
            backend=self.backend_name,
            source=source,
        )

    @contextmanager
    def _limits(
        self,
        budget: int | None,
        deadline: float | None = None,
        *,
        counter=None,
    ):
        """Temporarily override the backend's resource knobs, if it has them.

        ``budget`` maps onto a ``max_nodes`` attribute and ``deadline``
        onto a ``deadline`` attribute; a knob the backend lacks makes the
        corresponding request limit moot (the pool watchdog still
        backstops deadlines for parallel batches).  Restores on exit even
        when the count aborts.
        """
        counter = self.counter if counter is None else counter
        previous_budget = _MISSING
        previous_deadline = _MISSING
        if budget is not None:
            previous_budget = getattr(counter, "max_nodes", _MISSING)
            if previous_budget is not _MISSING:
                counter.max_nodes = budget
        if deadline is not None:
            previous_deadline = getattr(counter, "deadline", _MISSING)
            if previous_deadline is not _MISSING:
                counter.deadline = deadline
        try:
            yield
        finally:
            if previous_budget is not _MISSING:
                counter.max_nodes = previous_budget
            if previous_deadline is not _MISSING:
                counter.deadline = previous_deadline

    # -- bare-int shims (deprecated spelling of the typed API) -----------------------
    #
    # Kept for external callers only.  The in-tree consumer layers
    # (core/, experiments/) speak the typed surface exclusively — a CI
    # grep gate rejects any engine.count/count_many/count_formula call
    # reappearing there.

    def count(self, cnf: CNF) -> int:
        """Deprecated shim: ``solve(cnf).value`` (kept for old call sites)."""
        warnings.warn(
            "engine.count(cnf) is deprecated; use engine.solve(cnf).value "
            "(typed provenance, per-problem limits, failure taxonomy)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.solve(cnf).value

    def count_many(self, cnfs) -> list[int]:
        """Deprecated shim: ``[r.value for r in solve_many(cnfs)]``."""
        warnings.warn(
            "engine.count_many(cnfs) is deprecated; use "
            "[r.value for r in engine.solve_many(cnfs)]",
            DeprecationWarning,
            stacklevel=2,
        )
        return [result.value for result in self.solve_many(cnfs)]

    def _count_formula_shim(self, formula, num_vars: int) -> int:
        """Deprecated shim: ``solve_formula(...).value`` (via attribute)."""
        warnings.warn(
            "engine.count_formula(...) is deprecated; use "
            "engine.solve_formula(formula, num_vars).value",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.solve_formula(formula, num_vars).value

    # -- compilation memos -----------------------------------------------------------

    def translate(self, prop, scope: int, symmetry=None, negate: bool = False):
        """Memoized grounded-property compilation (see :func:`repro.spec.translate`).

        With ``cache_dir`` configured the compilation is also persisted:
        a fresh process warms its translation memo from disk instead of
        re-grounding and re-Tseitin-ing the property.
        """
        from repro.spec.translate import translate

        kind = symmetry.kind if symmetry is not None else None
        key = (_prop_key(prop), scope, kind, negate)
        with self._lock:
            self.stats.translate_calls += 1
            cached = self._translations.get(key)
            if cached is not None:
                self.stats.translate_hits += 1
                return cached
            problem = None
            disk_key = None
            if self.memo_store is not None:
                disk_key = text_key("translate", prop, scope, kind, negate)
                problem = self.memo_store.get(disk_key)
                if problem is not None:
                    self.stats.translate_store_hits += 1
            if problem is None:
                problem = translate(prop, scope, symmetry=symmetry, negate=negate)
                if disk_key is not None:
                    self.memo_store.put(disk_key, problem)
            self._translations[key] = problem
            return problem

    def ground_truth(self, prop, scope: int, symmetry=None):
        """Memoized compiled ground truth for AccMC evaluation."""
        from repro.core.accmc import GroundTruth

        key = (
            _prop_key(prop),
            scope,
            symmetry.kind if symmetry is not None else None,
        )
        with self._lock:
            cached = self._ground_truths.get(key)
            if cached is None:
                cached = GroundTruth(
                    prop, scope, symmetry=symmetry, translator=self.translate
                )
                self._ground_truths[key] = cached
            return cached

    def region(self, paths, label: int, num_features: int) -> CNF:
        """Memoized decision-tree label-region CNF (see ``label_region_cnf``).

        Region compilations persist to the ``cache_dir`` memo store like
        translations do.
        """
        from repro.core.tree2cnf import label_region_cnf

        key = (tuple(paths), label, num_features)
        with self._lock:
            self.stats.region_calls += 1
            cached = self._regions.get(key)
            if cached is not None:
                self.stats.region_hits += 1
                return cached
            cnf = None
            disk_key = None
            if self.memo_store is not None:
                disk_key = text_key("region", tuple(paths), label, num_features)
                cnf = self.memo_store.get(disk_key)
                if cnf is not None:
                    self.stats.region_store_hits += 1
            if cnf is None:
                cnf = label_region_cnf(paths, label, num_features)
                if disk_key is not None:
                    self.memo_store.put(disk_key, cnf)
            self._regions[key] = cnf
            return cnf

    # -- parallel plumbing -----------------------------------------------------------

    def _ensure_pool(self) -> WorkerPool | None:
        """The engine's persistent worker pool, forked lazily.

        Created on the first cold parallel batch and reused across
        ``solve_many`` calls; ``close()`` releases it, and counting again
        after a close simply forks a fresh one.  Returns ``None`` when the
        backend does not pickle — the caller then counts serially, exactly
        like :func:`repro.counting.parallel.count_parallel` would.
        """
        if self._pool is not None and not self._pool.closed:
            return self._pool
        try:
            if faults.active("backend-unpicklable"):
                raise pickle.PicklingError("injected: backend does not pickle")
            blob = pickle.dumps(self.counter)
        except (pickle.PicklingError, TypeError, AttributeError):
            # The probe catches exactly the serialization failures — a
            # genuinely broken backend still raises loudly here.
            self.stats.serial_fallbacks += 1
            return None
        self._pool = WorkerPool(
            blob,
            self._workers,
            record_deltas=self.component_cache is not None,
            grace=self.config.deadline_grace,
            task_retries=self.config.task_retries,
            backend_name=self.backend_name,
        )
        self._pool_respawns_base = 0
        self._pool_retries_base = 0
        return self._pool

    # -- maintenance -----------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-memory memos and reset the statistics.

        The shared component cache is a memo too, so it is dropped with the
        rest.  The disk stores (if configured) and the worker pool are
        intentionally left intact — surviving resets is their purpose; use
        ``engine.store.clear()`` / ``engine.close()`` for those.  (Workers
        keep their own warmed cache clones regardless: they are process
        state, re-cloned only when a pool is re-forked.)
        """
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._counts.clear()
        self._translations.clear()
        self._ground_truths.clear()
        self._regions.clear()
        self._circuits.clear()
        if self.component_cache is not None:
            self.component_cache.clear()
            # The cache's own counters are cumulative; re-baseline so the
            # fresh EngineStats reports spill promotions from zero.
            self._component_spill_hits_base = self.component_cache.spill_hits
        # Same re-baselining for the cumulative store and pool counters.
        self._store_degradations_base = self._store_degradations_total()
        if self._pool is not None:
            self._pool_respawns_base = self._pool.respawns
            self._pool_retries_base = self._pool.retries
        self.stats = EngineStats()

    def close(self) -> None:
        """Release the worker pool and the disk store handles (idempotent).

        Counting again after a close works: the stores stay closed (work
        falls through to the backend) but the pool re-forks lazily.
        """
        if self._pool is not None:
            self._pool.close()
        if self.store is not None:
            self.store.close()
        if self.memo_store is not None:
            self.memo_store.close()
        if self.component_store is not None:
            # A clean shutdown persists the live component entries too —
            # eviction pressure alone would leave an under-budget cache
            # entirely in memory and the next session cold.
            if self.component_cache is not None:
                self.component_cache.spill_all()
            self.component_store.close()
        if self.circuit_store is not None:
            self.circuit_store.close()

    def __enter__(self) -> "CountingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        s = self.stats
        extras = ""
        if self._workers > 1:
            # The *resolved* worker count: config.workers == 0 means "one
            # per core", which is > 1 on any multi-core machine.
            pool = "+pool" if self._pool is not None and not self._pool.closed else ""
            extras += f", workers={self._workers}{pool}"
        if self.component_cache is not None:
            spill = "+spill" if self.component_store is not None else ""
            extras += f", components={len(self.component_cache)}{spill}"
        if self.store is not None:
            extras += f", store={str(self.store.path)!r}"
        if self.capabilities.conditions_cubes:
            spelled = "+store" if self.circuit_store is not None else ""
            extras += f", circuits={len(self._circuits)}{spelled}"
        if self.config.fallback is not None:
            extras += f", fallback={self.config.fallback!r}"
        return (
            f"CountingEngine(backend={self.backend_name!r}, counts={len(self._counts)}, "
            f"hits={s.count_hits}/{s.count_calls}{extras})"
        )


def shared_engine(counter=None, config: EngineConfig | None = None) -> CountingEngine:
    """Wrap ``counter`` in an engine unless it already is one.

    When ``counter`` is already an engine it is returned as-is and
    ``config`` is ignored — the existing engine's configuration (and its
    caches, which are the point of sharing) win.
    """
    if isinstance(counter, CountingEngine):
        return counter
    return CountingEngine(counter, config=config)
