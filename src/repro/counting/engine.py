"""CountingEngine: a shared, memoizing, parallel counting service.

Every MCML metric is a handful of projected model-counting calls, and the
experiment drivers repeat large parts of the work across rows: the same
ground-truth translation at every training ratio, the same symmetry-space
CNF for all sixteen properties of a table, the same tree regions when a
model is evaluated twice.  The engine makes that reuse automatic — and
scales the cold remainder across processes and sessions:

* ``count`` / ``count_many`` memoize model counts keyed on the CNF's
  canonical packed signature (:meth:`repro.logic.cnf.CNF.signature`), so a
  cache hit is bit-identical to the cold call by construction;
* with ``EngineConfig(cache_dir=...)`` the count memo is backed by a
  disk-persistent :class:`repro.counting.store.CountStore`, so a table
  re-run in a fresh process performs zero backend counts;
* with ``EngineConfig(workers=N)`` a ``count_many`` batch is partitioned
  into memo hits, disk-store hits and cold problems, and the cold problems
  fan out over an engine-owned *persistent*
  :class:`repro.counting.parallel.WorkerPool` — forked lazily on the first
  cold batch, reused across batches and table rows, released by
  ``engine.close()`` (the engine is a context manager);
* the engine owns a bounded LRU
  :class:`repro.counting.component_cache.ComponentCache` installed on the
  exact backend, so the *sub-problems* of different counting calls share
  work too — conjunctions of the same φ with different tree regions hit
  components earlier problems already solved, serially or via the worker
  delta protocol (``EngineConfig(component_cache_mb=…)``, 0 to opt out);
* ``translate`` memoizes grounded-property compilations (property × scope ×
  symmetry × polarity), keyed on the property's *structural* identity —
  two distinct properties sharing a name never collide;
* ``ground_truth`` memoizes the :class:`repro.core.accmc.GroundTruth`
  objects built on those translations;
* ``region`` memoizes decision-tree label-region CNFs keyed on the paths.

Attribute access falls through to the wrapped backend, so the engine is a
drop-in ``counter`` anywhere one is accepted (``name``, ``max_nodes``, …
keep working; ``count_formula`` is served memoized when the backend counts
formulas and rejected with a pointer to ``count`` when it does not).  One
engine is meant to be shared across every ``AccMC``, ``DiffMC`` and
pipeline in a process; ``clear()`` resets the in-memory memos (the disk
store, if any, survives — that is its point).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.counting.component_cache import ComponentCache
from repro.counting.exact import ExactCounter
from repro.counting.parallel import WorkerPool, default_workers
from repro.counting.store import CountStore, signature_key
from repro.logic.cnf import CNF


@dataclass(frozen=True)
class EngineConfig:
    """Scaling knobs for a :class:`CountingEngine`.

    Parameters
    ----------
    workers:
        Processes a cold ``count_many`` batch fans out over.  ``1`` (the
        default) keeps everything in-process; ``0`` or negative means one
        per core; results are bit-identical either way.  The pool is owned
        by the engine: forked lazily on the first cold parallel batch,
        reused across ``count_many`` calls, released by ``engine.close()``
        (and lazily re-forked should the engine count again afterwards).
    cache_dir:
        Directory for the disk-persistent count store.  ``None`` disables
        persistence; any path makes counts survive (and warm) across
        processes and sessions.
    component_cache_mb:
        Approximate byte budget (in MiB) of the engine-owned
        :class:`~repro.counting.component_cache.ComponentCache` shared
        across every ``count``/``count_many`` call — conjunctions of the
        same φ with different tree regions hit components the previous
        problems already solved.  ``0`` opts out (the backend falls back to
        per-call component caching).  Warm hits are bit-identical to cold
        recounts by construction; only backends exposing a
        ``component_cache`` attribute (the exact counter) participate.

    The knobs take effect only for backends declaring ``exact = True``
    (the exact counter, BDD, brute, legacy): approximate estimates are
    neither portable to other backends through a shared store nor
    reproducible when a seeded counter is cloned into workers, so engines
    over such backends quietly stay serial and unpersisted.
    """

    workers: int = 1
    cache_dir: str | Path | None = None
    component_cache_mb: float = 512.0


@dataclass
class EngineStats:
    """Cache telemetry: calls vs hits per memo table.

    ``count_calls`` splits exactly into ``count_hits`` (in-memory memo),
    ``store_hits`` (disk store) and ``backend_calls`` (actual counting
    work, serial or parallel) — a warm re-run shows ``backend_calls == 0``.
    """

    count_calls: int = 0
    count_hits: int = 0
    store_hits: int = 0
    backend_calls: int = 0
    translate_calls: int = 0
    translate_hits: int = 0
    region_calls: int = 0
    region_hits: int = 0

    @property
    def count_misses(self) -> int:
        return self.count_calls - self.count_hits

    def as_dict(self) -> dict[str, int]:
        return {
            "count_calls": self.count_calls,
            "count_hits": self.count_hits,
            "store_hits": self.store_hits,
            "backend_calls": self.backend_calls,
            "translate_calls": self.translate_calls,
            "translate_hits": self.translate_hits,
            "region_calls": self.region_calls,
            "region_hits": self.region_hits,
        }


def _prop_key(prop) -> object:
    """Structural memo identity of a property.

    :class:`repro.spec.properties.Property` is a frozen dataclass over a
    frozen-dataclass formula AST, so the object itself hashes and compares
    structurally — two distinct ``Property`` objects sharing a *name* but
    differing in formula get distinct keys (and two structurally equal ones
    correctly share).  Unhashable stand-ins fall back to a name + formula
    repr, which still separates same-named properties.
    """
    try:
        hash(prop)
    except TypeError:
        return (
            type(prop).__name__,
            getattr(prop, "name", None),
            repr(getattr(prop, "formula", prop)),
        )
    return prop


class CountingEngine:
    """Memoizing, optionally parallel and disk-backed counting front door.

    Parameters
    ----------
    counter:
        Any object with ``count(cnf) -> int`` and a ``name`` attribute
        (default: :class:`repro.counting.exact.ExactCounter`).  Passing an
        engine returns its backend wrapped afresh — engines do not nest.
    config:
        :class:`EngineConfig` with the parallelism / persistence knobs.
    """

    def __init__(self, counter=None, config: EngineConfig | None = None) -> None:
        if isinstance(counter, CountingEngine):
            counter = counter.counter
        self.counter = counter if counter is not None else ExactCounter()
        self.config = config if config is not None else EngineConfig()
        # Persistence and fan-out are reserved for backends that declare
        # ``exact = True``: exact counts are interchangeable across
        # backends and sessions, whereas an (ε, δ) estimate persisted to a
        # shared cache_dir would silently poison later exact runs, and a
        # seeded approximate backend cloned into workers would diverge
        # from its serial estimate stream.
        self._exact_backend = bool(getattr(self.counter, "exact", False))
        # workers <= 0 means "one per core".
        self._workers = (
            self.config.workers if self.config.workers > 0 else default_workers()
        )
        self.store: CountStore | None = (
            CountStore(self.config.cache_dir)
            if self.config.cache_dir is not None and self._exact_backend
            else None
        )
        # The engine owns the component cache and installs it on the
        # backend, so serial counts, every problem of a batch, and (via the
        # worker delta protocol) parallel counts all warm one shared cache.
        # ``component_cache_mb=0`` opts out: the backend reverts to
        # per-call caching.  Backends without the attribute (BDD, brute,
        # legacy, approx) are left untouched.
        self.component_cache: ComponentCache | None = None
        if self._exact_backend and hasattr(self.counter, "component_cache"):
            mb = self.config.component_cache_mb
            if mb and mb > 0:
                self.component_cache = ComponentCache(max_bytes=int(mb * (1 << 20)))
                self.counter.component_cache = self.component_cache
            else:
                self.counter.component_cache = None
        self._pool: WorkerPool | None = None
        self.stats = EngineStats()
        self._counts: dict[tuple, int] = {}
        self._translations: dict[tuple, object] = {}
        self._ground_truths: dict[tuple, object] = {}
        self._regions: dict[tuple, CNF] = {}

    def __getattr__(self, name: str):
        # Fall through to the backend for everything the engine does not
        # define (``name``, ``max_nodes``, …), so the engine is a drop-in
        # counter.  ``count_formula`` is special-cased: when the backend
        # counts formulas the engine serves a memoizing wrapper (so the
        # call stops silently bypassing memo and stats); when it does not,
        # the AttributeError points at ``count``.
        if name == "counter":  # guard against recursion before __init__ ran
            raise AttributeError(name)
        if name == "count_formula":
            if hasattr(self.counter, "count_formula"):
                return self._memoized_count_formula
            raise AttributeError(
                f"backend {getattr(self.counter, 'name', self.counter)!r} does "
                "not count formulas; Tseitin-translate and use engine.count(cnf)"
            )
        return getattr(self.counter, name)

    # -- counting ------------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Memoized (and disk-cached) projected model count of ``cnf``."""
        self.stats.count_calls += 1
        key = cnf.signature()
        cached = self._counts.get(key)
        if cached is not None:
            self.stats.count_hits += 1
            return cached
        store_key = signature_key(key) if self.store is not None else None
        if store_key is not None:
            stored = self.store.get(store_key)
            if stored is not None:
                self.stats.store_hits += 1
                self._counts[key] = stored
                return stored
        self.stats.backend_calls += 1
        value = self.counter.count(cnf)
        self._counts[key] = value
        if store_key is not None:
            self.store.put(store_key, value)
        return value

    def count_many(self, cnfs) -> list[int]:
        """Count a batch of CNFs, reusing every cache layer.

        The batch is partitioned into in-memory memo hits, disk-store hits
        and cold problems (duplicates inside the batch collapse onto the
        first occurrence and report as memo hits).  Cold problems run on
        the backend — across ``config.workers`` processes when the batch
        and the configuration allow — and their results merge back into
        the memo and the disk store, so the parallel path is bit-identical
        to the serial one by construction.
        """
        cnfs = list(cnfs)
        results: list[int | None] = [None] * len(cnfs)
        positions: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        cold: dict[tuple, CNF] = {}
        for i, cnf in enumerate(cnfs):
            self.stats.count_calls += 1
            key = cnf.signature()
            cached = self._counts.get(key)
            if cached is not None:
                self.stats.count_hits += 1
                results[i] = cached
                continue
            if key in positions:
                # Duplicate of a colder batch member: one backend count
                # will serve both, exactly like a serial memo hit.
                self.stats.count_hits += 1
                positions[key].append(i)
                continue
            positions[key] = [i]
            cold[key] = cnf
            order.append(key)

        missing = order
        hashed: dict[tuple, str] = {}
        if self.store is not None and order:
            hashed = {key: signature_key(key) for key in order}
            found = self.store.get_many([hashed[key] for key in order])
            missing = []
            for key in order:
                value = found.get(hashed[key])
                if value is None:
                    missing.append(key)
                    continue
                self.stats.store_hits += 1
                self._counts[key] = value
                for i in positions[key]:
                    results[i] = value

        if missing:
            batch = [cold[key] for key in missing]
            values: list[int] = []
            deltas: list = []
            try:
                pool = None
                if self._workers > 1 and len(batch) > 1 and self._exact_backend:
                    pool = self._ensure_pool()
                if pool is not None:
                    pool.run(batch, partial_sink=values, delta_sink=deltas)
                else:
                    for cnf in batch:
                        values.append(self.counter.count(cnf))
            finally:
                # Components the workers solved warm the shared cache, so
                # the serial paths (and later batches' pickled clones)
                # start from them too.
                if deltas and self.component_cache is not None:
                    self.component_cache.absorb(deltas)
                # Merge whatever completed even when a later problem raised
                # (CounterBudgetExceeded acts as a timeout): counts already
                # paid for must reach the memo and the disk store, so a
                # retry resumes instead of re-counting from scratch.
                self.stats.backend_calls += len(values)
                fresh: list[tuple[str, int]] = []
                for key, value in zip(missing, values):
                    self._counts[key] = value
                    for i in positions[key]:
                        results[i] = value
                    if self.store is not None:
                        fresh.append((hashed[key], value))
                if fresh and self.store is not None:
                    self.store.put_many(fresh)
        return results

    def _ensure_pool(self) -> WorkerPool | None:
        """The engine's persistent worker pool, forked lazily.

        Created on the first cold parallel batch and reused across
        ``count_many`` calls; ``close()`` releases it, and counting again
        after a close simply forks a fresh one.  Returns ``None`` when the
        backend does not pickle — the caller then counts serially, exactly
        like :func:`repro.counting.parallel.count_parallel` would.
        """
        if self._pool is not None and not self._pool.closed:
            return self._pool
        try:
            blob = pickle.dumps(self.counter)
        except Exception:
            return None
        self._pool = WorkerPool(
            blob,
            self._workers,
            record_deltas=self.component_cache is not None,
        )
        return self._pool

    def _memoized_count_formula(self, formula, num_vars: int) -> int:
        """Memoized whole-space formula count (backends with the fast path).

        Served through ``engine.count_formula`` only when the backend
        counts formulas; keys the count memo on the formula's structural
        hash (``Formula`` nodes hash structurally).  Formula counts stay
        in-memory only — the disk store is keyed on CNF signatures.
        """
        self.stats.count_calls += 1
        key = ("formula", formula, num_vars)
        cached = self._counts.get(key)
        if cached is not None:
            self.stats.count_hits += 1
            return cached
        self.stats.backend_calls += 1
        value = self.counter.count_formula(formula, num_vars)
        self._counts[key] = value
        return value

    # -- compilation memos -----------------------------------------------------------

    def translate(self, prop, scope: int, symmetry=None, negate: bool = False):
        """Memoized grounded-property compilation (see :func:`repro.spec.translate`)."""
        from repro.spec.translate import translate

        key = (
            _prop_key(prop),
            scope,
            symmetry.kind if symmetry is not None else None,
            negate,
        )
        self.stats.translate_calls += 1
        cached = self._translations.get(key)
        if cached is not None:
            self.stats.translate_hits += 1
            return cached
        problem = translate(prop, scope, symmetry=symmetry, negate=negate)
        self._translations[key] = problem
        return problem

    def ground_truth(self, prop, scope: int, symmetry=None):
        """Memoized compiled ground truth for AccMC evaluation."""
        from repro.core.accmc import GroundTruth

        key = (
            _prop_key(prop),
            scope,
            symmetry.kind if symmetry is not None else None,
        )
        cached = self._ground_truths.get(key)
        if cached is None:
            cached = GroundTruth(prop, scope, symmetry=symmetry, translator=self.translate)
            self._ground_truths[key] = cached
        return cached

    def region(self, paths, label: int, num_features: int) -> CNF:
        """Memoized decision-tree label-region CNF (see ``label_region_cnf``)."""
        from repro.core.tree2cnf import label_region_cnf

        key = (tuple(paths), label, num_features)
        self.stats.region_calls += 1
        cached = self._regions.get(key)
        if cached is not None:
            self.stats.region_hits += 1
            return cached
        cnf = label_region_cnf(paths, label, num_features)
        self._regions[key] = cnf
        return cnf

    # -- maintenance -----------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-memory memos and reset the statistics.

        The shared component cache is a memo too, so it is dropped with the
        rest.  The disk store (if configured) and the worker pool are
        intentionally left intact — surviving resets is their purpose; use
        ``engine.store.clear()`` / ``engine.close()`` for those.  (Workers
        keep their own warmed cache clones regardless: they are process
        state, re-cloned only when a pool is re-forked.)
        """
        self._counts.clear()
        self._translations.clear()
        self._ground_truths.clear()
        self._regions.clear()
        if self.component_cache is not None:
            self.component_cache.clear()
        self.stats = EngineStats()

    def close(self) -> None:
        """Release the worker pool and the disk store handle (idempotent).

        Counting again after a close works: the store stays closed (counts
        fall through to the backend) but the pool re-forks lazily.
        """
        if self._pool is not None:
            self._pool.close()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "CountingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        backend = getattr(self.counter, "name", type(self.counter).__name__)
        s = self.stats
        extras = ""
        if self._workers > 1:
            # The *resolved* worker count: config.workers == 0 means "one
            # per core", which is > 1 on any multi-core machine.
            pool = "+pool" if self._pool is not None and not self._pool.closed else ""
            extras += f", workers={self._workers}{pool}"
        if self.component_cache is not None:
            extras += f", components={len(self.component_cache)}"
        if self.store is not None:
            extras += f", store={str(self.store.path)!r}"
        return (
            f"CountingEngine(backend={backend!r}, counts={len(self._counts)}, "
            f"hits={s.count_hits}/{s.count_calls}{extras})"
        )


def shared_engine(counter=None, config: EngineConfig | None = None) -> CountingEngine:
    """Wrap ``counter`` in an engine unless it already is one.

    When ``counter`` is already an engine it is returned as-is and
    ``config`` is ignored — the existing engine's configuration (and its
    caches, which are the point of sharing) win.
    """
    if isinstance(counter, CountingEngine):
        return counter
    return CountingEngine(counter, config=config)
