"""CountingEngine: a shared, memoizing, parallel counting service.

Every MCML metric is a handful of projected model-counting calls, and the
experiment drivers repeat large parts of the work across rows: the same
ground-truth translation at every training ratio, the same symmetry-space
CNF for all sixteen properties of a table, the same tree regions when a
model is evaluated twice.  The engine makes that reuse automatic — and
scales the cold remainder across processes and sessions:

* ``count`` / ``count_many`` memoize model counts keyed on the CNF's
  canonical packed signature (:meth:`repro.logic.cnf.CNF.signature`), so a
  cache hit is bit-identical to the cold call by construction;
* with ``EngineConfig(cache_dir=...)`` the count memo is backed by a
  disk-persistent :class:`repro.counting.store.CountStore`, so a table
  re-run in a fresh process performs zero backend counts;
* with ``EngineConfig(workers=N)`` a ``count_many`` batch is partitioned
  into memo hits, disk-store hits and cold problems, and the cold problems
  fan out over a ``multiprocessing`` pool
  (:func:`repro.counting.parallel.count_parallel`);
* ``translate`` memoizes grounded-property compilations (property × scope ×
  symmetry × polarity), keyed on the property's *structural* identity —
  two distinct properties sharing a name never collide;
* ``ground_truth`` memoizes the :class:`repro.core.accmc.GroundTruth`
  objects built on those translations;
* ``region`` memoizes decision-tree label-region CNFs keyed on the paths.

Attribute access falls through to the wrapped backend, so the engine is a
drop-in ``counter`` anywhere one is accepted (``name``, ``count_formula``,
… keep working).  One engine is meant to be shared across every ``AccMC``,
``DiffMC`` and pipeline in a process; ``clear()`` resets the in-memory
memos (the disk store, if any, survives — that is its point).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.counting.exact import ExactCounter
from repro.counting.parallel import count_parallel, default_workers
from repro.counting.store import CountStore, signature_key
from repro.logic.cnf import CNF


@dataclass(frozen=True)
class EngineConfig:
    """Scaling knobs for a :class:`CountingEngine`.

    Parameters
    ----------
    workers:
        Processes a cold ``count_many`` batch fans out over.  ``1`` (the
        default) keeps everything in-process; ``0`` or negative means one
        per core; results are bit-identical either way.
    cache_dir:
        Directory for the disk-persistent count store.  ``None`` disables
        persistence; any path makes counts survive (and warm) across
        processes and sessions.

    Both knobs take effect only for backends declaring ``exact = True``
    (the exact counter, BDD, brute, legacy): approximate estimates are
    neither portable to other backends through a shared store nor
    reproducible when a seeded counter is cloned into workers, so engines
    over such backends quietly stay serial and unpersisted.
    """

    workers: int = 1
    cache_dir: str | Path | None = None


@dataclass
class EngineStats:
    """Cache telemetry: calls vs hits per memo table.

    ``count_calls`` splits exactly into ``count_hits`` (in-memory memo),
    ``store_hits`` (disk store) and ``backend_calls`` (actual counting
    work, serial or parallel) — a warm re-run shows ``backend_calls == 0``.
    """

    count_calls: int = 0
    count_hits: int = 0
    store_hits: int = 0
    backend_calls: int = 0
    translate_calls: int = 0
    translate_hits: int = 0
    region_calls: int = 0
    region_hits: int = 0

    @property
    def count_misses(self) -> int:
        return self.count_calls - self.count_hits

    def as_dict(self) -> dict[str, int]:
        return {
            "count_calls": self.count_calls,
            "count_hits": self.count_hits,
            "store_hits": self.store_hits,
            "backend_calls": self.backend_calls,
            "translate_calls": self.translate_calls,
            "translate_hits": self.translate_hits,
            "region_calls": self.region_calls,
            "region_hits": self.region_hits,
        }


def _prop_key(prop) -> object:
    """Structural memo identity of a property.

    :class:`repro.spec.properties.Property` is a frozen dataclass over a
    frozen-dataclass formula AST, so the object itself hashes and compares
    structurally — two distinct ``Property`` objects sharing a *name* but
    differing in formula get distinct keys (and two structurally equal ones
    correctly share).  Unhashable stand-ins fall back to a name + formula
    repr, which still separates same-named properties.
    """
    try:
        hash(prop)
    except TypeError:
        return (
            type(prop).__name__,
            getattr(prop, "name", None),
            repr(getattr(prop, "formula", prop)),
        )
    return prop


class CountingEngine:
    """Memoizing, optionally parallel and disk-backed counting front door.

    Parameters
    ----------
    counter:
        Any object with ``count(cnf) -> int`` and a ``name`` attribute
        (default: :class:`repro.counting.exact.ExactCounter`).  Passing an
        engine returns its backend wrapped afresh — engines do not nest.
    config:
        :class:`EngineConfig` with the parallelism / persistence knobs.
    """

    def __init__(self, counter=None, config: EngineConfig | None = None) -> None:
        if isinstance(counter, CountingEngine):
            counter = counter.counter
        self.counter = counter if counter is not None else ExactCounter()
        self.config = config if config is not None else EngineConfig()
        # Persistence and fan-out are reserved for backends that declare
        # ``exact = True``: exact counts are interchangeable across
        # backends and sessions, whereas an (ε, δ) estimate persisted to a
        # shared cache_dir would silently poison later exact runs, and a
        # seeded approximate backend cloned into workers would diverge
        # from its serial estimate stream.
        self._exact_backend = bool(getattr(self.counter, "exact", False))
        # workers <= 0 means "one per core".
        self._workers = (
            self.config.workers if self.config.workers > 0 else default_workers()
        )
        self.store: CountStore | None = (
            CountStore(self.config.cache_dir)
            if self.config.cache_dir is not None and self._exact_backend
            else None
        )
        self.stats = EngineStats()
        self._counts: dict[tuple, int] = {}
        self._translations: dict[tuple, object] = {}
        self._ground_truths: dict[tuple, object] = {}
        self._regions: dict[tuple, CNF] = {}

    def __getattr__(self, name: str):
        # Fall through to the backend for everything the engine does not
        # define (``name``, ``count_formula``, ``max_nodes``, …), so the
        # engine is a drop-in counter.
        if name == "counter":  # guard against recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.counter, name)

    # -- counting ------------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Memoized (and disk-cached) projected model count of ``cnf``."""
        self.stats.count_calls += 1
        key = cnf.signature()
        cached = self._counts.get(key)
        if cached is not None:
            self.stats.count_hits += 1
            return cached
        store_key = signature_key(key) if self.store is not None else None
        if store_key is not None:
            stored = self.store.get(store_key)
            if stored is not None:
                self.stats.store_hits += 1
                self._counts[key] = stored
                return stored
        self.stats.backend_calls += 1
        value = self.counter.count(cnf)
        self._counts[key] = value
        if store_key is not None:
            self.store.put(store_key, value)
        return value

    def count_many(self, cnfs) -> list[int]:
        """Count a batch of CNFs, reusing every cache layer.

        The batch is partitioned into in-memory memo hits, disk-store hits
        and cold problems (duplicates inside the batch collapse onto the
        first occurrence and report as memo hits).  Cold problems run on
        the backend — across ``config.workers`` processes when the batch
        and the configuration allow — and their results merge back into
        the memo and the disk store, so the parallel path is bit-identical
        to the serial one by construction.
        """
        cnfs = list(cnfs)
        results: list[int | None] = [None] * len(cnfs)
        positions: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        cold: dict[tuple, CNF] = {}
        for i, cnf in enumerate(cnfs):
            self.stats.count_calls += 1
            key = cnf.signature()
            cached = self._counts.get(key)
            if cached is not None:
                self.stats.count_hits += 1
                results[i] = cached
                continue
            if key in positions:
                # Duplicate of a colder batch member: one backend count
                # will serve both, exactly like a serial memo hit.
                self.stats.count_hits += 1
                positions[key].append(i)
                continue
            positions[key] = [i]
            cold[key] = cnf
            order.append(key)

        missing = order
        hashed: dict[tuple, str] = {}
        if self.store is not None and order:
            hashed = {key: signature_key(key) for key in order}
            found = self.store.get_many([hashed[key] for key in order])
            missing = []
            for key in order:
                value = found.get(hashed[key])
                if value is None:
                    missing.append(key)
                    continue
                self.stats.store_hits += 1
                self._counts[key] = value
                for i in positions[key]:
                    results[i] = value

        if missing:
            batch = [cold[key] for key in missing]
            values: list[int] = []
            try:
                if self._workers > 1 and len(batch) > 1 and self._exact_backend:
                    count_parallel(
                        self.counter, batch, self._workers, partial_sink=values
                    )
                else:
                    for cnf in batch:
                        values.append(self.counter.count(cnf))
            finally:
                # Merge whatever completed even when a later problem raised
                # (CounterBudgetExceeded acts as a timeout): counts already
                # paid for must reach the memo and the disk store, so a
                # retry resumes instead of re-counting from scratch.
                self.stats.backend_calls += len(values)
                fresh: list[tuple[str, int]] = []
                for key, value in zip(missing, values):
                    self._counts[key] = value
                    for i in positions[key]:
                        results[i] = value
                    if self.store is not None:
                        fresh.append((hashed[key], value))
                if fresh and self.store is not None:
                    self.store.put_many(fresh)
        return results

    # -- compilation memos -----------------------------------------------------------

    def translate(self, prop, scope: int, symmetry=None, negate: bool = False):
        """Memoized grounded-property compilation (see :func:`repro.spec.translate`)."""
        from repro.spec.translate import translate

        key = (
            _prop_key(prop),
            scope,
            symmetry.kind if symmetry is not None else None,
            negate,
        )
        self.stats.translate_calls += 1
        cached = self._translations.get(key)
        if cached is not None:
            self.stats.translate_hits += 1
            return cached
        problem = translate(prop, scope, symmetry=symmetry, negate=negate)
        self._translations[key] = problem
        return problem

    def ground_truth(self, prop, scope: int, symmetry=None):
        """Memoized compiled ground truth for AccMC evaluation."""
        from repro.core.accmc import GroundTruth

        key = (
            _prop_key(prop),
            scope,
            symmetry.kind if symmetry is not None else None,
        )
        cached = self._ground_truths.get(key)
        if cached is None:
            cached = GroundTruth(prop, scope, symmetry=symmetry, translator=self.translate)
            self._ground_truths[key] = cached
        return cached

    def region(self, paths, label: int, num_features: int) -> CNF:
        """Memoized decision-tree label-region CNF (see ``label_region_cnf``)."""
        from repro.core.tree2cnf import label_region_cnf

        key = (tuple(paths), label, num_features)
        self.stats.region_calls += 1
        cached = self._regions.get(key)
        if cached is not None:
            self.stats.region_hits += 1
            return cached
        cnf = label_region_cnf(paths, label, num_features)
        self._regions[key] = cnf
        return cnf

    # -- maintenance -----------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-memory memos and reset the statistics.

        The disk store (if configured) is intentionally left intact —
        surviving resets and sessions is its purpose; use
        ``engine.store.clear()`` to wipe it too.
        """
        self._counts.clear()
        self._translations.clear()
        self._ground_truths.clear()
        self._regions.clear()
        self.stats = EngineStats()

    def close(self) -> None:
        """Release the disk store's database handle (idempotent)."""
        if self.store is not None:
            self.store.close()

    def __repr__(self) -> str:
        backend = getattr(self.counter, "name", type(self.counter).__name__)
        s = self.stats
        extras = ""
        if self.config.workers > 1:
            extras += f", workers={self.config.workers}"
        if self.store is not None:
            extras += f", store={str(self.store.path)!r}"
        return (
            f"CountingEngine(backend={backend!r}, counts={len(self._counts)}, "
            f"hits={s.count_hits}/{s.count_calls}{extras})"
        )


def shared_engine(counter=None, config: EngineConfig | None = None) -> CountingEngine:
    """Wrap ``counter`` in an engine unless it already is one.

    When ``counter`` is already an engine it is returned as-is and
    ``config`` is ignored — the existing engine's configuration (and its
    caches, which are the point of sharing) win.
    """
    if isinstance(counter, CountingEngine):
        return counter
    return CountingEngine(counter, config=config)
