"""CountingEngine: a shared, memoizing facade over the counting back-ends.

Every MCML metric is a handful of projected model-counting calls, and the
experiment drivers repeat large parts of the work across rows: the same
ground-truth translation at every training ratio, the same symmetry-space
CNF for all sixteen properties of a table, the same tree regions when a
model is evaluated twice.  The engine makes that reuse automatic:

* ``count`` / ``count_many`` memoize model counts keyed on the CNF's
  canonical packed signature (:meth:`repro.logic.cnf.CNF.signature`), so a
  cache hit is bit-identical to the cold call by construction;
* ``translate`` memoizes grounded-property compilations (property × scope ×
  symmetry × polarity);
* ``ground_truth`` memoizes the :class:`repro.core.accmc.GroundTruth`
  objects built on those translations;
* ``region`` memoizes decision-tree label-region CNFs keyed on the paths.

Attribute access falls through to the wrapped backend, so the engine is a
drop-in ``counter`` anywhere one is accepted (``name``, ``count_formula``,
… keep working).  One engine is meant to be shared across every ``AccMC``,
``DiffMC`` and pipeline in a process; ``clear()`` resets it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counting.exact import ExactCounter
from repro.logic.cnf import CNF


@dataclass
class EngineStats:
    """Cache telemetry: calls vs hits per memo table."""

    count_calls: int = 0
    count_hits: int = 0
    translate_calls: int = 0
    translate_hits: int = 0
    region_calls: int = 0
    region_hits: int = 0

    @property
    def count_misses(self) -> int:
        return self.count_calls - self.count_hits

    def as_dict(self) -> dict[str, int]:
        return {
            "count_calls": self.count_calls,
            "count_hits": self.count_hits,
            "translate_calls": self.translate_calls,
            "translate_hits": self.translate_hits,
            "region_calls": self.region_calls,
            "region_hits": self.region_hits,
        }


class CountingEngine:
    """Memoizing front door to a counting backend.

    Parameters
    ----------
    counter:
        Any object with ``count(cnf) -> int`` and a ``name`` attribute
        (default: :class:`repro.counting.exact.ExactCounter`).  Passing an
        engine returns its backend wrapped afresh — engines do not nest.
    """

    def __init__(self, counter=None) -> None:
        if isinstance(counter, CountingEngine):
            counter = counter.counter
        self.counter = counter if counter is not None else ExactCounter()
        self.stats = EngineStats()
        self._counts: dict[tuple, int] = {}
        self._translations: dict[tuple, object] = {}
        self._ground_truths: dict[tuple, object] = {}
        self._regions: dict[tuple, CNF] = {}

    def __getattr__(self, name: str):
        # Fall through to the backend for everything the engine does not
        # define (``name``, ``count_formula``, ``max_nodes``, …), so the
        # engine is a drop-in counter.
        if name == "counter":  # guard against recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.counter, name)

    # -- counting ------------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Memoized projected model count of ``cnf``."""
        key = cnf.signature()
        self.stats.count_calls += 1
        cached = self._counts.get(key)
        if cached is not None:
            self.stats.count_hits += 1
            return cached
        value = self.counter.count(cnf)
        self._counts[key] = value
        return value

    def count_many(self, cnfs) -> list[int]:
        """Count a batch of CNFs; duplicates inside the batch hit the memo."""
        return [self.count(cnf) for cnf in cnfs]

    # -- compilation memos -----------------------------------------------------------

    def translate(self, prop, scope: int, symmetry=None, negate: bool = False):
        """Memoized grounded-property compilation (see :func:`repro.spec.translate`)."""
        from repro.spec.translate import translate

        key = (
            getattr(prop, "name", str(prop)),
            scope,
            symmetry.kind if symmetry is not None else None,
            negate,
        )
        self.stats.translate_calls += 1
        cached = self._translations.get(key)
        if cached is not None:
            self.stats.translate_hits += 1
            return cached
        problem = translate(prop, scope, symmetry=symmetry, negate=negate)
        self._translations[key] = problem
        return problem

    def ground_truth(self, prop, scope: int, symmetry=None):
        """Memoized compiled ground truth for AccMC evaluation."""
        from repro.core.accmc import GroundTruth

        key = (
            getattr(prop, "name", str(prop)),
            scope,
            symmetry.kind if symmetry is not None else None,
        )
        cached = self._ground_truths.get(key)
        if cached is None:
            cached = GroundTruth(prop, scope, symmetry=symmetry, translator=self.translate)
            self._ground_truths[key] = cached
        return cached

    def region(self, paths, label: int, num_features: int) -> CNF:
        """Memoized decision-tree label-region CNF (see ``label_region_cnf``)."""
        from repro.core.tree2cnf import label_region_cnf

        key = (tuple(paths), label, num_features)
        self.stats.region_calls += 1
        cached = self._regions.get(key)
        if cached is not None:
            self.stats.region_hits += 1
            return cached
        cnf = label_region_cnf(paths, label, num_features)
        self._regions[key] = cnf
        return cnf

    # -- maintenance -----------------------------------------------------------------

    def clear(self) -> None:
        """Drop every memo table and reset the statistics."""
        self._counts.clear()
        self._translations.clear()
        self._ground_truths.clear()
        self._regions.clear()
        self.stats = EngineStats()

    def __repr__(self) -> str:
        backend = getattr(self.counter, "name", type(self.counter).__name__)
        s = self.stats
        return (
            f"CountingEngine(backend={backend!r}, counts={len(self._counts)}, "
            f"hits={s.count_hits}/{s.count_calls})"
        )


def shared_engine(counter=None) -> CountingEngine:
    """Wrap ``counter`` in an engine unless it already is one."""
    if isinstance(counter, CountingEngine):
        return counter
    return CountingEngine(counter)
