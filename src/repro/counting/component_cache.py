"""Bounded LRU cache of counted components, shared across counting calls.

The exact counter's component cache used to be per-``count()`` state: every
call started cold and re-counted components it had already solved in the
previous call.  MCML's workloads make that expensive — AccMC/DiffMC conjoin
the *same* property CNF with many different tree regions, so the residual
search revisits thousands of identical components across calls (component
caching is the defining optimisation of the sharpSAT lineage, and cross-call
reuse is its natural extension once an engine owns the batch).

:class:`ComponentCache` lifts that cache out of per-call state:

* entries map a component key — ``(frozenset of (pos_mask, neg_mask)
  clauses, projection mask)`` in the component's packed variable space — to
  its projected model count; keys tagged ``("elim", clauses, proj)`` map
  the counter's top-level auxiliary-elimination input to its output
  instead (same-φ conjunctions share that work wholesale, because clauses
  inside the projection can never contain an elimination pivot).  Either
  value is a *pure function* of its key, so sharing entries across calls,
  problems, engines and even processes is sound by construction: a warm
  hit is bit-identical to a cold recount;
* the cache is bounded: a byte budget (estimated — see :func:`entry_cost`)
  and/or an entry budget, evicting least-recently-used entries first;
* it records insertion *deltas* on demand, so worker processes can ship the
  components they solved back to the parent engine's shared cache
  (:mod:`repro.counting.parallel`);
* it can *spill to disk*: with a
  :class:`~repro.counting.store.ComponentStore` attached
  (:meth:`attach_spill`), LRU-evicted entries are persisted instead of
  dropped, in-memory misses consult the store before declaring a component
  cold (promoting hits back to memory), and :meth:`spill_all` persists the
  live entries wholesale — which is how an engine's ``close()`` makes a
  φ's component work survive restarts the way whole counts already do.
  Because every value is a pure function of its key, a promoted entry is
  bit-identical to a cold recount.

Thread-safety: none — the cache is meant to be owned by one engine in one
process; cross-process sharing happens by value (pickled snapshots out,
deltas back), never by reference.  The spill store never crosses a process
boundary: pickling a cache (worker clones) detaches it.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

#: Default byte budget for a cache built without explicit caps.  Sized so a
#: full AccMC training-ratio sweep at scope 4 runs eviction-free (~380 MiB
#: measured; the estimate below tracks actual RSS within ~1%).  Overflow is
#: graceful: LRU churn degrades toward per-call-cache performance, never
#: below it by more than a few percent.
DEFAULT_MAX_BYTES = 512 << 20

#: Hard cap on the entries a worker ships back per counting problem —
#: bounds the pickle traffic of a delta regardless of the cache budget.
MAX_DELTA_ENTRIES = 8192

#: A cached component: packed clause set + projection mask.
ComponentKey = tuple[frozenset, int]


def entry_cost(key: ComponentKey, value) -> int:
    """Estimated bytes held by one cache entry.

    An estimate, not an audit: per clause we charge the tuple header plus
    two arbitrary-precision ints of roughly the component's width (taken
    from an arbitrary member clause — components are packed dense, so any
    clause's span is a fair proxy), plus frozenset/dict slot overhead.
    Values are model counts (ints) or memoized elimination results (tuples
    of mask clauses — see ``ExactCounter``'s top-level elimination memo).
    """
    clauses, proj = _key_clauses(key)
    width = proj.bit_length()
    for pos, neg in clauses:
        width = max(width, (pos | neg).bit_length())
        break  # one sample clause is enough for an estimate
    per_clause = 120 + (width >> 2)
    cost = 200 + len(clauses) * per_clause
    if isinstance(value, int):
        return cost + (value.bit_length() >> 3)
    return cost + len(value) * per_clause  # an eliminated clause tuple


def _key_clauses(key) -> ComponentKey:
    """The ``(clauses, proj)`` pair of a plain or tagged (``("elim", …)``) key."""
    if len(key) == 2:
        return key
    return key[1], key[2]


class ComponentCache:
    """Bounded LRU ``component key -> projected model count`` map.

    Parameters
    ----------
    max_bytes:
        Approximate byte budget (see :func:`entry_cost`); ``None`` disables
        the byte cap.  Defaults to :data:`DEFAULT_MAX_BYTES`.
    max_entries:
        Entry-count budget; ``None`` (default) disables it.  When both caps
        are set, exceeding either evicts.
    """

    __slots__ = (
        "max_bytes",
        "max_entries",
        "_data",
        "_bytes",
        "_delta",
        "_spill",
        "hits",
        "misses",
        "evictions",
        "spill_hits",
        "spills",
    )

    def __init__(
        self,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        max_entries: int | None = None,
    ) -> None:
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._data: OrderedDict[ComponentKey, int] = OrderedDict()
        self._bytes = 0
        self._delta: list[tuple[ComponentKey, int]] | None = None
        self._spill = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_hits = 0
        self.spills = 0

    # -- the hot-path pair ------------------------------------------------------------

    def get(self, key: ComponentKey) -> int | None:
        """The cached count for ``key`` (refreshing its recency), or None.

        With a spill store attached, an in-memory miss consults the disk
        tier before declaring the component cold; a disk hit is promoted
        back into memory (as the most-recent entry, possibly evicting —
        and hence re-spilling — colder ones).
        """
        value = self._data.get(key)
        if value is None:
            spill = self._spill
            if spill is not None:
                value = spill.get(key)
                if value is not None:
                    self.spill_hits += 1
                    self.put(key, value)
                    return value
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: ComponentKey, value: int) -> None:
        """Insert ``key -> value``, evicting LRU entries past the caps.

        With a spill store attached, evicted entries are persisted to disk
        instead of dropped (the store dedups re-spills of keys it already
        holds).
        """
        data = self._data
        if key in data:
            data.move_to_end(key)
            return  # counts are pure functions of the key: never re-stored
        data[key] = value
        self._bytes += entry_cost(key, value)
        if self._delta is not None and len(self._delta) < MAX_DELTA_ENTRIES:
            self._delta.append((key, value))
        max_bytes, max_entries = self.max_bytes, self.max_entries
        spill = self._spill
        while (max_bytes is not None and self._bytes > max_bytes and data) or (
            max_entries is not None and len(data) > max_entries
        ):
            old_key, old_value = data.popitem(last=False)
            self._bytes -= entry_cost(old_key, old_value)
            self.evictions += 1
            if spill is not None:
                spill.put(old_key, old_value)
                self.spills += 1

    # -- the disk tier ----------------------------------------------------------------

    def attach_spill(self, store) -> None:
        """Attach a :class:`~repro.counting.store.ComponentStore` spill tier.

        Evictions spill to ``store`` from now on and misses consult it;
        ``None`` detaches (in-memory-only behaviour).
        """
        self._spill = store

    @property
    def spill(self):
        """The attached spill store, or None."""
        return self._spill

    def spill_all(self) -> int:
        """Persist every live in-memory entry to the spill store.

        Called at engine close so a clean shutdown — not just eviction
        pressure — leaves the component work on disk for the next session.
        Returns the number of entries offered to the store (which dedups
        keys it already holds) — 0 when no store is attached.
        """
        spill = self._spill
        if spill is None:
            return 0
        for key, value in self._data.items():
            spill.put(key, value)
        spill.flush()
        return len(self._data)

    # -- cross-process warming --------------------------------------------------------

    def start_recording(self) -> None:
        """Begin recording insertions (worker side of the delta protocol)."""
        self._delta = []

    def drain_delta(self) -> list[tuple[ComponentKey, int]]:
        """Insertions since the last drain (capped at MAX_DELTA_ENTRIES)."""
        if self._delta is None:
            return []
        delta, self._delta = self._delta, []
        return delta

    def absorb(self, items: Iterable[tuple[ComponentKey, int]]) -> None:
        """Merge entries computed elsewhere (a worker delta) into the cache."""
        for key, value in items:
            self.put(key, value)

    def snapshot(self, max_bytes: int) -> "ComponentCache":
        """A bounded copy holding the most-recently-used entries.

        Used when a counter is pickled into worker processes: shipping the
        whole warm cache (up to the full budget) would stall pool creation
        and multiply resident memory per worker, so workers get the MRU
        slice up to ``max_bytes`` and warm the rest themselves (shipping
        their deltas back).  The copy's *own* byte budget is capped at
        ``max_bytes`` too — otherwise every worker clone would grow toward
        the parent's full budget and an N-worker pool would multiply the
        configured memory by N.
        """
        cap = max_bytes if self.max_bytes is None else min(self.max_bytes, max_bytes)
        clone = ComponentCache(max_bytes=cap, max_entries=self.max_entries)
        budget = max_bytes
        taken: list[tuple[ComponentKey, int]] = []
        for key in reversed(self._data):  # most recent first
            value = self._data[key]
            budget -= entry_cost(key, value)
            if budget < 0:
                break
            taken.append((key, value))
        for key, value in reversed(taken):  # restore LRU→MRU insertion order
            clone.put(key, value)
        clone.hits = clone.misses = clone.evictions = 0
        clone.spill_hits = clone.spills = 0
        return clone

    # -- pickling ---------------------------------------------------------------------

    def __getstate__(self):
        # The spill store holds a sqlite connection, which neither pickles
        # nor may be shared across processes: clones (worker processes)
        # start memory-only and warm the parent through the delta protocol.
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_spill"] = None
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # -- maintenance ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-memory entries (an attached spill store is kept)."""
        self._data.clear()
        self._bytes = 0
        if self._delta is not None:
            self._delta = []

    def approximate_bytes(self) -> int:
        """The estimated byte footprint the eviction loop works against."""
        return self._bytes

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._data),
            "approx_bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "spill_hits": self.spill_hits,
            "spills": self.spills,
            "spill_degradations": (
                getattr(self._spill, "degradations", 0) if self._spill is not None else 0
            ),
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: ComponentKey) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        cap = "unbounded" if self.max_bytes is None else f"{self.max_bytes >> 20}MiB"
        spill = ", spill" if self._spill is not None else ""
        return (
            f"ComponentCache(entries={len(self._data)}, cap={cap}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}{spill})"
        )
