"""Exact model counting (ProjMC-style backend).

The counter is a DPLL-style #SAT procedure in the sharpSAT lineage:

* unit propagation with failure detection;
* decomposition of the residual formula into connected components (on the
  clause/variable incidence graph), counted independently and multiplied;
* component caching keyed on the normalised residual clauses;
* branching on the most-occurring variable.

Projection.  The paper's counting problems are *projected*: only the ``n²``
primary variables (the relation bits) are counted, while CNF translation may
introduce auxiliary variables.  Every encoding in this project defines its
auxiliaries biconditionally, so each projected assignment extends to exactly
one total model and plain #SAT equals projected #SAT (DESIGN.md §5.2); CNF
objects carry an ``aux_unique`` flag recording that guarantee.  When the flag
is absent (counting someone else's CNF), the counter falls back to a slower
but unconditionally correct projected DPLL that branches only on projection
variables and asks a CDCL oracle whether the auxiliary remainder is
satisfiable.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections.abc import Iterable, Sequence

from repro.logic.cnf import CNF, Clause
from repro.sat.solver import SatResult, Solver


class CounterBudgetExceeded(Exception):
    """Raised when the counter exceeds its node budget (acts as a timeout)."""


class ExactCounter:
    """Exact (projected) model counter.

    Parameters
    ----------
    max_nodes:
        Budget on search nodes; ``CounterBudgetExceeded`` is raised when
        exhausted.  This substitutes for the paper's 5000-second timeout.
    """

    name = "exact"

    def __init__(self, max_nodes: int = 5_000_000) -> None:
        self.max_nodes = max_nodes
        self._nodes = 0
        self._cache: dict[frozenset[Clause], int] = {}

    # -- public API ---------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Number of models of ``cnf`` projected onto ``cnf.projected_vars()``."""
        self._nodes = 0
        self._cache = {}
        if any(len(clause) == 0 for clause in cnf.clauses):
            return 0  # an empty clause is unsatisfiable
        projection = cnf.projected_vars()
        if cnf.counts_without_projection():
            clause_vars = cnf.variables()
            free = len(projection - clause_vars)
            clauses = [tuple(c) for c in cnf.clauses]
            return (1 << free) * self._sharp(clauses)
        return _projected_dpll(cnf, self.max_nodes)

    # -- unprojected #SAT with component caching ------------------------------------

    def _sharp(self, clauses: list[Clause]) -> int:
        """#models over exactly the variables occurring in ``clauses``."""
        if not clauses:
            return 1
        key = frozenset(clauses)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise CounterBudgetExceeded(f"exceeded {self.max_nodes} nodes")

        simplified = _propagate_units(clauses)
        if simplified is None:
            self._cache[key] = 0
            return 0
        residual, eliminated = simplified
        # Variables fixed by propagation contribute a single assignment each;
        # variables that *disappeared* without being fixed are free.
        vanished = _vars_of(clauses) - _vars_of(residual) - eliminated
        multiplier = 1 << len(vanished)

        total = multiplier
        if residual:
            total = multiplier
            product = 1
            for component in _components(residual):
                product *= self._count_component(component)
                if product == 0:
                    break
            total *= product
        self._cache[key] = total
        return total

    def _count_component(self, clauses: list[Clause]) -> int:
        key = frozenset(clauses)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = _most_frequent_var(clauses)
        total = 0
        for polarity in (var, -var):
            branch = _assign(clauses, polarity)
            if branch is None:
                continue
            residual_vars = _vars_of(clauses) - {var}
            branch_vars = _vars_of(branch)
            free = len(residual_vars - branch_vars)
            total += (1 << free) * self._sharp(branch)
        self._cache[key] = total
        return total


def exact_count(cnf: CNF, max_nodes: int = 5_000_000) -> int:
    """One-shot exact projected model count."""
    return ExactCounter(max_nodes=max_nodes).count(cnf)


# -- clause-level helpers --------------------------------------------------------------


def _vars_of(clauses: Iterable[Clause]) -> set[int]:
    return {abs(l) for clause in clauses for l in clause}


def _assign(clauses: Sequence[Clause], literal: int) -> list[Clause] | None:
    """Residual clauses after asserting ``literal``; None on an empty clause."""
    out: list[Clause] = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            shrunk = tuple(l for l in clause if l != -literal)
            if not shrunk:
                return None
            out.append(shrunk)
        else:
            out.append(clause)
    return out


def _propagate_units(
    clauses: Sequence[Clause],
) -> tuple[list[Clause], set[int]] | None:
    """Exhaustive unit propagation.

    Returns (residual clauses, set of variables fixed by propagation), or
    ``None`` on conflict.
    """
    work = list(clauses)
    fixed: set[int] = set()
    while True:
        unit = next((c[0] for c in work if len(c) == 1), None)
        if unit is None:
            return work, fixed
        if abs(unit) in fixed:
            # Both polarities as units → conflict (the other polarity would
            # have been eliminated otherwise).
            return None
        fixed.add(abs(unit))
        next_work = _assign(work, unit)
        if next_work is None:
            return None
        work = next_work


def _components(clauses: Sequence[Clause]) -> list[list[Clause]]:
    """Partition clauses into connected components by shared variables."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for clause in clauses:
        variables = [abs(l) for l in clause]
        for v in variables:
            parent.setdefault(v, v)
        for v in variables[1:]:
            union(variables[0], v)

    groups: dict[int, list[Clause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, []).append(clause)
    return list(groups.values())


def _most_frequent_var(clauses: Sequence[Clause]) -> int:
    counts: _Counter[int] = _Counter()
    for clause in clauses:
        for l in clause:
            counts[abs(l)] += 1
    return counts.most_common(1)[0][0]


# -- unconditionally correct projected counting ------------------------------------------


def _projected_dpll(cnf: CNF, max_nodes: int) -> int:
    """Projected counting without the unique-extension assumption.

    Branches over projection variables only; once the projection is fully
    assigned the auxiliary remainder is checked for satisfiability with the
    CDCL solver.  Exponential in the projection size — this is the fallback
    for externally supplied CNFs, not the hot path.
    """
    projection = sorted(cnf.projected_vars())
    solver = Solver(cnf.num_vars)
    for clause in cnf.clauses:
        solver.add_clause(clause)

    nodes = 0

    def go(index: int, assumptions: list[int]) -> int:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise CounterBudgetExceeded(f"exceeded {max_nodes} nodes")
        result = solver.solve(assumptions=assumptions)
        if result is not SatResult.SAT:
            return 0
        if index == len(projection):
            return 1
        var = projection[index]
        return go(index + 1, assumptions + [var]) + go(
            index + 1, assumptions + [-var]
        )

    return go(0, [])
