"""Exact projected model counting (ProjMC-style backend) over packed bitmasks.

The counter is a DPLL-style projected #SAT procedure in the
sharpSAT/ProjMC lineage:

* unit propagation with failure detection, driven by literal-occurrence
  lists so each asserted unit touches only the clauses containing it;
* decomposition of the residual formula into connected components (on the
  clause/variable incidence graph), counted independently and multiplied;
* component caching keyed on packed clause signatures;
* branching restricted to *projection* variables (the ``n²`` relation
  bits), choosing the most-occurring one; auxiliary Tseitin variables are
  never decision variables — they are fixed by propagation, and a residual
  component containing no projection variable only needs a satisfiability
  check (each projected model is counted once regardless of how many
  auxiliary extensions it has).

Representation.  The hot path never manipulates tuple clauses: ``count``
renumbers the occurring variables into a dense ``0..k-1`` index
(:meth:`repro.logic.cnf.CNF.packed_view`) and every clause becomes a
``(pos_mask, neg_mask)`` pair of Python ints.  Asserting a literal,
detecting units/empty clauses, splitting components and computing free
variables are then single integer ops per clause, and cache keys are
``frozenset``s of per-clause integers ``(pos << k) | neg`` instead of
``frozenset``s of literal tuples.  The original tuple-based algorithm is
preserved in :mod:`repro.counting.legacy` as a differential baseline.

Projection.  Because the search *is* projected counting, the counter no
longer needs the ``aux_unique`` unique-extension flag to be correct: the
flag (DESIGN.md §5.2) merely records that plain #SAT would agree with the
projected count.  Both flagged and unflagged CNFs take the same code path,
which replaces the seed's slow CDCL-oracle fallback for externally
supplied CNFs.
"""

from __future__ import annotations

from itertools import compress as _compress

from repro.logic.cnf import CNF, MaskClause


class CounterBudgetExceeded(Exception):
    """Raised when the counter exceeds its node budget (acts as a timeout)."""


class ExactCounter:
    """Exact (projected) model counter.

    Parameters
    ----------
    max_nodes:
        Budget on search nodes; ``CounterBudgetExceeded`` is raised when
        exhausted.  This substitutes for the paper's 5000-second timeout.
    """

    name = "exact"
    #: Counts are exact, hence portable across backends and safe to persist.
    exact = True

    def __init__(self, max_nodes: int = 5_000_000) -> None:
        self.max_nodes = max_nodes
        self._nodes = 0
        self._cache: dict[tuple, int] = {}

    # -- public API ---------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Number of models of ``cnf`` projected onto ``cnf.projected_vars()``."""
        self._nodes = 0
        self._cache = {}
        if any(len(clause) == 0 for clause in cnf.clauses):
            return 0  # an empty clause is unsatisfiable
        projection = cnf.projected_vars()
        packed = cnf.packed_view()
        proj_mask = 0
        index = packed.index
        for var in projection:
            bit_index = index.get(var)
            if bit_index is not None:
                proj_mask |= 1 << bit_index
        # Projection variables not occurring in any clause are free.
        multiplier = 1 << (len(projection) - proj_mask.bit_count())

        # Top-level simplification: one propagation pass, then bounded
        # Davis-Putnam elimination of the auxiliary variables.  Resolving a
        # non-projected variable away (∃-elimination) preserves the
        # projected model count exactly, and Tseitin definitions resolve
        # away with *fewer* clauses than they came with, so the search runs
        # on a formula close to the projection instead of the full encoding.
        simplified = _propagate(packed.clauses)
        if simplified is None:
            return 0
        residual, true_mask, false_mask = simplified
        occurring = (1 << packed.num_vars) - 1  # the dense space is exactly
        # the occurring variables
        residual_vars = 0
        for pos, neg in residual:
            residual_vars |= pos | neg
        vanished = occurring & ~residual_vars & ~(true_mask | false_mask)
        multiplier <<= (vanished & proj_mask).bit_count()
        eliminated = _eliminate(residual, proj_mask)
        if eliminated is None:
            return 0
        eliminated_vars = 0
        for pos, neg in eliminated:
            eliminated_vars |= pos | neg
        # Projection variables whose every constraint resolved away are free.
        multiplier <<= ((residual_vars & proj_mask) & ~eliminated_vars).bit_count()
        return multiplier * self._sharp(eliminated, proj_mask)

    # -- projected #SAT with component caching --------------------------------------

    def _sharp(self, clauses: list[MaskClause], proj: int) -> int:
        """#projected models over the variables occurring in ``clauses``.

        ``proj`` is the packed mask of projection variables *in the dense
        space the clauses currently live in* — component subproblems are
        re-packed into their own narrower space (see :func:`_repack`).
        """
        if not clauses:
            return 1
        key = (frozenset(clauses), proj)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise CounterBudgetExceeded(f"exceeded {self.max_nodes} nodes")

        simplified = _propagate(clauses)
        if simplified is None:
            self._cache[key] = 0
            return 0
        residual, true_mask, false_mask = simplified
        original_vars = 0
        for pos, neg in clauses:
            original_vars |= pos | neg
        residual_vars = 0
        for pos, neg in residual:
            residual_vars |= pos | neg
        # Projection variables fixed by propagation contribute a single
        # assignment each; projection variables that *disappeared* without
        # being fixed are free.  Auxiliary variables never multiply.
        vanished = original_vars & ~residual_vars & ~(true_mask | false_mask)
        total = 1 << (vanished & proj).bit_count()
        if residual:
            product = 1
            for component in _split_components(residual):
                product *= self._count_component(component, proj)
                if product == 0:
                    break
            total *= product
        self._cache[key] = total
        return total

    def _count_component(self, clauses: list[MaskClause], proj: int) -> int:
        component_vars = 0
        for pos, neg in clauses:
            component_vars |= pos | neg
        # Re-pack sparse components into their own dense space: masks shrink
        # to popcount-many bits (often a single machine word) and the cache
        # key becomes canonical, so isomorphic components met anywhere in
        # the search share one entry.
        if component_vars.bit_length() - component_vars.bit_count() >= 64:
            clauses, proj = _repack(clauses, component_vars, proj)
            component_vars = (1 << component_vars.bit_count()) - 1
        projected = component_vars & proj
        key = (frozenset(clauses), projected)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if not projected:
            # Auxiliary-only component: it contributes one choice per
            # projected model if satisfiable, none otherwise.
            total = 1 if self._satisfiable(clauses) else 0
            self._cache[key] = total
            return total
        bit = _most_frequent_bit(clauses, projected)
        residual_projected = projected & ~bit
        total = 0
        for positive in (True, False):
            branch = _assign(clauses, bit, positive)
            if branch is None:
                continue
            branch_vars = 0
            for pos, neg in branch:
                branch_vars |= pos | neg
            free = (residual_projected & ~branch_vars).bit_count()
            total += (1 << free) * self._sharp(branch, proj)
        self._cache[key] = total
        return total

    def _satisfiable(self, clauses: list[MaskClause]) -> bool:
        """DPLL satisfiability of a (typically tiny, auxiliary-only) residual."""
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise CounterBudgetExceeded(f"exceeded {self.max_nodes} nodes")
        simplified = _propagate(clauses)
        if simplified is None:
            return False
        residual = simplified[0]
        if not residual:
            return True
        pos, neg = residual[0]
        mask = pos | neg
        bit = mask & -mask
        for positive in (True, False):
            branch = _assign(residual, bit, positive)
            if branch is not None and self._satisfiable(branch):
                return True
        return False


def exact_count(cnf: CNF, max_nodes: int = 5_000_000) -> int:
    """One-shot exact projected model count."""
    return ExactCounter(max_nodes=max_nodes).count(cnf)


# -- packed clause helpers --------------------------------------------------------------


def _eliminate(
    clauses: list[MaskClause], proj: int, max_passes: int = 50
) -> list[MaskClause] | None:
    """Bounded Davis-Putnam elimination of non-projected variables.

    Repeatedly resolves an auxiliary variable out of the formula whenever
    the resolvent set is no larger than the clauses it replaces (the NiVER
    bound), which keeps the clause count monotonically non-increasing.
    Because the variable is existentially quantified in projected counting,
    each elimination preserves the projected model count exactly; pure
    auxiliary literals fall out as the special case of an empty resolvent
    set.  Returns the reduced clause list, or ``None`` when an empty
    resolvent proves the formula unsatisfiable.
    """
    work = list(dict.fromkeys(clauses))
    for _ in range(max_passes):
        changed = False
        all_vars = 0
        for pos, neg in work:
            all_vars |= pos | neg
        aux = all_vars & ~proj
        while aux:
            bit = aux & -aux
            aux ^= bit
            with_pos: list[MaskClause] = []
            with_neg: list[MaskClause] = []
            rest: list[MaskClause] = []
            for pos, neg in work:
                if pos & bit:
                    with_pos.append((pos, neg))
                elif neg & bit:
                    with_neg.append((pos, neg))
                else:
                    rest.append((pos, neg))
            if not with_pos and not with_neg:
                continue
            limit = len(with_pos) + len(with_neg)
            clear = ~bit
            resolvents: list[MaskClause] = []
            bounded = True
            for pos_a, neg_a in with_pos:
                pos_a &= clear
                for pos_b, neg_b in with_neg:
                    res_pos = pos_a | pos_b
                    res_neg = neg_a | (neg_b & clear)
                    if res_pos & res_neg:
                        continue  # tautology
                    if not (res_pos | res_neg):
                        return None  # empty resolvent: unsatisfiable
                    resolvents.append((res_pos, res_neg))
                    if len(resolvents) > limit:
                        bounded = False
                        break
                if not bounded:
                    break
            if not bounded:
                continue
            work = rest + list(dict.fromkeys(resolvents))
            changed = True
        if not changed:
            break
    return work


def _repack(
    clauses: list[MaskClause], component_vars: int, proj: int
) -> tuple[list[MaskClause], int]:
    """Re-pack a component into its own dense bit space.

    The set bits of ``component_vars`` are renumbered ``0..k-1`` in
    ascending order (order-preserving, hence canonical); returns the
    translated clauses and projection mask.
    """
    table: dict[int, int] = {}
    new_bit = 1
    mask = component_vars
    while mask:
        bit = mask & -mask
        mask ^= bit
        table[bit] = new_bit
        new_bit <<= 1
    new_clauses: list[MaskClause] = []
    for pos, neg in clauses:
        new_pos = new_neg = 0
        while pos:
            bit = pos & -pos
            pos ^= bit
            new_pos |= table[bit]
        while neg:
            bit = neg & -neg
            neg ^= bit
            new_neg |= table[bit]
        new_clauses.append((new_pos, new_neg))
    new_proj = 0
    mask = proj & component_vars
    while mask:
        bit = mask & -mask
        mask ^= bit
        new_proj |= table[bit]
    return new_clauses, new_proj


def _assign(
    clauses: list[MaskClause], bit: int, positive: bool
) -> list[MaskClause] | None:
    """Residual clauses after asserting packed var ``bit``; None on conflict."""
    out: list[MaskClause] = []
    if positive:
        for pos, neg in clauses:
            if pos & bit:
                continue  # satisfied
            if neg & bit:
                neg &= ~bit
                if not (pos | neg):
                    return None
            out.append((pos, neg))
    else:
        for pos, neg in clauses:
            if neg & bit:
                continue
            if pos & bit:
                pos &= ~bit
                if not (pos | neg):
                    return None
            out.append((pos, neg))
    return out


def _propagate(
    clauses: list[MaskClause],
) -> tuple[list[MaskClause], int, int] | None:
    """Exhaustive unit propagation over packed clauses via occurrence lists.

    Returns ``(residual clauses, true_mask, false_mask)`` — the masks of
    variables fixed true/false by propagation — or ``None`` on conflict.
    Each asserted unit only visits the clauses containing its variable.
    """
    # Occurrence lists keyed by packed bit: occurrences[bit] holds the ids
    # of clauses mentioning that variable.  Entries are never invalidated —
    # liveness and membership are re-checked at use time.
    occurrences: dict[int, list[int]] = {}
    stack: list[int] = []
    for ci, (pos, neg) in enumerate(clauses):
        mask = pos | neg
        if mask & (mask - 1) == 0:
            stack.append(ci)
        while mask:
            bit = mask & -mask
            mask ^= bit
            entry = occurrences.get(bit)
            if entry is None:
                occurrences[bit] = [ci]
            else:
                entry.append(ci)
    if not stack:
        return clauses, 0, 0

    pos_of, neg_of = map(list, zip(*clauses))
    alive = [True] * len(clauses)
    true_mask = 0
    false_mask = 0
    while stack:
        ci = stack.pop()
        if not alive[ci]:
            continue
        pos, neg = pos_of[ci], neg_of[ci]
        bit = pos | neg
        positive = pos != 0
        if positive:
            if bit & true_mask:
                alive[ci] = False
                continue
            if bit & false_mask:
                return None
            true_mask |= bit
        else:
            if bit & false_mask:
                alive[ci] = False
                continue
            if bit & true_mask:
                return None
            false_mask |= bit
        alive[ci] = False  # the unit clause itself is now satisfied
        for cj in occurrences[bit]:
            if not alive[cj]:
                continue
            pos_j, neg_j = pos_of[cj], neg_of[cj]
            if positive:
                if pos_j & bit:
                    alive[cj] = False
                    continue
                neg_j &= ~bit
                neg_of[cj] = neg_j
            else:
                if neg_j & bit:
                    alive[cj] = False
                    continue
                pos_j &= ~bit
                pos_of[cj] = pos_j
            remainder = pos_j | neg_j
            if remainder == 0:
                return None
            if remainder & (remainder - 1) == 0:
                stack.append(cj)
    residual = list(_compress(zip(pos_of, neg_of), alive))
    return residual, true_mask, false_mask


def _split_components(clauses: list[MaskClause]) -> list[list[MaskClause]]:
    """Partition clauses into connected components by shared variables.

    Components are grown by merging variable masks: a clause joins every
    existing group its mask intersects, fusing them.
    """
    # First merge variable masks only (no clause lists to copy around) …
    masks: list[int] = []
    for pos, neg in clauses:
        mask = pos | neg
        kept: list[int] = []
        for group_mask in masks:
            if group_mask & mask:
                mask |= group_mask
            else:
                kept.append(group_mask)
        kept.append(mask)
        masks = kept
    if len(masks) == 1:
        return [clauses]
    # … then distribute the clauses over the (disjoint) final masks.
    buckets: list[list[MaskClause]] = [[] for _ in masks]
    for clause in clauses:
        mask = clause[0] | clause[1]
        for gi, group_mask in enumerate(masks):
            if group_mask & mask:
                buckets[gi].append(clause)
                break
    return buckets


def _most_frequent_bit(clauses: list[MaskClause], candidates: int) -> int:
    """The packed variable (a power of two) within ``candidates`` with the
    highest occurrence score.

    Occurrences in short clauses are weighted up (16× for binary, 4× for
    ternary): assigning such a variable immediately creates units, so the
    branch collapses further under propagation.
    """
    counts: dict[int, int] = {}
    get = counts.get
    for pos, neg in clauses:
        mask = pos | neg
        size = mask.bit_count()
        weight = 16 if size == 2 else (4 if size == 3 else 1)
        mask &= candidates
        while mask:
            bit = mask & -mask
            counts[bit] = get(bit, 0) + weight
            mask ^= bit
    return max(counts, key=counts.get)
