"""Exact projected model counting (ProjMC-style backend) over packed bitmasks.

The counter is a DPLL-style projected #SAT procedure in the
sharpSAT/ProjMC lineage:

* unit propagation with failure detection as whole-formula mask sweeps:
  each pass applies the accumulated true/false masks to every clause with a
  handful of integer ops and collects the units it exposes, repeating until
  a pass assigns nothing.  (An occurrence-list variant was profiled out:
  rebuilding the per-literal lists at every search node dominated the whole
  counter — see ``benchmarks/run_bench.py --profile``);
* decomposition of the residual formula into connected components (on the
  clause/variable incidence graph), counted independently and multiplied;
* component caching keyed on packed clause signatures.  The cache is a
  bounded LRU (:class:`repro.counting.component_cache.ComponentCache`) that
  *persists across* ``count()`` calls — every cached count is a pure
  function of its key, so warm hits are bit-identical to cold recounts —
  and it can be injected, which is how
  :class:`repro.counting.engine.CountingEngine` shares one cache across
  every problem of a batch (pass ``component_cache=None`` to restore the
  old per-call behaviour);
* branching restricted to *projection* variables (the ``n²`` relation
  bits), choosing the most-occurring one; auxiliary Tseitin variables are
  never decision variables — they are fixed by propagation, and a residual
  component containing no projection variable only needs a satisfiability
  check (each projected model is counted once regardless of how many
  auxiliary extensions it has).

Representation.  The hot path never manipulates tuple clauses: ``count``
renumbers the occurring variables into a dense ``0..k-1`` index
(:meth:`repro.logic.cnf.CNF.packed_view`) and every clause becomes a
``(pos_mask, neg_mask)`` pair of Python ints.  Asserting a literal,
detecting units/empty clauses, splitting components and computing free
variables are then single integer ops per clause, and cache keys are
``frozenset``s of per-clause integers ``(pos << k) | neg`` instead of
``frozenset``s of literal tuples.  The original tuple-based algorithm is
preserved in :mod:`repro.counting.legacy` as a differential baseline.

Projection.  Because the search *is* projected counting, the counter no
longer needs the ``aux_unique`` unique-extension flag to be correct: the
flag (DESIGN.md §5.2) merely records that plain #SAT would agree with the
projected count.  Both flagged and unflagged CNFs take the same code path,
which replaces the seed's slow CDCL-oracle fallback for externally
supplied CNFs.
"""

from __future__ import annotations

from time import monotonic

from repro.counting.api import Capabilities
from repro.counting.component_cache import ComponentCache
from repro.logic.cnf import CNF, MaskClause

#: Sentinel: "build me a private persistent cache" (the default).
_FRESH_CACHE = object()

#: Byte cap on the component-cache slice pickled along with the counter
#: (worker clones get the MRU slice and warm the rest themselves).
_PICKLED_CACHE_BYTES = 64 << 20

#: Search nodes between wall-clock probes when a deadline is armed: the
#: monotonic() call stays off the per-node path, and at Python node rates
#: (~1M nodes/s at best) the cadence bounds overshoot well under a
#: millisecond.
_DEADLINE_CHECK_MASK = 127


class CounterAbort(Exception):
    """A count was abandoned before producing a value (budget or deadline).

    The common base of the two resource-limit aborts, so callers that
    treat "the counter gave up" uniformly — the engine's degradation
    ladder, retry loops — can catch one type.  Partial work (component
    cache entries, elimination memos) survives the abort, which is what
    makes a retried count resume warm instead of starting over.

    The family round-trips through JSON (:meth:`to_dict` /
    :meth:`from_dict`): the counting service serializes an abort across
    the socket and the client rehydrates the *same subclass*, so
    ``except CounterTimeout`` behaves identically in-process and over the
    wire.
    """

    #: Stable wire tag; subclasses override (also the CountFailure kind).
    kind = "abort"

    def to_dict(self) -> dict:
        """JSON-safe encoding: the wire ``kind`` tag plus the message."""
        return {"kind": self.kind, "message": str(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CounterAbort":
        """Rehydrate the matching subclass from :meth:`to_dict` output.

        An unknown ``kind`` (a newer server talking to an older client)
        degrades to the base :class:`CounterAbort` instead of failing the
        decode — the caller still catches the family.
        """
        kind = payload.get("kind", "abort")
        for klass in (CounterTimeout, CounterBudgetExceeded, CounterAbort):
            if klass.kind == kind:
                return klass(payload.get("message", ""))
        return CounterAbort(payload.get("message", ""))


class CounterBudgetExceeded(CounterAbort):
    """Raised when the counter exceeds its node budget (a portable timeout)."""

    kind = "budget"


class CounterTimeout(CounterAbort):
    """Raised when the counter exceeds its wall-clock deadline.

    The paper's 5000-second timeout, enforced cooperatively: the search
    probes ``time.monotonic()`` every :data:`_DEADLINE_CHECK_MASK` + 1
    nodes, so the abort lands within the deadline plus one probe interval.
    """

    kind = "timeout"


class ExactCounter:
    """Exact (projected) model counter.

    Parameters
    ----------
    max_nodes:
        Budget on search nodes; ``CounterBudgetExceeded`` is raised when
        exhausted.  This substitutes for the paper's 5000-second timeout.
        The budget is per ``count()`` call; a warm component cache makes a
        call spend fewer nodes, never more.
    deadline:
        Wall-clock seconds per ``count()`` call; ``CounterTimeout`` is
        raised when exceeded (checked cooperatively at the node-budget
        cadence, so the abort lands within a few milliseconds of the
        deadline).  ``None`` (default) disables the clock.  Unlike the
        node budget, a deadline is machine-dependent — counts themselves
        remain bit-identical; only *whether a count finishes* varies.
    component_cache:
        The component cache counted through.  By default the counter owns a
        private bounded :class:`ComponentCache` that survives across
        ``count()`` calls; pass a shared instance to pool components across
        counters (what :class:`repro.counting.engine.CountingEngine` does),
        or ``None`` to restore the historical per-call scratch dict.
        Cached counts are pure functions of their keys, so any of the three
        modes produces bit-identical counts.
    """

    name = "exact"
    #: Counts are exact, hence portable across backends and safe to persist.
    exact = True
    #: Declared contract (see :class:`repro.counting.api.Capabilities`):
    #: projected DPLL search handles auxiliaries, worker clones reproduce
    #: the serial stream, and the engine may install a shared component
    #: cache on the ``component_cache`` attribute.
    capabilities = Capabilities(
        exact=True,
        counts_formulas=False,
        supports_projection=True,
        parallel_safe=True,
        owns_component_cache=True,
        decomposes=True,
    )

    def __init__(
        self,
        max_nodes: int = 5_000_000,
        component_cache: ComponentCache | None | object = _FRESH_CACHE,
        deadline: float | None = None,
    ) -> None:
        self.max_nodes = max_nodes
        self.deadline = deadline
        self._nodes = 0
        self._deadline_at: float | None = None
        if component_cache is _FRESH_CACHE:
            component_cache = ComponentCache()
        self.component_cache: ComponentCache | None = component_cache

    def __getstate__(self):
        # The per-call cache bindings are bound methods of unpicklable
        # builtins; workers rebind them on their first count().  A warm
        # component cache is shipped only as its MRU slice — serializing
        # the full budget (hundreds of MiB) would stall pool creation and
        # multiply resident memory per worker clone.
        state = self.__dict__.copy()
        state.pop("_cache_get", None)
        state.pop("_cache_put", None)
        # Mid-call clock state: meaningless in a clone, reset per count().
        state["_deadline_at"] = None
        cache = state.get("component_cache")
        if cache is not None and (
            cache.max_bytes is None
            or cache.max_bytes > _PICKLED_CACHE_BYTES
            or cache.approximate_bytes() > _PICKLED_CACHE_BYTES
        ):
            # The clone is capped too, so an N-worker pool holds N small
            # caches, not N copies of the parent's full budget.
            state["component_cache"] = cache.snapshot(_PICKLED_CACHE_BYTES)
        return state

    # -- public API ---------------------------------------------------------------

    def count(self, cnf: CNF) -> int:
        """Number of models of ``cnf`` projected onto ``cnf.projected_vars()``."""
        self._nodes = 0
        self._deadline_at = (
            monotonic() + self.deadline if self.deadline is not None else None
        )
        # Bind the cache pair for this call: the persistent (possibly
        # engine-shared) cache when one is attached, a scratch dict
        # otherwise.  Rebinding per call keeps an engine free to attach a
        # shared cache after construction.
        cache = self.component_cache
        if cache is not None:
            self._cache_get = cache.get
            self._cache_put = cache.put
        else:
            scratch: dict[tuple, int] = {}
            self._cache_get = scratch.get
            self._cache_put = scratch.__setitem__
        if any(len(clause) == 0 for clause in cnf.clauses):
            return 0  # an empty clause is unsatisfiable
        projection = cnf.projected_vars()
        packed = cnf.packed_view()
        proj_mask = 0
        index = packed.index
        for var in projection:
            bit_index = index.get(var)
            if bit_index is not None:
                proj_mask |= 1 << bit_index
        # Projection variables not occurring in any clause are free.
        multiplier = 1 << (len(projection) - proj_mask.bit_count())

        # Top-level simplification: one propagation pass, then bounded
        # Davis-Putnam elimination of the auxiliary variables.  Resolving a
        # non-projected variable away (∃-elimination) preserves the
        # projected model count exactly, and Tseitin definitions resolve
        # away with *fewer* clauses than they came with, so the search runs
        # on a formula close to the projection instead of the full encoding.
        simplified = _propagate(packed.clauses)
        if simplified is None:
            return 0
        residual, true_mask, false_mask, residual_vars = simplified
        occurring = (1 << packed.num_vars) - 1  # the dense space is exactly
        # the occurring variables
        vanished = occurring & ~residual_vars & ~(true_mask | false_mask)
        multiplier <<= (vanished & proj_mask).bit_count()
        eliminated = self._eliminate_memoized(residual, proj_mask)
        if eliminated is None:
            return 0
        eliminated_vars = 0
        for pos, neg in eliminated:
            eliminated_vars |= pos | neg
        # Projection variables whose every constraint resolved away are free.
        multiplier <<= ((residual_vars & proj_mask) & ~eliminated_vars).bit_count()
        return multiplier * self._sharp(eliminated, proj_mask, eliminated_vars)

    def decompose(
        self, cnf: CNF, min_component_vars: int = 2
    ) -> tuple[int, list[CNF]] | None:
        """Split ``cnf`` into independent sub-problems whose counts multiply.

        Mirrors :meth:`count`'s top-level pipeline — propagation, memoized
        auxiliary elimination, free-variable accounting — up to the first
        component split, then stops and *returns* the components instead
        of recursing into them:

        ``count(cnf) == multiplier * prod(count(sub) for sub in subs)``

        bit-exactly, for any exact counter.  Returns ``None`` whenever a
        split is not worth shipping anywhere — the formula is trivially
        unsatisfiable, propagation/elimination solves it outright, the
        residual is one connected component, or fewer than two components
        reach ``min_component_vars`` variables — so callers fall through
        to a plain :meth:`count` with uniform provenance.  This is the
        engine's intra-problem fan-out hook
        (:class:`~repro.counting.api.Capabilities` ``decomposes``,
        ``EngineConfig(fanout_min_vars=…)``).

        Each sub-CNF is *canonically renumbered* into its own dense
        ``1..k`` variable space (component bits ascending — the same
        order-preserving renumbering :func:`_repack` applies to cache
        keys), so structurally identical components met in different
        problems — or ten times inside one antisymmetry constraint —
        share one signature, hence one memo/store row and one backend
        call.  Components with no projected variables come back with an
        empty (non-``None``) projection: counting one is exactly the
        satisfiability check :meth:`count` already performs for
        auxiliary-only residuals.
        """
        if any(len(clause) == 0 for clause in cnf.clauses):
            return None
        projection = cnf.projected_vars()
        packed = cnf.packed_view()
        proj_mask = 0
        index = packed.index
        for var in projection:
            bit_index = index.get(var)
            if bit_index is not None:
                proj_mask |= 1 << bit_index
        multiplier = 1 << (len(projection) - proj_mask.bit_count())
        simplified = _propagate(packed.clauses)
        if simplified is None:
            return None
        residual, true_mask, false_mask, residual_vars = simplified
        occurring = (1 << packed.num_vars) - 1
        vanished = occurring & ~residual_vars & ~(true_mask | false_mask)
        multiplier <<= (vanished & proj_mask).bit_count()
        eliminated = self._eliminate_memoized(residual, proj_mask)
        if eliminated is None or not eliminated:
            return None
        eliminated_vars = 0
        for pos, neg in eliminated:
            eliminated_vars |= pos | neg
        multiplier <<= ((residual_vars & proj_mask) & ~eliminated_vars).bit_count()
        # Elimination can expose fresh units; one more propagation pass
        # mirrors the first step of the search this replaces.
        simplified = _propagate(eliminated)
        if simplified is None:
            return None
        residual, true_mask, false_mask, residual_vars = simplified
        vanished = eliminated_vars & ~residual_vars & ~(true_mask | false_mask)
        multiplier <<= (vanished & proj_mask).bit_count()
        if not residual:
            return None
        components = _split_components(residual)
        nontrivial = sum(
            1
            for component_vars, _ in components
            if component_vars.bit_count() >= min_component_vars
        )
        if len(components) < 2 or nontrivial < 2:
            return None
        subs: list[CNF] = []
        for component_vars, component in components:
            bits: list[int] = []
            mask = component_vars
            while mask:
                bit = mask & -mask
                mask ^= bit
                bits.append(bit)
            renumber = {bit: i + 1 for i, bit in enumerate(bits)}
            sub = CNF(
                num_vars=len(bits),
                projection=tuple(
                    renumber[bit] for bit in bits if bit & proj_mask
                ),
            )
            for pos, neg in component:
                literals: list[int] = []
                m = pos
                while m:
                    bit = m & -m
                    m ^= bit
                    literals.append(renumber[bit])
                m = neg
                while m:
                    bit = m & -m
                    m ^= bit
                    literals.append(-renumber[bit])
                sub.add_clause(tuple(literals))
            subs.append(sub)
        return multiplier, subs

    def _eliminate_memoized(
        self, residual: list[MaskClause], proj_mask: int
    ) -> list[MaskClause] | None:
        """Top-level auxiliary elimination, memoized in the persistent cache.

        Davis-Putnam elimination only ever rewrites clauses containing an
        auxiliary pivot; clauses entirely inside the projection are inert —
        they can never hold a pivot, and the NiVER bound only counts pivot
        clauses.  So the input splits into an *active* (aux-touching) part
        and an inert remainder, and only the active part is eliminated —
        keyed in the component cache, because MCML batches conjoin one φ
        with many projection-only tree regions: every problem of such a
        batch shares φ's active part exactly, and elimination (~40% of a
        conjunction's count time, see ``run_bench.py --profile``) is paid
        once per batch instead of once per problem.
        """
        cache = self.component_cache
        if cache is None:
            return _eliminate(residual, proj_mask)
        active: list[MaskClause] = []
        inert: list[MaskClause] = []
        for clause in residual:
            if (clause[0] | clause[1]) & ~proj_mask:
                active.append(clause)
            else:
                inert.append(clause)
        if not active:
            return residual
        key = ("elim", frozenset(active), proj_mask)
        cached = cache.get(key)
        if cached is not None:
            return None if cached == "unsat" else inert + list(cached)
        eliminated = _eliminate(active, proj_mask)
        cache.put(key, "unsat" if eliminated is None else tuple(eliminated))
        if eliminated is None:
            return None
        return inert + eliminated

    # -- projected #SAT with component caching --------------------------------------

    def _sharp(
        self,
        clauses: list[MaskClause],
        proj: int,
        occurring: int | None = None,
        has_units: bool = True,
    ) -> int:
        """#projected models over the variables occurring in ``clauses``.

        ``proj`` is the packed mask of projection variables *in the dense
        space the clauses currently live in* — component subproblems are
        re-packed into their own narrower space (see :func:`_repack`).
        ``occurring`` (the union of the clauses' variable masks) is passed
        down by callers that already computed it; ``has_units=False`` lets
        :meth:`_count_component` skip propagation for branches ``_assign``
        proved unit-free.

        Every cached value is a pure function of its key — the clause set
        plus the projection restricted to the occurring variables — which is
        what makes the cache shareable across calls and problems.
        """
        if not clauses:
            return 1
        if occurring is None:
            occurring = 0
            for pos, neg in clauses:
                occurring |= pos | neg
        # Restricting ``proj`` to the occurring variables canonicalises the
        # key: the count never depends on projection bits outside them.
        key = (frozenset(clauses), proj & occurring)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise CounterBudgetExceeded(f"exceeded {self.max_nodes} nodes")
        if (
            self._deadline_at is not None
            and self._nodes & _DEADLINE_CHECK_MASK == 0
            and monotonic() > self._deadline_at
        ):
            raise CounterTimeout(f"exceeded {self.deadline}s wall-clock deadline")

        if has_units:
            simplified = _propagate(clauses)
            if simplified is None:
                self._cache_put(key, 0)
                return 0
            residual, true_mask, false_mask, residual_vars = simplified
            # Projection variables fixed by propagation contribute a single
            # assignment each; projection variables that *disappeared*
            # without being fixed are free.  Auxiliaries never multiply.
            vanished = occurring & ~residual_vars & ~(true_mask | false_mask)
            total = 1 << (vanished & proj).bit_count()
        else:
            residual, residual_vars, total = clauses, occurring, 1
        if residual:
            product = 1
            for component_vars, component in _split_components(residual):
                product *= self._count_component(component, component_vars, proj)
                if product == 0:
                    break
            total *= product
        self._cache_put(key, total)
        return total

    def _count_component(
        self, clauses: list[MaskClause], component_vars: int, proj: int
    ) -> int:
        # Re-pack sparse components into their own dense space: masks shrink
        # to popcount-many bits (often a single machine word) and the cache
        # key becomes canonical, so isomorphic components met anywhere in
        # the search — including in *other* problems sharing the cache —
        # share one entry.
        if component_vars.bit_length() - component_vars.bit_count() >= 64:
            clauses, proj = _repack(clauses, component_vars, proj)
            component_vars = (1 << component_vars.bit_count()) - 1
        projected = component_vars & proj
        key = (frozenset(clauses), projected)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        if not projected:
            # Auxiliary-only component: it contributes one choice per
            # projected model if satisfiable, none otherwise.
            total = 1 if self._satisfiable(clauses) else 0
            self._cache_put(key, total)
            return total
        bit = _most_frequent_bit(clauses, projected)
        residual_projected = projected & ~bit
        total = 0
        for positive in (True, False):
            branch = _assign(clauses, bit, positive)
            if branch is None:
                continue
            residual, has_units, branch_vars = branch
            free = (residual_projected & ~branch_vars).bit_count()
            total += (1 << free) * self._sharp(
                residual, proj, branch_vars, has_units
            )
        self._cache_put(key, total)
        return total

    def _satisfiable(self, clauses: list[MaskClause]) -> bool:
        """DPLL satisfiability of a (typically tiny, auxiliary-only) residual."""
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise CounterBudgetExceeded(f"exceeded {self.max_nodes} nodes")
        if (
            self._deadline_at is not None
            and self._nodes & _DEADLINE_CHECK_MASK == 0
            and monotonic() > self._deadline_at
        ):
            raise CounterTimeout(f"exceeded {self.deadline}s wall-clock deadline")
        simplified = _propagate(clauses)
        if simplified is None:
            return False
        residual = simplified[0]
        if not residual:
            return True
        pos, neg = residual[0]
        mask = pos | neg
        bit = mask & -mask
        for positive in (True, False):
            branch = _assign(residual, bit, positive)
            if branch is not None and self._satisfiable(branch[0]):
                return True
        return False


def exact_count(
    cnf: CNF, max_nodes: int = 5_000_000, deadline: float | None = None
) -> int:
    """One-shot exact projected model count."""
    return ExactCounter(max_nodes=max_nodes, deadline=deadline).count(cnf)


# -- packed clause helpers --------------------------------------------------------------


def _eliminate(
    clauses: list[MaskClause], proj: int, max_passes: int = 50
) -> list[MaskClause] | None:
    """Bounded Davis-Putnam elimination of non-projected variables.

    Repeatedly resolves an auxiliary variable out of the formula whenever
    the resolvent set is no larger than the clauses it replaces (the NiVER
    bound), which keeps the clause count monotonically non-increasing.
    Because the variable is existentially quantified in projected counting,
    each elimination preserves the projected model count exactly; pure
    auxiliary literals fall out as the special case of an empty resolvent
    set.  Returns the reduced clause list, or ``None`` when an empty
    resolvent proves the formula unsatisfiable.
    """
    work = list(dict.fromkeys(clauses))
    for _ in range(max_passes):
        changed = False
        all_vars = 0
        for pos, neg in work:
            all_vars |= pos | neg
        aux = all_vars & ~proj
        while aux:
            bit = aux & -aux
            aux ^= bit
            with_pos: list[MaskClause] = []
            with_neg: list[MaskClause] = []
            rest: list[MaskClause] = []
            for pos, neg in work:
                if pos & bit:
                    with_pos.append((pos, neg))
                elif neg & bit:
                    with_neg.append((pos, neg))
                else:
                    rest.append((pos, neg))
            if not with_pos and not with_neg:
                continue
            limit = len(with_pos) + len(with_neg)
            clear = ~bit
            resolvents: list[MaskClause] = []
            bounded = True
            for pos_a, neg_a in with_pos:
                pos_a &= clear
                for pos_b, neg_b in with_neg:
                    res_pos = pos_a | pos_b
                    res_neg = neg_a | (neg_b & clear)
                    if res_pos & res_neg:
                        continue  # tautology
                    if not (res_pos | res_neg):
                        return None  # empty resolvent: unsatisfiable
                    resolvents.append((res_pos, res_neg))
                    if len(resolvents) > limit:
                        bounded = False
                        break
                if not bounded:
                    break
            if not bounded:
                continue
            work = rest + list(dict.fromkeys(resolvents))
            changed = True
        if not changed:
            break
    return work


def _repack(
    clauses: list[MaskClause], component_vars: int, proj: int
) -> tuple[list[MaskClause], int]:
    """Re-pack a component into its own dense bit space.

    The set bits of ``component_vars`` are renumbered ``0..k-1`` in
    ascending order (order-preserving, hence canonical); returns the
    translated clauses and projection mask.
    """
    table: dict[int, int] = {}
    new_bit = 1
    mask = component_vars
    while mask:
        bit = mask & -mask
        mask ^= bit
        table[bit] = new_bit
        new_bit <<= 1
    new_clauses: list[MaskClause] = []
    for pos, neg in clauses:
        new_pos = new_neg = 0
        while pos:
            bit = pos & -pos
            pos ^= bit
            new_pos |= table[bit]
        while neg:
            bit = neg & -neg
            neg ^= bit
            new_neg |= table[bit]
        new_clauses.append((new_pos, new_neg))
    new_proj = 0
    mask = proj & component_vars
    while mask:
        bit = mask & -mask
        mask ^= bit
        new_proj |= table[bit]
    return new_clauses, new_proj


def _assign(
    clauses: list[MaskClause], bit: int, positive: bool
) -> tuple[list[MaskClause], bool, int] | None:
    """Residual clauses after asserting packed var ``bit``; None on conflict.

    Returns ``(residual, has_units, residual_vars)``: whether the
    assignment exposed any unit clause, and the union of the residual's
    variable masks — both computed for free during the sweep so callers
    skip a rescan.  ``has_units`` assumes the *input* is unit-free, which
    holds at every call site (inputs are post-propagation residuals).
    """
    out: list[MaskClause] = []
    append = out.append
    has_units = False
    residual_vars = 0
    if positive:
        for pos, neg in clauses:
            if pos & bit:
                continue  # satisfied
            if neg & bit:
                neg ^= bit
                mask = pos | neg
                if not mask:
                    return None
                if mask & (mask - 1) == 0:
                    has_units = True
                residual_vars |= mask
            else:
                residual_vars |= pos | neg
            append((pos, neg))
    else:
        for pos, neg in clauses:
            if neg & bit:
                continue
            if pos & bit:
                pos ^= bit
                mask = pos | neg
                if not mask:
                    return None
                if mask & (mask - 1) == 0:
                    has_units = True
                residual_vars |= mask
            else:
                residual_vars |= pos | neg
            append((pos, neg))
    return out, has_units, residual_vars


def _propagate(
    clauses: list[MaskClause],
) -> tuple[list[MaskClause], int, int, int] | None:
    """Exhaustive unit propagation over packed clauses via mask sweeps.

    Returns ``(residual clauses, true_mask, false_mask, residual_vars)`` —
    the masks of variables fixed true/false by propagation and the union of
    the residual's variable masks — or ``None`` on conflict.

    Each pass applies the accumulated assignment masks to every clause
    (satisfied → dropped, falsified literals → stripped, exposed units →
    absorbed into the masks) and repeats until a pass assigns nothing.
    Units are applied *live* within a pass, so forward implication chains
    collapse in one sweep.  This replaced an occurrence-list propagator
    whose per-node list construction dominated the whole counter's profile
    (~40% of total time at scope 5): a pass is a handful of int ops per
    clause, with no per-literal dict traffic at all.
    """
    true_mask = 0
    false_mask = 0
    work = clauses
    while True:
        residual: list[MaskClause] = []
        append = residual.append
        assigned = true_mask | false_mask
        residual_vars = 0
        progressed = False
        for pos, neg in work:
            mask = pos | neg
            if not (mask & assigned):
                # Untouched by any assignment so far (a unit is impossible
                # here: inputs are unit-free after the first sweep, and the
                # first sweep's masks start empty only until its first unit).
                if mask & (mask - 1):
                    residual_vars |= mask
                    append((pos, neg))
                else:
                    if pos:
                        true_mask |= mask
                    else:
                        false_mask |= mask
                    assigned |= mask
                    progressed = True
                continue
            if pos & true_mask or neg & false_mask:
                continue  # satisfied by an assignment made so far
            pos &= ~false_mask
            neg &= ~true_mask
            mask = pos | neg
            if not mask:
                return None  # every literal falsified: conflict
            if mask & (mask - 1) == 0:
                # A unit: absorb it into the assignment.  A contradicting
                # unit later in the sweep strips to the empty clause above.
                if pos:
                    true_mask |= mask
                else:
                    false_mask |= mask
                assigned |= mask
                progressed = True
            else:
                residual_vars |= mask
                append((pos, neg))
        if not progressed:
            # Nothing assigned this pass, so every surviving clause was
            # checked against the final masks: the residual is exact.
            return residual, true_mask, false_mask, residual_vars
        work = residual


def _split_components(
    clauses: list[MaskClause],
) -> list[tuple[int, list[MaskClause]]]:
    """Partition clauses into connected components by shared variables.

    Components are grown by merging variable masks: a clause joins every
    existing group its mask intersects, fusing them.  Returns
    ``(component_vars, component clauses)`` pairs — the mask comes free
    from the merge, sparing callers a rescan.
    """
    # First merge variable masks only (no clause lists to copy around) …
    masks: list[int] = []
    for pos, neg in clauses:
        mask = pos | neg
        kept: list[int] = []
        for group_mask in masks:
            if group_mask & mask:
                mask |= group_mask
            else:
                kept.append(group_mask)
        kept.append(mask)
        masks = kept
    if len(masks) == 1:
        return [(masks[0], clauses)]
    # … then distribute the clauses over the (disjoint) final masks.
    buckets: list[list[MaskClause]] = [[] for _ in masks]
    for clause in clauses:
        mask = clause[0] | clause[1]
        for gi, group_mask in enumerate(masks):
            if group_mask & mask:
                buckets[gi].append(clause)
                break
    return list(zip(masks, buckets))


def _most_frequent_bit(clauses: list[MaskClause], candidates: int) -> int:
    """The packed variable (a power of two) within ``candidates`` with the
    highest occurrence score.

    Occurrences in short clauses are weighted up (16× for binary, 4× for
    ternary): assigning such a variable immediately creates units, so the
    branch collapses further under propagation.
    """
    counts: dict[int, int] = {}
    get = counts.get
    for pos, neg in clauses:
        mask = pos | neg
        size = mask.bit_count()
        weight = 16 if size == 2 else (4 if size == 3 else 1)
        mask &= candidates
        while mask:
            bit = mask & -mask
            counts[bit] = get(bit, 0) + weight
            mask ^= bit
    return max(counts, key=counts.get)
