"""Reference DPLL solver.

A deliberately simple, obviously-correct Davis–Putnam–Logemann–Loveland
solver: recursive, unit propagation + pure-literal elimination, first
unassigned variable branching.  It exists as a *differential oracle* for the
CDCL solver — when the two ever disagree on satisfiability, the bug is in
the fast one.  Exponential and recursion-bound; never use it for real work.
"""

from __future__ import annotations

from collections.abc import Iterable

Clause = tuple[int, ...]


def _simplify(clauses: list[Clause], literal: int) -> list[Clause] | None:
    """Assert ``literal``; drop satisfied clauses; None on an empty clause."""
    out: list[Clause] = []
    for clause in clauses:
        if literal in clause:
            continue
        reduced = tuple(l for l in clause if l != -literal)
        if not reduced:
            return None
        out.append(reduced)
    return out


def _unit_literal(clauses: list[Clause]) -> int | None:
    for clause in clauses:
        if len(clause) == 1:
            return clause[0]
    return None


def _pure_literal(clauses: list[Clause]) -> int | None:
    polarity: dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            var = abs(literal)
            seen = polarity.get(var, 0)
            polarity[var] = seen | (1 if literal > 0 else 2)
    for var, mask in polarity.items():
        if mask == 1:
            return var
        if mask == 2:
            return -var
    return None


def dpll_satisfiable(
    clauses: Iterable[Iterable[int]], num_vars: int | None = None
) -> dict[int, bool] | None:
    """A model (over the mentioned variables) or None if unsatisfiable."""
    work = [tuple(c) for c in clauses]
    for clause in work:
        if not clause:
            return None

    assignment: dict[int, bool] = {}

    def go(current: list[Clause], partial: dict[int, bool]) -> dict[int, bool] | None:
        while True:
            literal = _unit_literal(current)
            if literal is None:
                literal = _pure_literal(current)
            if literal is None:
                break
            partial = dict(partial)
            partial[abs(literal)] = literal > 0
            reduced = _simplify(current, literal)
            if reduced is None:
                return None
            current = reduced
        if not current:
            return partial
        branch_var = abs(current[0][0])
        for polarity in (branch_var, -branch_var):
            reduced = _simplify(current, polarity)
            if reduced is None:
                continue
            extended = dict(partial)
            extended[branch_var] = polarity > 0
            result = go(reduced, extended)
            if result is not None:
                return result
        return None

    model = go(work, assignment)
    if model is None:
        return None
    if num_vars is not None:
        for var in range(1, num_vars + 1):
            model.setdefault(var, False)
    return model


def dpll_count(clauses: Iterable[Iterable[int]], num_vars: int) -> int:
    """Reference #SAT over variables 1..num_vars (exponential; tests only)."""
    work = [tuple(c) for c in clauses]
    if any(not clause for clause in work):
        return 0

    def go(current: list[Clause], free: int) -> int:
        literal = _unit_literal(current)
        if literal is not None:
            reduced = _simplify(current, literal)
            if reduced is None:
                return 0
            return go(reduced, free - 1)
        if not current:
            return 1 << free
        branch_var = abs(current[0][0])
        total = 0
        for polarity in (branch_var, -branch_var):
            reduced = _simplify(current, polarity)
            if reduced is not None:
                total += go(reduced, free - 1)
        return total

    mentioned = {abs(l) for c in work for l in c}
    if mentioned and max(mentioned) > num_vars:
        raise ValueError("clause variable exceeds num_vars")
    # Count over mentioned variables, then multiply by free ones.
    return go(work, len(mentioned)) << (num_vars - len(mentioned))
