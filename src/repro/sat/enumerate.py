"""Projected AllSAT enumeration.

Alloy's analyzer enumerates *all* solutions of a command by repeatedly
solving and adding a blocking clause for the previous solution.  We do the
same, projected onto a chosen variable set (Alloy blocks on the primary
variables — the relation bits — which is what makes two solutions that differ
only in auxiliary variables count once).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.logic.cnf import CNF
from repro.sat.solver import SatResult, Solver


def enumerate_models(
    cnf: CNF,
    projection: Iterable[int] | None = None,
    limit: int | None = None,
) -> Iterator[dict[int, bool]]:
    """Yield every model of ``cnf`` projected onto ``projection``.

    Each yielded dict maps projected variable ids to booleans; each distinct
    projected assignment is produced exactly once.  ``limit`` caps the number
    of models (used to bound cell sizes in the ApproxMC loop and to guard
    runaway enumerations in dataset generation).
    """
    if projection is None:
        proj = sorted(cnf.projected_vars())
    else:
        proj = sorted(projection)
    solver = Solver(cnf.num_vars)
    for clause in cnf.clauses:
        solver.add_clause(clause)
    produced = 0
    while limit is None or produced < limit:
        result = solver.solve()
        if result is not SatResult.SAT:
            return
        model = solver.model()
        projected = {v: model.get(v, False) for v in proj}
        yield projected
        produced += 1
        # Block this projected assignment.
        blocking = [(-v if projected[v] else v) for v in proj]
        if not blocking:
            return  # empty projection: a single (trivial) projected model
        solver.add_clause(blocking)


def count_models(
    cnf: CNF,
    projection: Iterable[int] | None = None,
    limit: int | None = None,
) -> int:
    """Number of projected models, by exhaustive enumeration.

    This mirrors how the paper obtains its ``Valid (Alloy)`` column in
    Table 1: brute enumeration with the SAT back-end.  ``limit`` makes the
    call usable as a "are there at least k models?" query: the result is
    ``min(#models, limit)``.
    """
    count = 0
    for _ in enumerate_models(cnf, projection=projection, limit=limit):
        count += 1
    return count


def enumerate_as_bits(
    cnf: CNF,
    variable_order: Sequence[int],
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield models as 0/1 tuples in a fixed variable order.

    Convenience used by dataset generation: the variable order is the
    flattened adjacency matrix, so each tuple is directly a feature vector.
    """
    for model in enumerate_models(cnf, projection=variable_order, limit=limit):
        yield tuple(1 if model[v] else 0 for v in variable_order)
