"""A CDCL SAT solver.

This is a conventional conflict-driven clause-learning solver in the MiniSat
lineage, written for clarity first and speed second — but with the standard
algorithmic machinery so that the formulas this project produces (hundreds of
variables, tens of thousands of clauses) solve in milliseconds:

* two-watched-literal unit propagation;
* EVSIDS-style activity branching with phase saving;
* first-UIP conflict analysis with recursive clause minimisation;
* Luby-sequence restarts;
* learned-clause database reduction (activity-based);
* incremental solving under assumptions (used by AllSAT enumeration and the
  ApproxMC cell-search loop).

Literal encoding: externally literals are DIMACS ints.  Internally a literal
``l`` is ``2*v`` (positive) or ``2*v+1`` (negative) for variable index ``v``
(0-based), which makes negation ``l ^ 1`` and array indexing cheap.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence (MiniSat's)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


_UNASSIGNED = -1


class _Clause:
    """Internal clause representation (literals in internal encoding)."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: list[int], learned: bool = False) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


class Solver:
    """CDCL solver over DIMACS-style clauses.

    Typical usage::

        solver = Solver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve() is SatResult.SAT:
            model = solver.model()          # dict var -> bool

    The solver is incremental: more clauses may be added between ``solve``
    calls, and ``solve(assumptions=[...])`` solves under temporary literal
    assumptions without permanently constraining the instance.
    """

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = 0
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        self._watches: list[list[_Clause]] = []
        self._assign: list[int] = []  # per-var: 0/1 or _UNASSIGNED
        self._level: list[int] = []
        self._reason: list[_Clause | None] = []
        self._phase: list[bool] = []
        self._activity: list[float] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._trail: list[int] = []  # internal literals in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._conflicts = 0
        self.stats = {"decisions": 0, "propagations": 0, "conflicts": 0, "restarts": 0}
        self._ensure_vars(num_vars)

    # -- variable / clause management -------------------------------------------

    def _ensure_vars(self, num_vars: int) -> None:
        while self.num_vars < num_vars:
            self.num_vars += 1
            self._watches.append([])
            self._watches.append([])
            self._assign.append(_UNASSIGNED)
            self._level.append(-1)
            self._reason.append(None)
            self._phase.append(False)
            self._activity.append(0.0)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause of DIMACS literals.

        May be called between ``solve`` calls; any leftover search state is
        rolled back to decision level 0 first (incremental solving).
        """
        if self._trail_lim:
            self._backtrack(0)
        lits: list[int] = []
        seen: set[int] = set()
        for ext in literals:
            if ext == 0:
                raise ValueError("0 is not a literal")
            self._ensure_vars(abs(ext))
            lit = self._to_internal(ext)
            if lit ^ 1 in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            lits.append(lit)
        if not self._ok:
            return
        # Remove literals already false at level 0; stop if already satisfied.
        filtered: list[int] = []
        for lit in lits:
            value = self._lit_value(lit)
            if value == 1 and self._level[lit >> 1] == 0:
                return
            if value == 0 and self._level[lit >> 1] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
            elif self._propagate() is not None:
                self._ok = False
            return
        clause = _Clause(filtered)
        self._clauses.append(clause)
        self._attach(clause)

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0] ^ 1].append(clause)
        self._watches[clause.lits[1] ^ 1].append(clause)

    @staticmethod
    def _to_internal(ext: int) -> int:
        var = abs(ext) - 1
        return 2 * var if ext > 0 else 2 * var + 1

    @staticmethod
    def _to_external(lit: int) -> int:
        var = (lit >> 1) + 1
        return var if (lit & 1) == 0 else -var

    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, _UNASSIGNED otherwise."""
        value = self._assign[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    # -- trail -------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        value = self._lit_value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = lit >> 1
        self._assign[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = lit >> 1
            self._phase[var] = (lit & 1) == 0
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            self._level[var] = -1
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- propagation ---------------------------------------------------------------

    def _propagate(self) -> _Clause | None:
        """Two-watched-literal BCP; returns the conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = lit ^ 1
            watchers = self._watches[lit]
            self._watches[lit] = []
            kept: list[_Clause] = []
            n = len(watchers)
            for idx in range(n):
                clause = watchers[idx]
                lits = clause.lits
                # Ensure the false literal is at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == 1:
                    kept.append(clause)
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1] ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Unit or conflict.
                kept.append(clause)
                self.stats["propagations"] += 1
                if not self._enqueue(first, clause):
                    kept.extend(watchers[idx + 1 :])
                    self._watches[lit].extend(kept)
                    return clause
            self._watches[lit].extend(kept)
        return None

    # -- conflict analysis ----------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for i in range(self.num_vars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP learning.  Returns (learned clause lits, backtrack level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        lit = -1
        index = len(self._trail)
        reason: _Clause | None = conflict
        current_level = len(self._trail_lim)

        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if lit == -1 else 1
            for q in reason.lits[start:] if lit != -1 else reason.lits:
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Find next literal to expand on the trail.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[lit >> 1]:
                    break
            var = lit >> 1
            seen[var] = False
            counter -= 1
            reason = self._reason[var]
            if counter == 0:
                break
        learned[0] = lit ^ 1

        # Recursive minimisation: drop literals implied by the rest.
        cached_seen = {q >> 1 for q in learned}
        minimized = [learned[0]]
        for q in learned[1:]:
            if self._reason[q >> 1] is None or not self._redundant(q, cached_seen):
                minimized.append(q)
        learned = minimized

        if len(learned) == 1:
            return learned, 0
        # Backtrack level = second highest decision level in the clause.
        levels = sorted((self._level[q >> 1] for q in learned[1:]), reverse=True)
        back_level = levels[0]
        # Put a literal from back_level at position 1 (watch invariant).
        for i in range(1, len(learned)):
            if self._level[learned[i] >> 1] == back_level:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, back_level

    def _redundant(self, lit: int, clause_vars: set[int]) -> bool:
        """Is ``lit`` implied by the remaining clause literals? (DFS check)"""
        stack = [lit]
        visited: set[int] = set()
        while stack:
            current = stack.pop()
            reason = self._reason[current >> 1]
            if reason is None:
                return False
            for q in reason.lits:
                var = q >> 1
                if q == current or var in visited:
                    continue
                if self._level[var] == 0:
                    continue
                if var not in clause_vars:
                    return False
                visited.add(var)
                stack.append(q)
        return True

    # -- learned clause DB ------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Throw away the less active half of the learned clauses."""
        self._learned.sort(key=lambda c: c.activity)
        keep_from = len(self._learned) // 2
        locked = {self._reason[lit >> 1] for lit in self._trail}
        removed: set[int] = set()
        survivors: list[_Clause] = []
        for i, clause in enumerate(self._learned):
            if i < keep_from and clause not in locked and len(clause.lits) > 2:
                removed.add(id(clause))
            else:
                survivors.append(clause)
        if not removed:
            return
        self._learned = survivors
        for w in range(2 * self.num_vars):
            self._watches[w] = [c for c in self._watches[w] if id(c) not in removed]

    # -- branching ---------------------------------------------------------------------

    def _decide(self) -> int:
        """Pick an unassigned variable with max activity; -1 when all assigned."""
        best = -1
        best_activity = -1.0
        for var in range(self.num_vars):
            if self._assign[var] == _UNASSIGNED and self._activity[var] > best_activity:
                best = var
                best_activity = self._activity[var]
        if best == -1:
            return -1
        return 2 * best if self._phase[best] else 2 * best + 1

    # -- main search ----------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
    ) -> SatResult:
        """Solve the instance, optionally under assumptions.

        ``conflict_budget`` bounds the number of conflicts; when exhausted the
        result is :data:`SatResult.UNKNOWN` (used by timeout-sensitive
        counting loops).
        """
        if not self._ok:
            return SatResult.UNSAT
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return SatResult.UNSAT

        internal_assumptions = [self._to_internal(a) for a in assumptions]
        budget_start = self.stats["conflicts"]
        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count + 1)
        conflicts_since_restart = 0
        max_learned = max(1000, len(self._clauses) // 3)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_since_restart += 1
                if len(self._trail_lim) == 0:
                    self._ok = False
                    return SatResult.UNSAT
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return SatResult.UNSAT
                else:
                    clause = _Clause(learned, learned=True)
                    self._learned.append(clause)
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learned[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if (
                    conflict_budget is not None
                    and self.stats["conflicts"] - budget_start >= conflict_budget
                ):
                    self._backtrack(0)
                    return SatResult.UNKNOWN
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = 100 * _luby(restart_count + 1)
                self._backtrack(0)
                continue

            if len(self._learned) > max_learned + len(self._trail):
                self._reduce_db()
                max_learned = int(max_learned * 1.3)

            # Apply assumptions as pseudo-decisions.
            if len(self._trail_lim) < len(internal_assumptions):
                lit = internal_assumptions[len(self._trail_lim)]
                value = self._lit_value(lit)
                if value == 1:
                    self._new_decision_level()
                    continue
                if value == 0:
                    # Conflicting assumptions: UNSAT under assumptions.
                    self._backtrack(0)
                    return SatResult.UNSAT
                self._new_decision_level()
                self._enqueue(lit, None)
                continue

            lit = self._decide()
            if lit == -1:
                return SatResult.SAT
            self.stats["decisions"] += 1
            self._new_decision_level()
            self._enqueue(lit, None)

    # -- model access -------------------------------------------------------------------------

    def model(self) -> dict[int, bool]:
        """The satisfying assignment found by the last SAT ``solve`` call."""
        return {
            var + 1: self._assign[var] == 1
            for var in range(self.num_vars)
            if self._assign[var] != _UNASSIGNED
        }

    def model_literals(self, variables: Iterable[int] | None = None) -> list[int]:
        """Model as a list of DIMACS literals, optionally restricted."""
        model = self.model()
        if variables is None:
            variables = sorted(model)
        return [v if model.get(v, False) else -v for v in variables]


def solve(
    clauses: Iterable[Iterable[int]],
    num_vars: int = 0,
    assumptions: Sequence[int] = (),
) -> tuple[SatResult, dict[int, bool] | None]:
    """One-shot convenience wrapper: returns (result, model or None)."""
    solver = Solver(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=assumptions)
    if result is SatResult.SAT:
        return result, solver.model()
    return result, None
