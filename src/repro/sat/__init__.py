"""SAT solving substrate.

The paper generates its positive datasets by letting Alloy's enumerating SAT
back-end list every solution of a property within scope, and both model
counters are SAT-solver driven.  This package supplies that substrate:

* :mod:`repro.sat.solver` — a CDCL solver (two-watched-literal propagation,
  VSIDS branching, Luby restarts, first-UIP clause learning with recursive
  minimisation, phase saving, incremental solving under assumptions).
* :mod:`repro.sat.enumerate` — projected AllSAT on top of the solver via
  blocking clauses, mirroring Alloy's "enumerate all solutions" mode.
"""

from repro.sat.solver import SatResult, Solver, solve
from repro.sat.enumerate import count_models, enumerate_models
from repro.sat.dpll import dpll_count, dpll_satisfiable

__all__ = [
    "SatResult",
    "Solver",
    "count_models",
    "dpll_count",
    "dpll_satisfiable",
    "enumerate_models",
    "solve",
]
