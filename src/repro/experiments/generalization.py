"""Tables 3, 5, 6, 7: decision trees on the test set vs the whole space.

The four tables are one experiment with two boolean knobs:

=======  =====================  ==========================
Table    dataset symmetry       ground-truth φ symmetry
=======  =====================  ==========================
3        broken (``True``)      constrained (``True``)
5        intact (``False``)     unconstrained (``False``)
6        broken (``True``)      unconstrained (``False``)
7        intact (``False``)     constrained (``True``)
=======  =====================  ==========================

Each row: a property's decision tree (trained on ``train_fraction`` of the
dataset, 10% in the paper) scored traditionally on the held-out test set and
by AccMC against the entire 2^{n²} input space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.render import render_table
from repro.spec.symmetry import SymmetryBreaking

TABLE_SETTINGS = {
    3: (True, True),
    5: (False, False),
    6: (True, False),
    7: (False, True),
}


@dataclass(frozen=True)
class GeneralizationRow:
    property_name: str
    scope: int
    test_accuracy: float
    test_precision: float
    test_recall: float
    test_f1: float
    phi_accuracy: float
    phi_precision: float
    phi_recall: float
    phi_f1: float
    time_seconds: float


def generalization_table(
    table_number: int,
    config: ExperimentConfig | None = None,
    session=None,
) -> list[GeneralizationRow]:
    """Compute one of Tables 3/5/6/7 through one session."""
    if table_number not in TABLE_SETTINGS:
        raise ValueError(f"table_number must be one of {sorted(TABLE_SETTINGS)}")
    data_sb, eval_sb = TABLE_SETTINGS[table_number]
    config = config or ExperimentConfig()
    owned = session is None
    if owned:
        session = config.session()

    rows: list[GeneralizationRow] = []
    try:
        for prop in config.selected_properties():
            scope = config.scope_for(prop)
            result: PipelineResult = session.run(
                prop,
                scope,
                model_name="DT",
                train_fraction=config.train_fraction,
                data_symmetry=SymmetryBreaking() if data_sb else None,
                eval_symmetry=SymmetryBreaking() if eval_sb else None,
                max_positives=config.max_positives,
                whole_space=True,
            )
            assert result.whole_space is not None
            test = result.test_counts
            phi = result.whole_space
            rows.append(
                GeneralizationRow(
                    property_name=prop.name,
                    scope=scope,
                    test_accuracy=test.accuracy,
                    test_precision=test.precision,
                    test_recall=test.recall,
                    test_f1=test.f1,
                    phi_accuracy=phi.accuracy,
                    phi_precision=phi.precision,
                    phi_recall=phi.recall,
                    phi_f1=phi.f1,
                    time_seconds=phi.elapsed_seconds,
                )
            )
    finally:
        if owned:
            # Release the engine-owned worker pool and flush the disk stores.
            session.close()
    return rows


def render(rows: list[GeneralizationRow], table_number: int) -> str:
    data_sb, eval_sb = TABLE_SETTINGS[table_number]
    title = (
        f"Table {table_number}: DT on test set vs entire state space "
        f"(dataset symmetries {'broken' if data_sb else 'intact'}, "
        f"phi {'with' if eval_sb else 'without'} symmetry breaking)"
    )
    body = [
        [
            r.property_name,
            r.test_accuracy, r.test_precision, r.test_recall, r.test_f1,
            r.phi_accuracy, r.phi_precision, r.phi_recall, r.phi_f1,
            round(r.time_seconds, 1),
        ]
        for r in rows
    ]
    return render_table(
        [
            "Property",
            "Acc(Test)", "Prec(Test)", "Rec(Test)", "F1(Test)",
            "Acc(phi)", "Prec(phi)", "Rec(phi)", "F1(phi)", "Time[s]",
        ],
        body,
        title=title,
    )
