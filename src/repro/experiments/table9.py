"""Table 9: traditional vs MCML precision across training class ratios.

For the Antisymmetric property, datasets with valid:invalid ratios from 99:1
to 1:99 are used to train a decision tree; the traditional precision (on a
held-out test set drawn from the *same* skewed distribution) stays high for
every ratio, while the MCML whole-space precision exposes the bias — it only
approaches the traditional number once the training distribution matches the
true one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accmc import AccMC
from repro.core.pipeline import MCMLPipeline
from repro.experiments.config import ExperimentConfig
from repro.experiments.render import render_table
from repro.ml.metrics import confusion_counts
from repro.spec.properties import get_property

#: The valid:invalid training ratios of Table 9.
CLASS_RATIOS: tuple[tuple[int, int], ...] = (
    (99, 1), (90, 10), (75, 25), (50, 50), (25, 75), (10, 90), (1, 99),
)


@dataclass(frozen=True)
class Table9Row:
    ratio: str
    traditional_precision: float
    mcml_precision: float


def table9(
    config: ExperimentConfig | None = None,
    property_name: str = "Antisymmetric",
    train_fraction: float = 0.75,
) -> list[Table9Row]:
    config = config or ExperimentConfig()
    prop = get_property(property_name)
    scope = config.scope_for(prop)
    pipeline = MCMLPipeline(seed=config.seed)
    accmc = AccMC(
        counter=config.build_counter(),
        mode=config.accmc_mode,
        config=config.engine_config(),
    )
    # Memoized through the engine: the φ translation (and its counts) are
    # shared by all seven class-ratio rows instead of recompiled per row.
    ground_truth = accmc.ground_truth(prop, scope)

    rows: list[Table9Row] = []
    try:
        for valid, invalid in CLASS_RATIOS:
            dataset = pipeline.make_dataset(
                prop,
                scope,
                negative_ratio=invalid / valid,
                max_positives=config.max_positives,
            )
            train, test = dataset.split(train_fraction, rng=config.seed)
            tree = pipeline.train("DT", train)
            traditional = confusion_counts(test.y, tree.predict(test.X.astype(float)))
            whole_space = accmc.evaluate(tree, ground_truth)
            rows.append(
                Table9Row(
                    ratio=f"{valid}:{invalid}",
                    traditional_precision=traditional.precision,
                    mcml_precision=whole_space.precision,
                )
            )
    finally:
        # Release the engine-owned worker pool and flush the disk store.
        accmc.engine.close()
    return rows


def render(rows: list[Table9Row]) -> str:
    body = [[r.ratio, r.traditional_precision, r.mcml_precision] for r in rows]
    return render_table(
        ["Valid:Invalid", "Traditional Precision", "MCML Precision"],
        body,
        decimals=2,
        title="Table 9: traditional vs MCML precision across training class ratios "
        "(Antisymmetric)",
    )
