"""Table 9: traditional vs MCML precision across training class ratios.

For the Antisymmetric property, datasets with valid:invalid ratios from 99:1
to 1:99 are used to train a decision tree; the traditional precision (on a
held-out test set drawn from the *same* skewed distribution) stays high for
every ratio, while the MCML whole-space precision exposes the bias — it only
approaches the traditional number once the training distribution matches the
true one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.render import render_table
from repro.ml.metrics import confusion_counts
from repro.spec.properties import get_property

#: The valid:invalid training ratios of Table 9.
CLASS_RATIOS: tuple[tuple[int, int], ...] = (
    (99, 1), (90, 10), (75, 25), (50, 50), (25, 75), (10, 90), (1, 99),
)


@dataclass(frozen=True)
class Table9Row:
    ratio: str
    traditional_precision: float
    mcml_precision: float


def table9(
    config: ExperimentConfig | None = None,
    property_name: str = "Antisymmetric",
    train_fraction: float = 0.75,
    session=None,
) -> list[Table9Row]:
    """Compute Table 9 through one session (built from ``config`` if absent).

    Memoized through the session engine: the φ translation (and its
    counts) are shared by all seven class-ratio rows instead of being
    recompiled per row.
    """
    config = config or ExperimentConfig()
    prop = get_property(property_name)
    scope = config.scope_for(prop)
    owned = session is None
    if owned:
        session = config.session()

    rows: list[Table9Row] = []
    try:
        for valid, invalid in CLASS_RATIOS:
            dataset = session.pipeline.make_dataset(
                prop,
                scope,
                negative_ratio=invalid / valid,
                max_positives=config.max_positives,
            )
            train, test = dataset.split(train_fraction, rng=config.seed)
            tree = session.pipeline.train("DT", train)
            traditional = confusion_counts(test.y, tree.predict(test.X.astype(float)))
            whole_space = session.accmc(tree, prop, scope, mode=config.accmc_mode)
            rows.append(
                Table9Row(
                    ratio=f"{valid}:{invalid}",
                    traditional_precision=traditional.precision,
                    mcml_precision=whole_space.precision,
                )
            )
    finally:
        if owned:
            # Release the engine-owned worker pool and flush the disk stores.
            session.close()
    return rows


def render(rows: list[Table9Row]) -> str:
    body = [[r.ratio, r.traditional_precision, r.mcml_precision] for r in rows]
    return render_table(
        ["Valid:Invalid", "Traditional Precision", "MCML Precision"],
        body,
        decimals=2,
        title="Table 9: traditional vs MCML precision across training class ratios "
        "(Antisymmetric)",
    )
