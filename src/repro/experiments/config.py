"""Experiment configuration and shared factories."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import MCMLSession
from repro.counting import CountingEngine, EngineConfig, make_backend
from repro.spec.properties import PROPERTIES, Property, get_property

#: Fast out-of-the-box-ish model settings for the experiment grids.  The
#: library defaults mirror scikit-learn exactly; these trim iteration counts
#: so a full table finishes in minutes of pure Python (the relative ordering
#: of models — the thing the tables show — is unaffected; see
#: EXPERIMENTS.md).
EXPERIMENT_MODEL_PARAMS: dict[str, dict] = {
    "DT": {},
    "RFT": {"n_estimators": 30},
    "GBDT": {"n_estimators": 40},
    "ABT": {"n_estimators": 30, "base_max_depth": 2},
    "SVM": {"max_iter": 300},
    "MLP": {"max_iter": 80},
}

#: The paper's five training fractions.
PAPER_RATIOS = (0.75, 0.50, 0.25, 0.10, 0.01)

#: The three ratios printed in Tables 2 and 4.
PRINTED_RATIOS = (0.75, 0.25, 0.01)


def make_counter(name: str, seed: int = 0):
    """Counting backend by registered name (see :func:`repro.counting.make_backend`).

    Kept as the experiments-layer spelling: it threads the experiment seed
    into backends that take one (the approximate counter) and accepts any
    registry name or alias (``exact``, ``legacy``, ``brute``/``vector``,
    ``bdd``, ``approxmc``/``approx``).
    """
    if name in ("approx", "approxmc"):
        return make_backend(name, seed=seed)
    return make_backend(name)


@dataclass
class ExperimentConfig:
    """Knobs shared by all drivers.

    ``scope`` overrides every property's scope when set; otherwise each
    property uses its reduced default (``Property.repro_scope``).
    ``max_positives`` caps bounded-exhaustive sets so dense properties
    (Reflexive has 4096 positives at scope 4) do not dominate runtime.
    ``counter`` is any registered backend name or alias (``mcml
    --backend``); ``workers`` fans cold ``count_many`` batches out over
    that many processes, ``cache_dir`` persists every count *and
    compilation* to disk so table re-runs across sessions skip counting
    entirely, and ``component_cache_mb`` bounds the engine-shared
    component cache that lets overlapping counting problems (same φ,
    different tree regions) reuse each other's sub-counts (see
    :class:`repro.counting.EngineConfig`; 0 opts out).
    ``component_spill`` additionally persists that component cache under
    ``cache_dir`` (on by default, 0 opts out), ``circuit_store`` persists
    the compiled circuits of a ``conditions_cubes`` backend (``mcml
    --backend compiled``) there too so warm restarts condition without
    recompiling, and ``region_strategy`` picks the AccMC/DiffMC region
    route (``"conjunction"`` or ``"per-path"``).
    ``fallback`` names a backend the engine's degradation ladder
    re-counts failed problems on (``mcml --fallback approxmc``), and
    ``deadline``/``budget`` apply per-problem wall-clock and node limits
    to every metric count made through drivers that accept them.
    ``fanout_min_vars`` (``mcml --fanout-min-vars``) turns on
    intra-problem component fan-out: with ``workers > 1`` and a
    ``decomposes`` backend, one hard problem whose component split
    yields two or more components of at least that many variables is
    counted through the worker pool and multiplied back together.
    """

    properties: tuple[str, ...] = tuple(p.name for p in PROPERTIES)
    scope: int | None = None
    counter: str = "exact"
    accmc_mode: str = "derived"
    region_strategy: str = "conjunction"
    seed: int = 0
    train_fraction: float = 0.10
    max_positives: int | None = 5000
    workers: int = 1
    cache_dir: str | None = None
    component_cache_mb: float = 512.0
    component_spill: bool = True
    circuit_store: bool = True
    fallback: str | None = None
    deadline: float | None = None
    budget: int | None = None
    fanout_min_vars: int | None = None
    model_params: dict[str, dict] = field(
        default_factory=lambda: {k: dict(v) for k, v in EXPERIMENT_MODEL_PARAMS.items()}
    )

    def scope_for(self, prop: Property) -> int:
        return self.scope if self.scope is not None else prop.repro_scope

    def selected_properties(self) -> list[Property]:
        return [get_property(name) for name in self.properties]

    def build_counter(self):
        return make_counter(self.counter, seed=self.seed)

    def engine_config(self) -> EngineConfig:
        """The counting-engine scaling knobs this experiment asked for."""
        return EngineConfig(
            workers=self.workers,
            cache_dir=self.cache_dir,
            component_cache_mb=self.component_cache_mb,
            component_spill=self.component_spill,
            circuit_store=self.circuit_store,
            fallback=self.fallback,
            fallback_opts={"seed": self.seed} if self.fallback in ("approx", "approxmc") else None,
            fanout_min_vars=self.fanout_min_vars,
        )

    def build_engine(self) -> CountingEngine:
        """A fresh engine over ``build_counter()`` with the scaling knobs."""
        return CountingEngine(self.build_counter(), config=self.engine_config())

    def session(self) -> MCMLSession:
        """An :class:`MCMLSession` owning this configuration's substrate.

        The one facade every table driver (and the CLI) runs through:
        backend by name, engine knobs, AccMC mode and seed all travel
        together, and closing the session releases the pool and flushes
        the disk stores.
        """
        return MCMLSession(
            engine=self.build_engine(),
            accmc_mode=self.accmc_mode,
            region_strategy=self.region_strategy,
            deadline=self.deadline,
            budget=self.budget,
            seed=self.seed,
        )
